#!/usr/bin/env python3
"""Canonical perf-trajectory runner: run the pinned bench suite, merge the
per-bench BENCH json files into one suite document, and gate against the
newest prior suite document.

    scripts/bench_runner.py --build-dir build --out-dir results
    scripts/bench_runner.py --full            # paper-scale suite
    scripts/bench_runner.py --all             # also replay the txt benches
    scripts/bench_runner.py --self-test       # exercise the gate offline

Every bench binary emits ``BENCH_<run_id>_<bench>.json`` (schema 2, one
file per bench so two runs on the same day can never clobber each other).
This runner owns the run id: it exports ``DCS_RUN_ID`` (UTC date, or
``--run-id``) once per invocation so every bench in a suite shares it,
then merges the per-bench files into ``BENCH_<run_id>.json``:

    {"schema": 2, "kind": "suite", "run_id": ..., "suite": "scaled"|"full",
     "meta": {...},                       # host metadata from the benches
     "benches": {<bench>: <per-bench doc>, ...}}

Gating rules (per metric):
  * ``dir`` is "higher" or "lower"; "info" metrics are never gated.
  * threshold_pct = max(10, 2 * noise_pct) using the *recorded* run noise;
    a timing metric that recorded no noise at all is a single-shot number
    and gets a wide 35% band instead — shared CI runners genuinely swing
    that much on one-off millisecond timings.
  * metrics marked ``deterministic`` (seeded, timing-free) must reproduce
    on any machine and are gated everywhere; timing metrics are gated only
    when the baseline was recorded on the same CPU model, so a committed
    baseline from one box never fails CI on another for clock reasons.

Exit status: nonzero iff a bench fails, the merged document is invalid, or
a gated metric regresses past its threshold (suppress with --no-gate).
"""

import argparse
import datetime
import json
import os
import re
import subprocess
import sys

FLOOR_PCT = 10.0  # floor when the bench recorded its own run noise
UNRECORDED_FLOOR_PCT = 35.0  # single-shot timings with no recorded noise


class Bench:
    def __init__(self, name, binary, scaled_args=(), full_args=()):
        self.name = name
        self.binary = binary  # path relative to the build dir
        self.scaled_args = list(scaled_args)
        self.full_args = list(full_args)

    def args(self, full):
        return self.full_args if full else self.scaled_args


# The pinned suite. Scaled args keep the whole run CI-sized; --full lifts
# DCS_FULL and the per-bench overrides to paper scale.
SUITE = [
    Bench("pipeline_throughput", "bench/pipeline_throughput"),
    Bench("fig9_update_time", "bench/fig9_update_time"),
    Bench("window_costs", "bench/window_costs"),
    Bench("distributed_costs", "bench/distributed_costs"),
    Bench("detection_quality", "bench/detection_quality",
          scaled_args=["--trials", "3"], full_args=["--trials", "5"]),
    Bench("overload_shed", "bench/overload_shed",
          scaled_args=["--deltas", "25", "--iters", "400000"],
          full_args=["--deltas", "60", "--iters", "2000000"]),
    Bench("obs_overhead", "bench/obs_overhead"),
    Bench("query_serving", "bench/query_serving",
          scaled_args=["--deltas", "16", "--cache-iters", "200"],
          full_args=["--deltas", "60", "--target-rps", "2000",
                     "--cache-iters", "2000"]),
    Bench("ingest_reactor", "bench/ingest_reactor",
          scaled_args=["--peers", "48", "--epochs", "3"],
          full_args=["--peers", "512", "--epochs", "5"]),
    Bench("federation_merge", "bench/federation_merge",
          scaled_args=["--sites", "16", "--epochs", "4", "--max-leaves", "4"],
          full_args=["--sites", "64", "--epochs", "8", "--max-leaves", "8"]),
    Bench("chaos_convergence", "tools/dcs_chaos",
          scaled_args=["--sites", "3", "--u", "8000", "--epoch-updates",
                       "400", "--seed", "7", "--loris", "1", "--stall", "1",
                       "--oversize", "1"],
          full_args=["--sites", "4", "--u", "20000", "--seed", "7"]),
]

# The txt benches reproduce.sh historically replayed; --all reruns them
# (stdout -> <out-dir>/<bench>[_full].txt) before the json suite.
TXT_BENCHES = [
    "fig8a_recall", "fig8b_relative_error", "fig9_update_time",
    "table2_costs", "space_analysis", "ablation_rs", "ablation_stopping",
    "ablation_deletions", "ablation_correction", "detection_quality",
    "distributed_costs", "baseline_comparison", "window_costs",
    "pipeline_throughput", "obs_overhead",
]


def sanitize(token):
    """Mirror of the C++ filename sanitizer in bench_report.cpp."""
    out = re.sub(r"[^A-Za-z0-9._-]", "-", token)
    return out or "unnamed"


def utc_run_id():
    return datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d")


def validate_bench_doc(doc, path):
    errors = []
    if doc.get("schema") != 2:
        errors.append("schema != 2")
    for key in ("bench", "run_id", "meta", "results"):
        if key not in doc:
            errors.append(f"missing '{key}'")
    for section, metrics in doc.get("results", {}).items():
        if not isinstance(metrics, dict):
            errors.append(f"section '{section}' is not an object")
            continue
        for key, metric in metrics.items():
            if not isinstance(metric, dict) or "value" not in metric:
                errors.append(f"{section}.{key} has no value")
            elif metric.get("dir") not in ("higher", "lower", "info"):
                errors.append(f"{section}.{key} has bad dir")
    if errors:
        raise SystemExit(f"bench_runner: invalid {path}: " + "; ".join(errors))


def run_suite(args, run_id):
    env = dict(os.environ)
    env["DCS_RUN_ID"] = run_id
    if args.full:
        env["DCS_FULL"] = "1"
    else:
        env.pop("DCS_FULL", None)

    benches = {}
    meta = {}
    for bench in SUITE:
        binary = os.path.join(args.build_dir, bench.binary)
        if not os.path.exists(binary):
            raise SystemExit(f"bench_runner: missing binary {binary} "
                             "(build the repo first)")
        cmd = [binary] + bench.args(args.full) + ["--json-dir", args.out_dir]
        print(f"== {bench.name} ==", flush=True)
        result = subprocess.run(cmd, env=env)
        if result.returncode != 0:
            raise SystemExit(f"bench_runner: {bench.name} exited "
                             f"{result.returncode}")
        path = os.path.join(
            args.out_dir,
            f"BENCH_{sanitize(run_id)}_{sanitize(bench.name)}.json")
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as error:
            raise SystemExit(f"bench_runner: {bench.name} produced no "
                             f"readable report at {path}: {error}")
        validate_bench_doc(doc, path)
        benches[doc["bench"]] = doc
        if not meta:
            meta = dict(doc.get("meta", {}))
    return {
        "schema": 2,
        "kind": "suite",
        "run_id": run_id,
        "suite": "full" if args.full else "scaled",
        "meta": meta,
        "benches": benches,
    }


def run_txt_benches(args):
    env = dict(os.environ)
    if args.full:
        env["DCS_FULL"] = "1"
    else:
        env.pop("DCS_FULL", None)
    suffix = "_full" if args.full else ""
    for name in TXT_BENCHES:
        binary = os.path.join(args.build_dir, "bench", name)
        print(f"== {name} ==", flush=True)
        out_path = os.path.join(args.out_dir, f"{name}{suffix}.txt")
        with open(out_path, "w", encoding="utf-8") as out:
            result = subprocess.run([binary], env=env, stdout=subprocess.PIPE,
                                    text=True)
            out.write(result.stdout)
        sys.stdout.write(result.stdout)
        if result.returncode != 0:
            raise SystemExit(f"bench_runner: {name} exited "
                             f"{result.returncode}")
    name = "micro_ops"
    print(f"== {name} (google-benchmark) ==", flush=True)
    out_path = os.path.join(args.out_dir, f"{name}{suffix}.txt")
    with open(out_path, "w", encoding="utf-8") as out:
        result = subprocess.run(
            [os.path.join(args.build_dir, "bench", name),
             "--benchmark_min_time=0.1"],
            env=env, stdout=subprocess.PIPE, text=True)
        out.write(result.stdout)
    sys.stdout.write(result.stdout)
    if result.returncode != 0:
        raise SystemExit(f"bench_runner: {name} exited {result.returncode}")


def find_baseline(out_dir, current):
    """Newest prior merged suite document of the same suite kind."""
    candidates = []
    try:
        names = os.listdir(out_dir)
    except OSError:
        return None, None
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(out_dir, name)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError):
            continue
        if doc.get("kind") != "suite":
            continue  # a per-bench file, not a merged suite
        if doc.get("suite") != current["suite"]:
            continue
        if doc.get("run_id") == current["run_id"]:
            continue
        candidates.append((os.path.getmtime(path), path, doc))
    if not candidates:
        return None, None
    candidates.sort(key=lambda c: c[0])
    _, path, doc = candidates[-1]
    return path, doc


def iter_metrics(suite_doc):
    for bench_name, bench_doc in sorted(suite_doc.get("benches", {}).items()):
        for section, metrics in bench_doc.get("results", {}).items():
            for key, metric in metrics.items():
                yield bench_name, section, key, metric


def compare(current, baseline):
    """Diff two merged suite documents.

    Returns (rows, regressions). Each row is
    (name, base_value, cur_value, delta_pct, threshold_pct, status) with
    status one of OK / REGRESS / IMPROVED / SKIP(cpu) / new.
    """
    cpu_match = (current.get("meta", {}).get("cpu") ==
                 baseline.get("meta", {}).get("cpu"))
    base_index = {}
    for bench, section, key, metric in iter_metrics(baseline):
        base_index[(bench, section, key)] = metric

    rows = []
    regressions = []
    for bench, section, key, metric in iter_metrics(current):
        direction = metric.get("dir", "info")
        if direction == "info":
            continue
        name = f"{bench}/{section}/{key}"
        base = base_index.get((bench, section, key))
        if base is None:
            rows.append((name, None, metric["value"], None, None, "new"))
            continue
        deterministic = bool(metric.get("deterministic")) and bool(
            base.get("deterministic"))
        if not deterministic and not cpu_match:
            rows.append((name, base["value"], metric["value"], None, None,
                         "SKIP(cpu)"))
            continue
        noise = max(float(metric.get("noise_pct", -1.0)),
                    float(base.get("noise_pct", -1.0)))
        if deterministic:
            # Seeded, timing-free: any drift at all is a real change, but we
            # keep the recorded-noise path so a bench may opt out.
            threshold = max(0.0, 2.0 * noise) if noise >= 0 else 0.0
        elif noise >= 0:
            threshold = max(FLOOR_PCT, 2.0 * noise)
        else:
            threshold = UNRECORDED_FLOOR_PCT
        base_value = float(base["value"])
        cur_value = float(metric["value"])
        if base_value == 0.0:
            delta_pct = 0.0 if cur_value == 0.0 else float("inf")
        else:
            delta_pct = (cur_value - base_value) / abs(base_value) * 100.0
        worse = -delta_pct if direction == "higher" else delta_pct
        if worse > threshold:
            status = "REGRESS"
            regressions.append(name)
        elif -worse > threshold:
            status = "IMPROVED"
        else:
            status = "OK"
        rows.append((name, base_value, cur_value, delta_pct, threshold,
                     status))
    return rows, regressions


def fmt(value):
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.4g}"


def print_table(rows, baseline_path):
    print(f"\n-- perf delta vs {baseline_path} --")
    header = ("metric", "base", "current", "delta%", "thresh%", "status")
    widths = [max(len(header[0]), max((len(r[0]) for r in rows), default=0)),
              10, 10, 8, 8, 9]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for name, base, cur, delta, threshold, status in rows:
        print("  ".join([
            name.ljust(widths[0]),
            fmt(base).ljust(widths[1]),
            fmt(cur).ljust(widths[2]),
            fmt(delta).ljust(widths[3]),
            fmt(threshold).ljust(widths[4]),
            status.ljust(widths[5]),
        ]))


def gate(current, out_dir, baseline_path_override=None):
    """Returns the number of regressions against the chosen baseline."""
    if baseline_path_override:
        with open(baseline_path_override, encoding="utf-8") as f:
            baseline = json.load(f)
        baseline_path = baseline_path_override
    else:
        baseline_path, baseline = find_baseline(out_dir, current)
    if baseline is None:
        print("bench_runner: no prior suite baseline found; nothing to gate")
        return 0
    rows, regressions = compare(current, baseline)
    print_table(rows, baseline_path)
    if regressions:
        print(f"\nbench_runner: {len(regressions)} regression(s):")
        for name in regressions:
            print(f"  REGRESS {name}")
    else:
        print("\nbench_runner: no regressions")
    return len(regressions)


# ---------------------------------------------------------------------------
# Self test: fabricate suite documents and check every gate rule offline.

def _suite_doc(cpu, metrics):
    """metrics: {name: (value, dir, noise_pct, deterministic)}"""
    results = {}
    for key, (value, direction, noise, deterministic) in metrics.items():
        metric = {"value": value, "dir": direction}
        if noise is not None:
            metric["noise_pct"] = noise
        if deterministic:
            metric["deterministic"] = True
        results[key] = metric
    return {
        "schema": 2, "kind": "suite", "run_id": "st", "suite": "scaled",
        "meta": {"cpu": cpu},
        "benches": {"fake": {"schema": 2, "bench": "fake", "run_id": "st",
                             "meta": {"cpu": cpu},
                             "results": {"main": results}}},
    }


def self_test():
    failures = []

    def check(label, condition):
        print(f"self-test: {label}: {'ok' if condition else 'FAIL'}")
        if not condition:
            failures.append(label)

    base = _suite_doc("cpuA", {
        "throughput": (100.0, "higher", 5.0, False),
        "latency": (50.0, "lower", None, False),
        "noisy": (10.0, "lower", 30.0, False),
        "recall": (1.0, "higher", 0.0, True),
        "debug_count": (7.0, "info", None, False),
    })

    # 1. Clean rerun: identical numbers gate green.
    rows, regressions = compare(base, base)
    check("identical suites pass", not regressions)

    # 2. Timing regression on the same CPU is caught.
    worse = _suite_doc("cpuA", {
        "throughput": (80.0, "higher", 5.0, False),   # -20% past 10% floor
        "latency": (50.0, "lower", None, False),
        "noisy": (10.0, "lower", 30.0, False),
        "recall": (1.0, "higher", 0.0, True),
        "debug_count": (7.0, "info", None, False),
    })
    rows, regressions = compare(worse, base)
    check("timing regression detected",
          regressions == ["fake/main/throughput"])
    print_table(rows, "<self-test baseline>")

    # 3. The same timing change on a different CPU is skipped...
    cross = _suite_doc("cpuB", {
        "throughput": (80.0, "higher", 5.0, False),
        "recall": (1.0, "higher", 0.0, True),
    })
    rows, regressions = compare(cross, base)
    check("cross-cpu timing skipped", not regressions and any(
        status == "SKIP(cpu)" for *_rest, status in rows))

    # 4. ...but a deterministic metric still gates cross-machine.
    cross_det = _suite_doc("cpuB", {
        "throughput": (80.0, "higher", 5.0, False),
        "recall": (0.99, "higher", 0.0, True),
    })
    rows, regressions = compare(cross_det, base)
    check("deterministic drift gated cross-cpu",
          regressions == ["fake/main/recall"])

    # 4b. A single-shot timing with no recorded noise gets the wide band:
    # +26% passes, +60% still fails.
    single_shot_ok = _suite_doc("cpuA", {"latency": (63.0, "lower", None,
                                                     False)})
    rows, regressions = compare(single_shot_ok, base)
    check("unrecorded-noise timing gets wide band", not regressions)
    single_shot_bad = _suite_doc("cpuA", {"latency": (80.0, "lower", None,
                                                      False)})
    rows, regressions = compare(single_shot_bad, base)
    check("unrecorded-noise timing still gated",
          regressions == ["fake/main/latency"])

    # 5. A change inside 2x recorded noise is not a regression.
    noisy = _suite_doc("cpuA", {
        "throughput": (100.0, "higher", 5.0, False),
        "latency": (50.0, "lower", None, False),
        "noisy": (15.0, "lower", 30.0, False),        # +50% < 2*30%
        "recall": (1.0, "higher", 0.0, True),
        "debug_count": (7.0, "info", None, False),
    })
    rows, regressions = compare(noisy, base)
    check("noise-band change tolerated", not regressions)

    # 6. Info metrics are never gated, however large the swing.
    info = _suite_doc("cpuA", {
        "throughput": (100.0, "higher", 5.0, False),
        "debug_count": (70000.0, "info", None, False),
    })
    rows, regressions = compare(info, base)
    check("info metrics ignored", not regressions)

    # 7. Improvements are labelled, not flagged.
    better = _suite_doc("cpuA", {
        "throughput": (150.0, "higher", 5.0, False),
    })
    rows, regressions = compare(better, base)
    check("improvement labelled", not regressions and any(
        status == "IMPROVED" for *_rest, status in rows))

    # 8. Metrics absent from the baseline are 'new', not errors.
    rows, regressions = compare(
        _suite_doc("cpuA", {"brand_new": (1.0, "lower", None, False)}), base)
    check("new metric tolerated", not regressions)

    if failures:
        print(f"self-test: {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("self-test: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Run the pinned bench suite and gate the perf trajectory")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out-dir", default="results")
    parser.add_argument("--run-id", default=None,
                        help="run id for every bench (default: DCS_RUN_ID "
                             "env, else today's UTC date)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale suite (sets DCS_FULL=1)")
    parser.add_argument("--all", action="store_true",
                        help="also replay the txt benches into --out-dir")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline suite json (default: newest "
                             "prior suite in --out-dir)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record the suite but never fail on deltas")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the gating rules offline and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    run_id = args.run_id or os.environ.get("DCS_RUN_ID") or utc_run_id()
    os.makedirs(args.out_dir, exist_ok=True)

    if args.all:
        run_txt_benches(args)

    current = run_suite(args, run_id)
    merged_path = os.path.join(args.out_dir,
                               f"BENCH_{sanitize(run_id)}.json")
    regressions = gate(current, args.out_dir, args.baseline)
    with open(merged_path, "w", encoding="utf-8") as f:
        json.dump(current, f, indent=2)
        f.write("\n")
    print(f"\nbench_runner: suite written to {merged_path}")
    if regressions and not args.no_gate:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
