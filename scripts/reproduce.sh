#!/usr/bin/env bash
# Reproduce every experiment in EXPERIMENTS.md.
#
#   scripts/reproduce.sh            # scaled defaults (~1 minute)
#   scripts/reproduce.sh --full     # paper scale (U = 8e6, 5 seeds; ~15 min)
#
# Outputs land in results/<bench>[_full].txt. All randomness is seeded, so
# repeated runs print identical numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
if [[ "${1:-}" == "--full" ]]; then FULL=1; fi

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

mkdir -p results
suffix=""
if [[ $FULL -eq 1 ]]; then suffix="_full"; export DCS_FULL=1; fi

benches=(
  fig8a_recall fig8b_relative_error fig9_update_time table2_costs
  space_analysis ablation_rs ablation_stopping ablation_deletions
  ablation_correction detection_quality distributed_costs
  baseline_comparison window_costs pipeline_throughput obs_overhead
)
for bench in "${benches[@]}"; do
  echo "== ${bench} =="
  ./build/bench/"${bench}" | tee "results/${bench}${suffix}.txt"
  echo
done

echo "== micro_ops (google-benchmark) =="
./build/bench/micro_ops --benchmark_min_time=0.1 |
  tee "results/micro_ops${suffix}.txt"
