#!/usr/bin/env bash
# Reproduce every experiment in EXPERIMENTS.md.
#
#   scripts/reproduce.sh            # scaled defaults (~1 minute)
#   scripts/reproduce.sh --full     # paper scale (U = 8e6, 5 seeds; ~15 min)
#
# Outputs land in results/<bench>[_full].txt plus the BENCH json suite
# (see docs/OBSERVABILITY.md). All randomness is seeded, so repeated runs
# print identical numbers. Bench execution and json merging are delegated
# to scripts/bench_runner.py; reproduction never gates on perf deltas.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=""
if [[ "${1:-}" == "--full" ]]; then FULL="--full"; fi

# Only pick a generator on first configure: forcing -G Ninja against a
# build tree configured with a different generator is a hard CMake error.
if [[ -f build/CMakeCache.txt ]]; then
  cmake -B build >/dev/null
else
  cmake -B build -G Ninja >/dev/null
fi
cmake --build build >/dev/null

python3 scripts/bench_runner.py --build-dir build --out-dir results \
  --all --no-gate ${FULL}
