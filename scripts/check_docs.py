#!/usr/bin/env python3
"""Documentation lint: keep the docs honest against the code.

Three checks, all designed to fail when the docs drift:

1. Flags — every ``--flag`` mentioned in docs/CLI.md and docs/RUNBOOK.md
   must appear in the ``--help`` output of the tool it is documented
   under. CLI.md is scoped by its tool headings (``# dcs_collector`` …);
   RUNBOOK.md and CLI.md's preamble are checked against the union of all
   tools' help.
2. Metrics — the ``dcs_*`` names in docs/OBSERVABILITY.md's catalog and
   the string literals registered in src/obs/*.cpp must be the *same
   set*, both directions: an undocumented metric fails just like a
   documented-but-unregistered one.
3. Links — every relative markdown link in README.md and docs/*.md must
   resolve to an existing file, and a ``#anchor`` must match a heading in
   the target (GitHub slug rules).

Usage: scripts/check_docs.py [--build-dir BUILD] [--self-test]

--build-dir (default: ``build``) locates the built tools for check 1.
--self-test deliberately injects one stale flag, one stale metric, and
one broken link into in-memory copies of the docs and asserts the linter
catches all three — proving the checks can actually fail.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

TOOLS = ("dcs_cli", "dcs_collector", "dcs_agent", "dcs_chaos",
         "dcs_query_server", "dcs_root", "dcs_shardmap")

FLAG_RE = re.compile(r"--[a-zA-Z][a-zA-Z0-9-]*")

# Placeholder spellings used when documenting option *syntax* rather than a
# concrete option ("--name value or --name=value").
PLACEHOLDER_FLAGS = {"--name"}

# Flag-bearing docs: None scope = union of all tools.
FLAG_DOCS = ("docs/CLI.md", "docs/RUNBOOK.md")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
METRIC_RE = re.compile(r"`(dcs_[a-z0-9_]+)`")
REGISTERED_RE = re.compile(r'"(dcs_[a-z0-9_]+)"')


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def tool_help(build_dir: pathlib.Path, tool: str) -> str:
    exe = build_dir / "tools" / tool
    if not exe.exists():
        raise FileNotFoundError(
            f"{exe} not built — run cmake --build first or pass --build-dir")
    result = subprocess.run([str(exe), "--help"], capture_output=True,
                            text=True, timeout=30)
    return result.stdout + result.stderr


def doc_flag_scopes(text: str) -> list[tuple[str | None, str]]:
    """Split a doc into (tool-or-None, chunk) by its tool headings."""
    scopes: list[tuple[str | None, str]] = []
    scope: str | None = None
    chunk: list[str] = []
    for line in text.splitlines():
        if line.startswith("#"):
            heading = line.lstrip("#").strip()
            if heading in TOOLS:
                scopes.append((scope, "\n".join(chunk)))
                scope, chunk = heading, []
                continue
        chunk.append(line)
    scopes.append((scope, "\n".join(chunk)))
    return scopes


def check_flags(errors: list[str], build_dir: pathlib.Path,
                docs: dict[str, str]) -> None:
    helps = {tool: set(FLAG_RE.findall(tool_help(build_dir, tool)))
             for tool in TOOLS}
    union = set().union(*helps.values())
    for doc_path, text in docs.items():
        for scope, chunk in doc_flag_scopes(text):
            known = helps[scope] if scope else union
            where = f"{doc_path} (section {scope or 'preamble/global'})"
            for flag in sorted(set(FLAG_RE.findall(chunk))):
                if flag in PLACEHOLDER_FLAGS:
                    continue
                if flag not in known:
                    fail(errors,
                         f"{where}: {flag} not in "
                         f"{scope or 'any tool'} --help output")


def check_metrics(errors: list[str], observability: str) -> None:
    documented = set(METRIC_RE.findall(observability))
    registered: set[str] = set()
    for source in sorted((REPO / "src" / "obs").glob("*.cpp")):
        registered |= set(REGISTERED_RE.findall(source.read_text()))
    for name in sorted(documented - registered):
        fail(errors, f"docs/OBSERVABILITY.md: `{name}` documented but not "
                     f"registered in src/obs")
    for name in sorted(registered - documented):
        fail(errors, f"src/obs: \"{name}\" registered but missing from the "
                     f"docs/OBSERVABILITY.md catalog")


def github_slug(heading: str) -> str:
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(text: str) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.add(github_slug(line.lstrip("#")))
    return slugs


def check_links(errors: list[str], docs: dict[str, str]) -> None:
    for doc_path, text in docs.items():
        base = (REPO / doc_path).parent
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (base / path_part).resolve() if path_part \
                else (REPO / doc_path).resolve()
            if not resolved.exists():
                fail(errors, f"{doc_path}: broken link {target}")
                continue
            if anchor and resolved.suffix == ".md":
                target_text = docs.get(
                    str(resolved.relative_to(REPO)), None)
                if target_text is None:
                    target_text = resolved.read_text()
                if anchor not in heading_slugs(target_text):
                    fail(errors,
                         f"{doc_path}: link {target} — no heading for "
                         f"anchor #{anchor}")


def load_docs() -> dict[str, str]:
    paths = ["README.md"] + sorted(
        str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md"))
    return {p: (REPO / p).read_text() for p in paths}


def run_checks(build_dir: pathlib.Path, docs: dict[str, str]) -> list[str]:
    errors: list[str] = []
    check_flags(errors, build_dir,
                {p: docs[p] for p in FLAG_DOCS if p in docs})
    check_metrics(errors, docs["docs/OBSERVABILITY.md"])
    check_links(errors, docs)
    return errors


def self_test(build_dir: pathlib.Path) -> int:
    """Break each check in an in-memory copy and assert it fails."""
    clean = run_checks(build_dir, load_docs())
    if clean:
        print("check_docs --self-test: docs must be clean first:")
        for error in clean:
            print(f"  {error}")
        return 1

    breaks = {
        "stale flag": ("docs/CLI.md", "\n# dcs_collector\n\n--no-such-flag\n"),
        "stale metric": ("docs/OBSERVABILITY.md",
                         "\n| `dcs_bogus_metric_total` | counter | — | x |\n"),
        "broken link": ("docs/RUNBOOK.md", "\n[gone](NO_SUCH_FILE.md)\n"),
    }
    failed = 0
    for what, (doc, poison) in breaks.items():
        docs = load_docs()
        docs[doc] += poison
        if not run_checks(build_dir, docs):
            print(f"check_docs --self-test: {what} NOT caught")
            failed = 1
    if not failed:
        print("check_docs --self-test: all deliberate breaks caught")
    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=str(REPO / "build"))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    build_dir = pathlib.Path(args.build_dir)

    if args.self_test:
        return self_test(build_dir)

    errors = run_checks(build_dir, load_docs())
    for error in errors:
        print(f"check_docs: {error}")
    if errors:
        print(f"check_docs: {len(errors)} problem(s)")
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
