// Epoch-based heavy-change detection over the distinct-source metric.
//
// The Krishnamurthy et al. line of work (cited in the paper's §1) asks not
// "who is big?" but "who *changed* the most?". Sketch linearity answers it
// for the distinct-source metric for free: the difference of two cumulative
// sketches is the sketch of the in-between updates, so snapshotting at epoch
// boundaries and subtracting yields, per epoch, the destinations that gained
// the most NEW distinct (half-open) sources — a sharper attack-onset signal
// than absolute rank when the network has persistently-busy destinations.
//
// Semantics note: pairs deleted during an epoch after being inserted in an
// earlier one appear net-negative in the difference; their buckets classify
// as collisions and any ghost singletons are filtered by the recovery
// re-hash check, so reported changes are (approximately) the positive side
// of the change — exactly the attack-onset signal we want.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/distinct_count_sketch.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class EpochChangeDetector {
 public:
  struct Config {
    DcsParams sketch{};
    /// Updates per epoch.
    std::uint64_t epoch_updates = 65'536;
    /// Changes reported per epoch boundary.
    std::size_t top_k = 10;
  };

  struct EpochReport {
    std::uint64_t epoch = 0;  // 0-based epoch index
    /// Destinations by estimated NEW distinct sources gained this epoch.
    std::vector<TopKEntry> top_changes;
  };

  EpochChangeDetector();  // default Config
  explicit EpochChangeDetector(Config config);

  /// Ingest one update; closes an epoch (appending a report) every
  /// config.epoch_updates updates.
  void update(Addr group, Addr member, int delta);
  void ingest(const std::vector<FlowUpdate>& updates);

  /// Reports for all completed epochs.
  const std::vector<EpochReport>& reports() const noexcept { return reports_; }

  /// Top-k changes of the *in-progress* epoch (live query).
  std::vector<TopKEntry> current_changes(std::size_t k) const;

  /// Force-close the current epoch (e.g. at end of stream).
  void close_epoch();

  std::uint64_t updates_ingested() const noexcept { return ingested_; }
  const DistinctCountSketch& cumulative() const noexcept { return cumulative_; }
  std::size_t memory_bytes() const;

 private:
  Config config_;
  DistinctCountSketch cumulative_;
  DistinctCountSketch epoch_start_;  // snapshot at the last boundary
  std::vector<EpochReport> reports_;
  std::uint64_t ingested_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace dcs
