// The structured alert event shared by every detection front end
// (DdosMonitor, BaselineDetector, the src/service collector) and by the
// alert_log renderers.
#pragma once

#include <cstdint>

#include "stream/flow_update.hpp"

namespace dcs {

/// One structured alert event. Every field needed to audit the decision is
/// recorded at fire time; alert_log.hpp renders these as JSON or text.
struct Alert {
  enum class Kind : std::uint8_t { kRaised, kCleared };

  Kind kind = Kind::kRaised;
  /// The destination under suspected attack (or the scanning source when
  /// ranking by source).
  Addr subject = 0;
  std::uint64_t estimated_frequency = 0;
  double baseline = 0.0;
  /// Stream position (number of updates ingested) when the alert fired.
  std::uint64_t stream_position = 0;
  /// Check epoch (1-based count of monitor checks) when the alert fired.
  std::uint64_t epoch = 0;
  /// Effective alarm threshold at fire time:
  /// min(max(alarm_factor * baseline, min_absolute), absolute_alarm).
  double threshold = 0.0;
};

}  // namespace dcs
