#include "detection/baseline_detector.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcs {

void BaselineDetectorConfig::validate() const {
  if (baseline_alpha <= 0.0 || baseline_alpha > 1.0)
    throw std::invalid_argument("BaselineDetector: baseline_alpha in (0, 1]");
  if (alarm_factor <= 1.0)
    throw std::invalid_argument("BaselineDetector: alarm_factor > 1");
}

BaselineDetector::BaselineDetector(BaselineDetectorConfig config)
    : config_(config) {
  config_.validate();
}

double BaselineDetector::alarm_threshold(double baseline) const {
  const double learned = std::max(config_.alarm_factor * baseline,
                                  static_cast<double>(config_.min_absolute));
  return std::min(learned, static_cast<double>(config_.absolute_alarm));
}

BaselineDetector::Outcome BaselineDetector::observe(
    const std::vector<TopKEntry>& entries, std::uint64_t stream_position) {
  Outcome outcome;
  const bool warming_up = ++checks_run_ <= config_.warmup_checks;
  for (const TopKEntry& entry : entries) {
    double& baseline = baselines_.try_emplace(entry.group, 0.0).first->second;
    const double estimate = static_cast<double>(entry.estimate);
    const bool over_baseline =
        !warming_up &&
        ((estimate > config_.alarm_factor * baseline &&
          entry.estimate >= config_.min_absolute) ||
         entry.estimate >= config_.absolute_alarm);

    bool& alarmed = alarmed_.try_emplace(entry.group, false).first->second;
    if (over_baseline && !alarmed) {
      alarmed = true;
      ++outcome.raised;
      alerts_.push_back({Alert::Kind::kRaised, entry.group, entry.estimate,
                         baseline, stream_position, checks_run_,
                         alarm_threshold(baseline)});
    } else if (!over_baseline && alarmed) {
      alarmed = false;
      ++outcome.cleared;
      alerts_.push_back({Alert::Kind::kCleared, entry.group, entry.estimate,
                         baseline, stream_position, checks_run_,
                         alarm_threshold(baseline)});
    }

    // Baselines adapt only while a subject is NOT alarmed, so a sustained
    // attack cannot teach the profile that attack traffic is normal.
    if (!alarmed)
      baseline = (1.0 - config_.baseline_alpha) * baseline +
                 config_.baseline_alpha * estimate;
  }

  // Subjects that dropped out of the top-k entirely have subsided: clear
  // them.
  for (auto& [subject, alarmed] : alarmed_) {
    if (!alarmed) continue;
    const bool still_listed =
        std::any_of(entries.begin(), entries.end(),
                    [subject = subject](const TopKEntry& e) {
                      return e.group == subject;
                    });
    if (!still_listed) {
      alarmed = false;
      ++outcome.cleared;
      alerts_.push_back({Alert::Kind::kCleared, subject, 0,
                         baselines_[subject], stream_position, checks_run_,
                         alarm_threshold(baselines_[subject])});
    }
  }
  return outcome;
}

std::vector<Addr> BaselineDetector::active_alarms() const {
  std::vector<Addr> subjects;
  for (const auto& [subject, alarmed] : alarmed_)
    if (alarmed) subjects.push_back(subject);
  std::sort(subjects.begin(), subjects.end());
  return subjects;
}

std::size_t BaselineDetector::active_alarm_count() const {
  return static_cast<std::size_t>(
      std::count_if(alarmed_.begin(), alarmed_.end(),
                    [](const auto& entry) { return entry.second; }));
}

namespace {

constexpr std::uint32_t kDetectorMagic = 0x54444344;  // "DCDT"
constexpr std::uint8_t kDetectorVersion = 1;

}  // namespace

void BaselineDetector::serialize(BinaryWriter& writer) const {
  writer.crc_reset();
  write_header(writer, kDetectorMagic, kDetectorVersion);
  writer.u64(checks_run_);

  // Hash-map iteration order is not deterministic; sort by subject so the
  // same state always produces the same bytes (checkpoint equality tests
  // rely on this).
  std::vector<Addr> subjects;
  subjects.reserve(baselines_.size());
  for (const auto& [subject, baseline] : baselines_) subjects.push_back(subject);
  std::sort(subjects.begin(), subjects.end());
  writer.u64(subjects.size());
  for (const Addr subject : subjects) {
    writer.u32(subject);
    writer.f64(baselines_.at(subject));
    const auto alarmed = alarmed_.find(subject);
    writer.u8(alarmed != alarmed_.end() && alarmed->second ? 1 : 0);
  }

  writer.u64(alerts_.size());
  for (const Alert& alert : alerts_) {
    writer.u8(static_cast<std::uint8_t>(alert.kind));
    writer.u32(alert.subject);
    writer.u64(alert.estimated_frequency);
    writer.f64(alert.baseline);
    writer.u64(alert.stream_position);
    writer.u64(alert.epoch);
    writer.f64(alert.threshold);
  }
  write_crc_footer(writer);
}

BaselineDetector BaselineDetector::deserialize(BinaryReader& reader,
                                               BaselineDetectorConfig config) {
  reader.crc_reset();
  read_header(reader, kDetectorMagic, kDetectorVersion);
  BaselineDetector detector(config);
  detector.checks_run_ = reader.u64();
  const std::uint64_t subjects = reader.u64();
  for (std::uint64_t i = 0; i < subjects; ++i) {
    const Addr subject = reader.u32();
    detector.baselines_[subject] = reader.f64();
    detector.alarmed_[subject] = reader.u8() != 0;
  }
  const std::uint64_t alerts = reader.u64();
  for (std::uint64_t i = 0; i < alerts; ++i) {
    Alert alert;
    const std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(Alert::Kind::kCleared))
      throw SerializeError("BaselineDetector: unknown alert kind");
    alert.kind = static_cast<Alert::Kind>(kind);
    alert.subject = reader.u32();
    alert.estimated_frequency = reader.u64();
    alert.baseline = reader.f64();
    alert.stream_position = reader.u64();
    alert.epoch = reader.u64();
    alert.threshold = reader.f64();
    detector.alerts_.push_back(alert);
  }
  read_crc_footer(reader);
  return detector;
}

std::size_t BaselineDetector::memory_bytes() const {
  return baselines_.size() * (sizeof(Addr) + sizeof(double) + 16) +
         alarmed_.size() * (sizeof(Addr) + sizeof(bool) + 16) +
         alerts_.capacity() * sizeof(Alert);
}

}  // namespace dcs
