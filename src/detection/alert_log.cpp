#include "detection/alert_log.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/export.hpp"

namespace dcs {

namespace {

const char* kind_name(Alert::Kind kind) {
  return kind == Alert::Kind::kRaised ? "raised" : "cleared";
}

}  // namespace

std::string format_alert(const Alert& alert, const std::string& subject_role) {
  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "%-7s %s=%08x estimate=%" PRIu64
                " baseline=%.0f threshold=%.0f epoch=%" PRIu64
                " at update %" PRIu64,
                alert.kind == Alert::Kind::kRaised ? "RAISED" : "cleared",
                subject_role.c_str(), alert.subject,
                alert.estimated_frequency, alert.baseline, alert.threshold,
                alert.epoch, alert.stream_position);
  return buffer;
}

std::string alert_to_json(const Alert& alert,
                          const std::string& subject_role) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "{\"kind\":\"%s\",\"%s\":\"%08x\",\"estimate\":%" PRIu64
                ",\"baseline\":%.1f,\"threshold\":%.1f,\"epoch\":%" PRIu64
                ",\"stream_position\":%" PRIu64 "}",
                kind_name(alert.kind),
                obs::json_escape(subject_role).c_str(), alert.subject,
                alert.estimated_frequency, alert.baseline, alert.threshold,
                alert.epoch, alert.stream_position);
  return buffer;
}

std::string alerts_to_json(const std::vector<Alert>& alerts,
                           const std::string& subject_role) {
  std::string out = "[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += alert_to_json(alerts[i], subject_role);
  }
  out += alerts.empty() ? "]\n" : "\n]\n";
  return out;
}

void write_alerts_json(const std::string& path,
                       const std::vector<Alert>& alerts,
                       const std::string& subject_role) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw std::runtime_error("cannot open alert log " + path);
  file << alerts_to_json(alerts, subject_role);
  if (!file) throw std::runtime_error("failed writing alert log " + path);
}

}  // namespace dcs
