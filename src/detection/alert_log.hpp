// Structured alert event log.
//
// DdosMonitor records every raise/clear decision as a typed Alert (epoch,
// subject, estimated distinct-source count, baseline, threshold, stream
// position). This header renders those records for consumption outside the
// process: one canonical human-readable line, and a JSON array sharing the
// escaping rules of the obs/ JSON exporter so a single pipeline can ingest
// both metric snapshots and alert events.
#pragma once

#include <string>
#include <vector>

#include "detection/alert_types.hpp"

namespace dcs {

/// One line, no trailing newline:
///   "RAISED  dest=0000beef estimate=8192 baseline=12 threshold=512
///    epoch=4 at update 8192"
/// `subject_role` names the ranked endpoint ("dest" or "source").
std::string format_alert(const Alert& alert,
                         const std::string& subject_role = "dest");

/// JSON object for one alert event.
std::string alert_to_json(const Alert& alert,
                          const std::string& subject_role = "dest");

/// JSON array of all events, newline-separated elements, trailing newline.
std::string alerts_to_json(const std::vector<Alert>& alerts,
                           const std::string& subject_role = "dest");

/// Write alerts_to_json to `path` (truncating); throws std::runtime_error on
/// I/O failure.
void write_alerts_json(const std::string& path,
                       const std::vector<Alert>& alerts,
                       const std::string& subject_role = "dest");

}  // namespace dcs
