// DdosMonitor — the paper's DDoS MONITOR box (Fig. 1).
//
// Consumes the flow-update stream through a Tracking Distinct-Count Sketch
// and periodically compares the current top-k distinct-source frequencies
// against slowly-adapting per-destination EWMA baselines ("baseline profiles
// of network activity created over longer periods of time", §2). A
// destination whose estimated half-open distinct-source count exceeds both an
// absolute floor and a multiple of its baseline raises an alert; the alert
// clears when the estimate falls back under the baseline multiple.
//
// Because completed handshakes are *deleted* from the sketch, a flash crowd —
// however large — keeps its net half-open count near zero and never alarms;
// a SYN flood's spoofed sources never complete and accumulate. This is the
// paper's central robustness argument made executable (see
// examples/flash_crowd_vs_ddos.cpp and tests/detection_test.cpp).
//
// The same machinery, with group/member roles swapped (RankBy::kSource),
// flags port scanners / superspreaders (paper footnote 1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "detection/alert_types.hpp"
#include "detection/baseline_detector.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

struct DdosMonitorConfig {
  /// Which endpoint to rank: destinations (DDoS victims) or sources
  /// (port scanners / superspreaders).
  enum class RankBy : std::uint8_t { kDestination, kSource };

  DcsParams sketch{};
  RankBy rank_by = RankBy::kDestination;
  /// Candidates examined per check (the k of the top-k query).
  std::size_t top_k = 10;
  /// Run a tracking query every this many ingested updates.
  std::uint64_t check_interval = 1024;
  /// EWMA smoothing for per-subject baselines (0 < alpha <= 1).
  double baseline_alpha = 0.05;
  /// Alarm when estimate > alarm_factor * baseline ...
  double alarm_factor = 8.0;
  /// ... and estimate >= min_absolute (suppresses noise on cold start).
  std::uint64_t min_absolute = 512;
  /// Hard ceiling (the paper's footnote-3 threshold query f_v >= τ): an
  /// estimate at or above this alarms regardless of the learned baseline.
  /// Catches slow-ramp attacks that train the EWMA along with them.
  /// Default: disabled.
  std::uint64_t absolute_alarm = UINT64_MAX;
  /// Checks during which baselines learn but no alerts fire (profile
  /// bootstrap over known-good traffic, §2's "baseline profiles ... created
  /// over longer periods of time").
  std::uint64_t warmup_checks = 0;

  /// The threshold/baseline subset of this config, as consumed by the
  /// underlying BaselineDetector state machine.
  BaselineDetectorConfig detector() const noexcept {
    return {baseline_alpha, alarm_factor, min_absolute, absolute_alarm,
            warmup_checks};
  }
};

class DdosMonitor {
 public:
  /// Invoked after every completed check (periodic or forced) — the
  /// monitor's "epoch" granularity. Used to dump telemetry snapshots or
  /// stream alert events without polling.
  using CheckCallback = std::function<void(const DdosMonitor&)>;

  explicit DdosMonitor(DdosMonitorConfig config = {});

  /// Ingest one flow update; may append alerts (check every check_interval).
  void ingest(const FlowUpdate& update);

  /// Ingest a whole stream.
  void ingest(const std::vector<FlowUpdate>& updates);

  /// Force an immediate check (e.g. at end of stream).
  void check_now();

  /// Register (or clear, with nullptr) the per-check callback.
  void set_check_callback(CheckCallback callback) {
    on_check_ = std::move(callback);
  }

  const std::vector<Alert>& alerts() const noexcept {
    return detector_.alerts();
  }

  /// Subjects currently in the alarmed state.
  std::vector<Addr> active_alarms() const { return detector_.active_alarms(); }

  const TrackingDcs& tracker() const noexcept { return tracker_; }
  std::uint64_t updates_ingested() const noexcept { return ingested_; }
  std::uint64_t checks_run() const noexcept { return detector_.checks_run(); }
  const DdosMonitorConfig& config() const noexcept { return config_; }
  std::size_t memory_bytes() const;

 private:
  void check();

  DdosMonitorConfig config_;
  TrackingDcs tracker_;
  /// The alert state machine proper; shared (by type) with the src/service
  /// collector, which runs it over the merged multi-site view.
  BaselineDetector detector_;
  CheckCallback on_check_;
  std::uint64_t ingested_ = 0;
};

}  // namespace dcs
