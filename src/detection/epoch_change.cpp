#include "detection/epoch_change.hpp"

#include <stdexcept>

namespace dcs {

EpochChangeDetector::EpochChangeDetector()
    : EpochChangeDetector(Config{}) {}

EpochChangeDetector::EpochChangeDetector(Config config)
    : config_(config),
      cumulative_(config.sketch),
      epoch_start_(config.sketch) {
  if (config.epoch_updates == 0)
    throw std::invalid_argument("EpochChangeDetector: epoch_updates >= 1");
  if (config.top_k == 0)
    throw std::invalid_argument("EpochChangeDetector: top_k >= 1");
}

void EpochChangeDetector::update(Addr group, Addr member, int delta) {
  cumulative_.update(group, member, delta);
  if (++ingested_ % config_.epoch_updates == 0) close_epoch();
}

void EpochChangeDetector::ingest(const std::vector<FlowUpdate>& updates) {
  for (const FlowUpdate& u : updates) update(u.dest, u.source, u.delta);
}

std::vector<TopKEntry> EpochChangeDetector::current_changes(
    std::size_t k) const {
  DistinctCountSketch difference = cumulative_;
  difference.subtract(epoch_start_);
  return difference.top_k(k).entries;
}

void EpochChangeDetector::close_epoch() {
  EpochReport report;
  report.epoch = epoch_++;
  report.top_changes = current_changes(config_.top_k);
  reports_.push_back(std::move(report));
  epoch_start_ = cumulative_;
}

std::size_t EpochChangeDetector::memory_bytes() const {
  std::size_t bytes = cumulative_.memory_bytes() + epoch_start_.memory_bytes();
  for (const EpochReport& report : reports_)
    bytes += report.top_changes.capacity() * sizeof(TopKEntry);
  return bytes;
}

}  // namespace dcs
