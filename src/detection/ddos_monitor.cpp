#include "detection/ddos_monitor.hpp"

#include <stdexcept>

#include "obs/instruments.hpp"

namespace dcs {

DdosMonitor::DdosMonitor(DdosMonitorConfig config)
    : config_(config), tracker_(config.sketch), detector_(config.detector()) {
  if (config.top_k == 0)
    throw std::invalid_argument("DdosMonitor: top_k >= 1");
  if (config.check_interval == 0)
    throw std::invalid_argument("DdosMonitor: check_interval >= 1");
}

void DdosMonitor::ingest(const FlowUpdate& update) {
  if (config_.rank_by == DdosMonitorConfig::RankBy::kDestination)
    tracker_.update(update.dest, update.source, update.delta);
  else
    tracker_.update(update.source, update.dest, update.delta);
  if (++ingested_ % config_.check_interval == 0) check();
}

void DdosMonitor::ingest(const std::vector<FlowUpdate>& updates) {
  for (const FlowUpdate& update : updates) ingest(update);
}

void DdosMonitor::check_now() { check(); }

void DdosMonitor::check() {
  BaselineDetector::Outcome outcome;
  {
    obs::ScopedTimer timer(obs::MonitorMetrics::get().check_ns);
    const TopKResult result = tracker_.top_k(config_.top_k);
    outcome = detector_.observe(result.entries, ingested_);
  }

  if (obs::recording()) {
    auto& metrics = obs::MonitorMetrics::get();
    metrics.checks.inc();
    metrics.alerts_raised.inc(outcome.raised);
    metrics.alerts_cleared.inc(outcome.cleared);
    metrics.active_alarms.set(
        static_cast<std::int64_t>(detector_.active_alarm_count()));
  }

  if (on_check_) on_check_(*this);
}

std::size_t DdosMonitor::memory_bytes() const {
  return tracker_.memory_bytes() + detector_.memory_bytes();
}

}  // namespace dcs
