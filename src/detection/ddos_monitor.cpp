#include "detection/ddos_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/instruments.hpp"

namespace dcs {

DdosMonitor::DdosMonitor(DdosMonitorConfig config)
    : config_(config), tracker_(config.sketch) {
  if (config.top_k == 0)
    throw std::invalid_argument("DdosMonitor: top_k >= 1");
  if (config.check_interval == 0)
    throw std::invalid_argument("DdosMonitor: check_interval >= 1");
  if (config.baseline_alpha <= 0.0 || config.baseline_alpha > 1.0)
    throw std::invalid_argument("DdosMonitor: baseline_alpha in (0, 1]");
  if (config.alarm_factor <= 1.0)
    throw std::invalid_argument("DdosMonitor: alarm_factor > 1");
}

void DdosMonitor::ingest(const FlowUpdate& update) {
  if (config_.rank_by == DdosMonitorConfig::RankBy::kDestination)
    tracker_.update(update.dest, update.source, update.delta);
  else
    tracker_.update(update.source, update.dest, update.delta);
  if (++ingested_ % config_.check_interval == 0) check();
}

void DdosMonitor::ingest(const std::vector<FlowUpdate>& updates) {
  for (const FlowUpdate& update : updates) ingest(update);
}

void DdosMonitor::check_now() { check(); }

double DdosMonitor::alarm_threshold(double baseline) const {
  const double learned = std::max(config_.alarm_factor * baseline,
                                  static_cast<double>(config_.min_absolute));
  return std::min(learned, static_cast<double>(config_.absolute_alarm));
}

void DdosMonitor::check() {
  std::uint64_t raised = 0, cleared = 0;
  {
    obs::ScopedTimer timer(obs::MonitorMetrics::get().check_ns);
    const TopKResult result = tracker_.top_k(config_.top_k);
    const bool warming_up = ++checks_run_ <= config_.warmup_checks;
    for (const TopKEntry& entry : result.entries) {
      double& baseline = baselines_.try_emplace(entry.group, 0.0).first->second;
      const double estimate = static_cast<double>(entry.estimate);
      const bool over_baseline =
          !warming_up &&
          ((estimate > config_.alarm_factor * baseline &&
            entry.estimate >= config_.min_absolute) ||
           entry.estimate >= config_.absolute_alarm);

      bool& alarmed = alarmed_.try_emplace(entry.group, false).first->second;
      if (over_baseline && !alarmed) {
        alarmed = true;
        ++raised;
        alerts_.push_back({Alert::Kind::kRaised, entry.group, entry.estimate,
                           baseline, ingested_, checks_run_,
                           alarm_threshold(baseline)});
      } else if (!over_baseline && alarmed) {
        alarmed = false;
        ++cleared;
        alerts_.push_back({Alert::Kind::kCleared, entry.group, entry.estimate,
                           baseline, ingested_, checks_run_,
                           alarm_threshold(baseline)});
      }

      // Baselines adapt only while a subject is NOT alarmed, so a sustained
      // attack cannot teach the profile that attack traffic is normal.
      if (!alarmed)
        baseline = (1.0 - config_.baseline_alpha) * baseline +
                   config_.baseline_alpha * estimate;
    }

    // Subjects that dropped out of the top-k entirely have subsided: clear
    // them.
    for (auto& [subject, alarmed] : alarmed_) {
      if (!alarmed) continue;
      const bool still_listed =
          std::any_of(result.entries.begin(), result.entries.end(),
                      [subject = subject](const TopKEntry& e) {
                        return e.group == subject;
                      });
      if (!still_listed) {
        alarmed = false;
        ++cleared;
        alerts_.push_back({Alert::Kind::kCleared, subject, 0,
                           baselines_[subject], ingested_, checks_run_,
                           alarm_threshold(baselines_[subject])});
      }
    }
  }

  if (obs::recording()) {
    auto& metrics = obs::MonitorMetrics::get();
    metrics.checks.inc();
    metrics.alerts_raised.inc(raised);
    metrics.alerts_cleared.inc(cleared);
    metrics.active_alarms.set(static_cast<std::int64_t>(
        std::count_if(alarmed_.begin(), alarmed_.end(),
                      [](const auto& entry) { return entry.second; })));
  }

  if (on_check_) on_check_(*this);
}

std::vector<Addr> DdosMonitor::active_alarms() const {
  std::vector<Addr> subjects;
  for (const auto& [subject, alarmed] : alarmed_)
    if (alarmed) subjects.push_back(subject);
  std::sort(subjects.begin(), subjects.end());
  return subjects;
}

std::size_t DdosMonitor::memory_bytes() const {
  return tracker_.memory_bytes() +
         baselines_.size() * (sizeof(Addr) + sizeof(double) + 16) +
         alarmed_.size() * (sizeof(Addr) + sizeof(bool) + 16) +
         alerts_.capacity() * sizeof(Alert);
}

}  // namespace dcs
