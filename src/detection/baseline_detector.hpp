// BaselineDetector — the EWMA-baseline alert state machine, factored out of
// DdosMonitor so any component that can produce a periodic top-k view can
// run the paper's detection logic over it.
//
// DdosMonitor feeds it from its own Tracking-DCS every check_interval
// updates; the sketch-shipping collector (src/service) feeds it from the
// *merged* multi-site tracker after every epoch delta it ingests. The state
// machine itself is unchanged either way: per-subject EWMA baselines that
// learn only while a subject is un-alarmed, a relative alarm factor, an
// absolute floor, an optional absolute ceiling, and warmup checks during
// which baselines learn silently.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/serialize.hpp"
#include "detection/alert_types.hpp"
#include "sketch/top_k.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

struct BaselineDetectorConfig {
  /// EWMA smoothing for per-subject baselines (0 < alpha <= 1).
  double baseline_alpha = 0.05;
  /// Alarm when estimate > alarm_factor * baseline ...
  double alarm_factor = 8.0;
  /// ... and estimate >= min_absolute (suppresses noise on cold start).
  std::uint64_t min_absolute = 512;
  /// Hard ceiling (the paper's footnote-3 threshold query f_v >= τ): an
  /// estimate at or above this alarms regardless of the learned baseline.
  /// Catches slow-ramp attacks that train the EWMA along with them.
  /// Default: disabled.
  std::uint64_t absolute_alarm = UINT64_MAX;
  /// Checks during which baselines learn but no alerts fire (profile
  /// bootstrap over known-good traffic, §2's "baseline profiles ... created
  /// over longer periods of time").
  std::uint64_t warmup_checks = 0;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

class BaselineDetector {
 public:
  /// Alert deltas produced by one observe() call.
  struct Outcome {
    std::uint64_t raised = 0;
    std::uint64_t cleared = 0;
  };

  explicit BaselineDetector(BaselineDetectorConfig config = {});

  /// Run one check epoch over the current top-k candidates. Appends raise /
  /// clear events to alerts(); `stream_position` is recorded in each event
  /// for auditability (updates ingested, or updates merged for a collector).
  Outcome observe(const std::vector<TopKEntry>& entries,
                  std::uint64_t stream_position);

  const std::vector<Alert>& alerts() const noexcept { return alerts_; }

  /// Subjects currently in the alarmed state, ascending.
  std::vector<Addr> active_alarms() const;
  std::size_t active_alarm_count() const;

  std::uint64_t checks_run() const noexcept { return checks_run_; }
  const BaselineDetectorConfig& config() const noexcept { return config_; }
  std::size_t memory_bytes() const;

  /// Serialize the mutable state (baselines, alarm flags, alert history,
  /// check count) in deterministic (sorted-subject) order. The config is
  /// NOT serialized — deserialize() takes it from the caller, so persisted
  /// state can be resumed under updated thresholds.
  void serialize(BinaryWriter& writer) const;
  static BaselineDetector deserialize(BinaryReader& reader,
                                      BaselineDetectorConfig config = {});

 private:
  double alarm_threshold(double baseline) const;

  BaselineDetectorConfig config_;
  std::unordered_map<Addr, double> baselines_;
  std::unordered_map<Addr, bool> alarmed_;
  std::vector<Alert> alerts_;
  std::uint64_t checks_run_ = 0;
};

}  // namespace dcs
