#include "common/hash.hpp"

namespace dcs {

BucketHashFamily::BucketHashFamily(std::uint64_t seed, int count,
                                   std::uint32_t range)
    : range_(range) {
  hashes_.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) {
    // Derive per-table seeds by mixing the table index into the master seed;
    // mix64 guarantees the derived seeds share no simple algebraic structure.
    hashes_.emplace_back(mix64(seed + 0x517cc1b727220a95ULL *
                                          static_cast<std::uint64_t>(j + 1)));
  }
}

}  // namespace dcs
