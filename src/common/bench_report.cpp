#include "common/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

#include "common/serialize.hpp"

namespace dcs::bench {

namespace {

/// First "model name" line of /proc/cpuinfo, or "unknown" off Linux.
std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.rfind("model name", 0) == 0)
      return line.substr(line.find_first_not_of(" \t", colon + 1));
  }
  return "unknown";
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

const char* direction_name(Direction dir) {
  switch (dir) {
    case Direction::kHigherIsBetter:
      return "higher";
    case Direction::kLowerIsBetter:
      return "lower";
    case Direction::kInfo:
      break;
  }
  return "info";
}

/// %.6g with NaN/Inf clamped to 0 — JSON has no literal for them, and a
/// poisoned measurement must not poison the whole file.
std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

/// Filename-safe subset of a name: [A-Za-z0-9._-], everything else `-`.
/// The raw name still appears (escaped) inside the JSON body.
std::string sanitize_for_filename(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '-';
  }
  return out.empty() ? std::string("unnamed") : out;
}

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonReport::JsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  if (const char* injected = std::getenv("DCS_RUN_ID");
      injected != nullptr && *injected != '\0') {
    run_id_ = injected;
  } else {
    const std::time_t now = std::time(nullptr);
    std::tm parts{};
    localtime_r(&now, &parts);
    char buffer[16];
    std::strftime(buffer, sizeof buffer, "%Y-%m-%d", &parts);
    run_id_ = buffer;
  }
  meta("cpu", cpu_model());
  meta("cores", static_cast<double>(std::thread::hardware_concurrency()));
  meta("compiler", compiler_id());
#ifdef DCS_BUILD_TYPE
  meta("build_type", DCS_BUILD_TYPE);
#else
  meta("build_type", "unknown");
#endif
#ifdef DCS_GIT_SHA
  meta("git_sha", DCS_GIT_SHA);
#else
  meta("git_sha", "unknown");
#endif
  const char* full = std::getenv("DCS_FULL");
  meta("full", full != nullptr && *full != '\0' && std::string(full) != "0"
                   ? 1.0
                   : 0.0);
}

void JsonReport::set_run_id(std::string run_id) {
  if (!run_id.empty()) run_id_ = std::move(run_id);
}

void JsonReport::meta(const std::string& key, const std::string& v) {
  auto it = std::find_if(meta_.begin(), meta_.end(),
                         [&](const MetaEntry& e) { return e.key == key; });
  if (it == meta_.end()) {
    meta_.push_back({key, v, 0.0, false});
  } else {
    it->text = v;
    it->is_number = false;
  }
}

void JsonReport::meta(const std::string& key, double v) {
  auto it = std::find_if(meta_.begin(), meta_.end(),
                         [&](const MetaEntry& e) { return e.key == key; });
  if (it == meta_.end()) {
    meta_.push_back({key, {}, v, true});
  } else {
    it->number = v;
    it->is_number = true;
  }
}

void JsonReport::metric(const std::string& section, const std::string& key,
                        MetricValue v) {
  auto it = std::find_if(sections_.begin(), sections_.end(),
                         [&](const Section& s) { return s.name == section; });
  if (it == sections_.end()) {
    sections_.push_back({section, {}});
    it = std::prev(sections_.end());
  }
  auto entry = std::find_if(it->values.begin(), it->values.end(),
                            [&](const auto& kv) { return kv.first == key; });
  if (entry == it->values.end())
    it->values.emplace_back(key, v);
  else
    entry->second = v;
}

void JsonReport::metric(const std::string& section, const std::string& key,
                        double value, Direction dir, double noise_pct) {
  MetricValue v;
  v.value = value;
  v.dir = dir;
  v.noise_pct = noise_pct;
  metric(section, key, v);
}

void JsonReport::value(const std::string& section, const std::string& key,
                       double v) {
  metric(section, key, v, Direction::kInfo);
}

std::string JsonReport::render() const {
  std::string out = "{\n  \"schema\": 2,\n  \"bench\": \"" +
                    json_escape(bench_name_) + "\",\n  \"run_id\": \"" +
                    json_escape(run_id_) + "\",\n  \"meta\": {";
  for (std::size_t m = 0; m < meta_.size(); ++m) {
    out += m == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(meta_[m].key) + "\": ";
    out += meta_[m].is_number ? number(meta_[m].number)
                              : "\"" + json_escape(meta_[m].text) + "\"";
  }
  out += meta_.empty() ? "},\n" : "\n  },\n";
  out += "  \"results\": {";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    out += s == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(sections_[s].name) + "\": {";
    const auto& values = sections_[s].values;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const MetricValue& v = values[i].second;
      out += i == 0 ? "\n" : ",\n";
      out += "      \"" + json_escape(values[i].first) + "\": {";
      out += "\"value\": " + number(v.value);
      out += ", \"dir\": \"" + std::string(direction_name(v.dir)) + "\"";
      if (v.noise_pct >= 0.0)
        out += ", \"noise_pct\": " + number(v.noise_pct);
      if (v.count > 0.0) out += ", \"count\": " + number(v.count);
      if (std::isfinite(v.p50)) out += ", \"p50\": " + number(v.p50);
      if (std::isfinite(v.p90)) out += ", \"p90\": " + number(v.p90);
      if (std::isfinite(v.p99)) out += ", \"p99\": " + number(v.p99);
      if (std::isfinite(v.min_value))
        out += ", \"min\": " + number(v.min_value);
      if (v.deterministic) out += ", \"deterministic\": true";
      out += "}";
    }
    out += values.empty() ? "}" : "\n    }";
  }
  out += sections_.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string JsonReport::filename() const {
  return "BENCH_" + sanitize_for_filename(run_id_) + "_" +
         sanitize_for_filename(bench_name_) + ".json";
}

std::string JsonReport::write(const std::string& dir) const {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/" + filename();
  atomic_write_file(path, render());
  return path;
}

}  // namespace dcs::bench
