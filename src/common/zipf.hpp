// Zipfian sampler used by the paper's synthetic workload generator (§6.1).
//
// The generator draws destination ranks i ∈ {1..d} with probability
// proportional to 1/i^z. For the d and z ranges used in the paper
// (d up to 1e5, z up to 2.5) we precompute the CDF once and sample by
// binary search — O(d) setup, O(log d) per draw, numerically exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.hpp"

namespace dcs {

class ZipfDistribution {
 public:
  /// Distribution over {0, ..., n-1} with Pr[i] ∝ 1/(i+1)^skew.
  /// skew == 0 degenerates to uniform.
  ZipfDistribution(std::size_t n, double skew);

  std::size_t operator()(Xoshiro256& rng) const;

  /// Exact probability of rank i (0-based).
  double pmf(std::size_t i) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double skew() const noexcept { return skew_; }

 private:
  std::vector<double> cdf_;  // cdf_[i] = Pr[rank <= i]
  double skew_ = 0.0;
};

}  // namespace dcs
