#include "common/options.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dcs {

namespace {

std::string to_env_name(const std::string& name) {
  std::string env = "DCS_";
  for (char c : name)
    env += static_cast<char>(c == '-' ? '_' : std::toupper(static_cast<unsigned char>(c)));
  return env;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      args_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args_.emplace_back(arg, argv[++i]);
    } else {
      args_.emplace_back(arg, "1");  // bare flag
    }
  }
}

std::optional<std::string> Options::raw(const std::string& name) const {
  const auto it = std::find_if(args_.begin(), args_.end(),
                               [&](const auto& kv) { return kv.first == name; });
  if (it != args_.end()) return it->second;
  if (const char* env = std::getenv(to_env_name(name).c_str())) return std::string(env);
  return std::nullopt;
}

std::int64_t Options::integer(const std::string& name, std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Options::real(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Options::flag(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return *v != "0" && *v != "false" && *v != "no";
}

std::string Options::str(const std::string& name, const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

}  // namespace dcs
