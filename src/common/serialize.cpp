#include "common/serialize.hpp"

#include <array>

namespace dcs {

namespace {

// Lazily built 256-entry table for the reflected IEEE polynomial. Thread-safe
// via magic-static initialization.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void write_header(BinaryWriter& w, std::uint32_t magic, std::uint8_t version) {
  w.u32(magic);
  w.u8(version);
}

std::uint8_t read_header(BinaryReader& r, std::uint32_t magic,
                         std::uint8_t max_version) {
  const std::uint32_t got = r.u32();
  if (got != magic) throw SerializeError("bad magic");
  const std::uint8_t version = r.u8();
  if (version == 0 || version > max_version)
    throw SerializeError("unsupported version");
  return version;
}

void write_crc_footer(BinaryWriter& w) {
  const std::uint32_t crc = w.crc();
  w.u32(crc);
}

void read_crc_footer(BinaryReader& r) {
  const std::uint32_t computed = r.crc();
  if (r.u32() != computed)
    throw SerializeError("CRC mismatch: corrupted or truncated input");
}

}  // namespace dcs
