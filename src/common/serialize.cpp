#include "common/serialize.hpp"

namespace dcs {

void write_header(BinaryWriter& w, std::uint32_t magic, std::uint8_t version) {
  w.u32(magic);
  w.u8(version);
}

void read_header(BinaryReader& r, std::uint32_t magic, std::uint8_t max_version) {
  const std::uint32_t got = r.u32();
  if (got != magic) throw SerializeError("bad magic");
  const std::uint8_t version = r.u8();
  if (version == 0 || version > max_version)
    throw SerializeError("unsupported version");
}

}  // namespace dcs
