#include "common/serialize.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dcs {

namespace {

// Lazily built 256-entry table for the reflected IEEE polynomial. Thread-safe
// via magic-static initialization.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void write_header(BinaryWriter& w, std::uint32_t magic, std::uint8_t version) {
  w.u32(magic);
  w.u8(version);
}

std::uint8_t read_header(BinaryReader& r, std::uint32_t magic,
                         std::uint8_t max_version) {
  const std::uint32_t got = r.u32();
  if (got != magic) throw SerializeError("bad magic");
  const std::uint8_t version = r.u8();
  if (version == 0 || version > max_version)
    throw SerializeError("unsupported version");
  return version;
}

void write_crc_footer(BinaryWriter& w) {
  const std::uint32_t crc = w.crc();
  w.u32(crc);
}

void read_crc_footer(BinaryReader& r) {
  const std::uint32_t computed = r.crc();
  if (r.u32() != computed)
    throw SerializeError("CRC mismatch: corrupted or truncated input");
}

namespace {

/// fsync an fd, timing the call; throws SerializeError on failure.
void fsync_timed(int fd, const std::string& what, std::uint64_t* fsync_ns) {
  const auto start = std::chrono::steady_clock::now();
  if (::fsync(fd) != 0)
    throw SerializeError("atomic_write_file: fsync failed for " + what);
  if (fsync_ns) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    *fsync_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
}

/// RAII fd so error paths cannot leak descriptors.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes,
                       std::uint64_t* fsync_ns) {
  if (fsync_ns) *fsync_ns = 0;
  const std::string tmp = path + ".tmp";
  {
    Fd file;
    file.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (file.fd < 0)
      throw SerializeError("atomic_write_file: cannot create " + tmp);
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ::ssize_t n =
          ::write(file.fd, bytes.data() + written, bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::remove(tmp.c_str());
        throw SerializeError("atomic_write_file: write failed for " + tmp);
      }
      written += static_cast<std::size_t>(n);
    }
    try {
      fsync_timed(file.fd, tmp, fsync_ns);
    } catch (...) {
      std::remove(tmp.c_str());
      throw;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SerializeError("atomic_write_file: rename to " + path + " failed");
  }
  // The rename is only durable once the directory entry is: fsync the parent.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  Fd dirfd;
  dirfd.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd.fd < 0)
    throw SerializeError("atomic_write_file: cannot open directory " + dir);
  fsync_timed(dirfd.fd, dir, fsync_ns);
}

std::optional<std::string> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

}  // namespace dcs
