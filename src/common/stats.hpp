// Summary statistics over repeated experiment runs.
#pragma once

#include <cstddef>
#include <vector>

namespace dcs {

/// Incremental mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. The input vector is copied and sorted.
double percentile(std::vector<double> samples, double q);

}  // namespace dcs
