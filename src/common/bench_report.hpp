// Machine-readable benchmark reports: the unified BENCH JSON schema.
//
// Every perf-trajectory benchmark (bench/*, tools/dcs_chaos) emits one
// `BENCH_<run_id>_<bench>.json` file per run through JsonReport, and
// scripts/bench_runner.py merges them into the per-run `BENCH_<run_id>.json`
// trajectory record it diffs against the previous run. The schema carries
// everything the diff needs to be noise-aware and machine-aware:
//
//   {
//     "schema": 2,
//     "bench": "pipeline_throughput",
//     "run_id": "2026-08-08",
//     "meta": {"cpu": "...", "cores": 8, "compiler": "gcc 13.2.0",
//              "build_type": "RelWithDebInfo", "git_sha": "2e1d5b5",
//              "full": 0, "runs": 3},
//     "results": {
//       "<section>": {
//         "<metric>": {"value": 14.5, "dir": "higher", "noise_pct": 8.2,
//                      "count": 3, "p50": ..., "p90": ..., "p99": ...,
//                      "min": ..., "deterministic": true}
//       }
//     }
//   }
//
// Per-metric fields beyond "value":
//   dir            "higher" / "lower" (is better) or "info" (never gated);
//   noise_pct      recorded run-to-run spread of this metric, percent —
//                  the regression gate scales its threshold by it;
//   count          samples/runs behind the value;
//   p50/p90/p99    distribution summary when the metric is a timing;
//   min            best-of-N floor when the value is a best-of-N pick;
//   deterministic  true for seeded, timing-free metrics (recall, memory,
//                  wire bytes) that must reproduce exactly on any machine —
//                  the gate applies them even across machines, while
//                  timing metrics are only compared against a baseline
//                  recorded on the same CPU model.
//
// The date-only filename of the first schema clobbered same-day runs of two
// different benches; the bench name is now part of the filename. The run id
// defaults to the local date (one bench run by hand) but is injected once
// per suite via the DCS_RUN_ID environment variable (UTC, set by
// bench_runner.py) or the --run-id flag, so a suite crossing midnight — or
// timezones — still lands in one logical run.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace dcs::bench {

/// Which way a metric is allowed to move. kInfo metrics are recorded for
/// the trajectory but never gated.
enum class Direction { kHigherIsBetter, kLowerIsBetter, kInfo };

/// One named scalar plus the context the regression gate needs.
struct MetricValue {
  /// NaN sentinel: optional fields initialized to it are omitted from the
  /// JSON (JSON has no NaN literal; *recorded* non-finite values clamp to 0).
  static constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();

  double value = 0.0;
  Direction dir = Direction::kInfo;
  double noise_pct = -1.0;  ///< run-to-run spread, percent; < 0 = unrecorded
  double count = 0.0;       ///< samples behind the value; 0 = omitted
  double p50 = kUnset, p90 = kUnset, p99 = kUnset;
  double min_value = kUnset;  ///< best-of-N floor
  bool deterministic = false;
};

/// Escape a string for embedding inside a JSON string literal: `"`, `\`,
/// and control characters. Everything else (including UTF-8 bytes) passes
/// through unchanged.
std::string json_escape(std::string_view raw);

class JsonReport {
 public:
  /// The run id comes from $DCS_RUN_ID when set (bench_runner.py exports
  /// one UTC date per suite invocation), else falls back to the local
  /// date — the original construction-time behavior.
  explicit JsonReport(std::string bench_name);

  /// Override the run id (e.g. from a --run-id flag). Empty = keep current.
  void set_run_id(std::string run_id);
  const std::string& run_id() const { return run_id_; }

  /// Machine/config metadata. The constructor pre-fills cpu, cores,
  /// compiler, build_type, git_sha and full; meta() overwrites by key.
  void meta(const std::string& key, const std::string& v);
  void meta(const std::string& key, double v);

  /// Record a metric. Re-used (section, key) pairs overwrite in place;
  /// sections and keys preserve first-insertion order.
  void metric(const std::string& section, const std::string& key,
              MetricValue v);
  void metric(const std::string& section, const std::string& key, double value,
              Direction dir, double noise_pct = -1.0);

  /// Back-compat shorthand: an ungated info metric.
  void value(const std::string& section, const std::string& key, double v);

  std::string render() const;

  /// Write `dir`/BENCH_<run_id>_<bench>.json (atomic rename); returns the
  /// path written. Run id and bench name are sanitized for the filename
  /// (raw values stay in the JSON body, escaped). Throws on I/O failure.
  std::string write(const std::string& dir = ".") const;

  /// The filename write() would use, without writing.
  std::string filename() const;

 private:
  struct MetaEntry {
    std::string key;
    std::string text;    // used when is_number == false
    double number = 0.0;
    bool is_number = false;
  };
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, MetricValue>> values;
  };

  std::string bench_name_;
  std::string run_id_;
  std::vector<MetaEntry> meta_;
  std::vector<Section> sections_;
};

}  // namespace dcs::bench
