// Minimal wall-clock stopwatch for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace dcs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/reset, in nanoseconds.
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double elapsed_us() const { return static_cast<double>(elapsed_ns()) / 1e3; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dcs
