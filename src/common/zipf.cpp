#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcs {

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) : skew_(skew) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  if (skew < 0.0) throw std::invalid_argument("ZipfDistribution: skew must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  const double inv = 1.0 / total;
  for (double& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfDistribution::operator()(Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace dcs
