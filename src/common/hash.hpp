// Seeded 64-bit hash functions used by the Distinct-Count Sketch.
//
// The paper requires two kinds of hash functions over the pair domain [m^2]:
//   * a "level" hash h with geometric bucket probabilities
//     Pr[h(x) = l] = 2^-(l+1), implemented (per Flajolet-Martin) as the index
//     of the least-significant set bit of a uniformly randomizing function;
//   * r independent uniform hashes g_1..g_r mapping [m^2] -> [s].
//
// Both are built on top of strong seeded 64->64-bit mixers. We provide two
// mixer qualities (STRONG: two xor-shift-multiply rounds of the splitmix64 /
// murmur3 finalizer family; WEAK: a single multiply, used only by the hash-
// quality ablation benchmark to show why mixing strength matters).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"

namespace dcs {

/// splitmix64 finalizer: a full-avalanche 64->64 bit mixer.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// murmur3 fmix64 finalizer (used when a second independent mixer is needed).
inline std::uint64_t fmix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Deliberately weak mixer (single multiply, no final avalanche) — exists only
/// so the hash-quality ablation can demonstrate the failure mode.
inline std::uint64_t weak_mix64(std::uint64_t x) noexcept {
  return x * 0x9e3779b97f4a7c15ULL;
}

/// 128-bit product type (GCC/Clang extension, wrapped to stay -Wpedantic
/// clean).
__extension__ using uint128 = unsigned __int128;

/// Map a uniform 64-bit hash onto [0, range) without modulo bias
/// (Lemire's multiply-shift reduction).
inline std::uint32_t reduce_range(std::uint64_t hash, std::uint32_t range) noexcept {
  return static_cast<std::uint32_t>((static_cast<uint128>(hash) * range) >> 64);
}

/// A seeded uniform hash: h(x) = mix(seed ^ mix(x)). Distinct seeds give
/// (empirically) independent functions; determinism across runs is guaranteed
/// for a fixed seed.
class SeededHash {
 public:
  explicit SeededHash(std::uint64_t seed = 0) noexcept : seed_(mix64(seed)) {}

  std::uint64_t operator()(std::uint64_t key) const noexcept {
    return fmix64(seed_ ^ mix64(key));
  }

  /// Hash a key whose mix64() the caller has already computed — batch ingest
  /// hashes each key once and reuses the mix across the level hash and every
  /// bucket hash. from_mixed(mix64(k)) == operator()(k) by construction.
  std::uint64_t from_mixed(std::uint64_t mixed_key) const noexcept {
    return fmix64(seed_ ^ mixed_key);
  }

  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Geometric "level" hash: Pr[level(x) = l] = 2^-(l+1), capped at max_level.
/// Implemented as LSB(uniform_hash(x)) exactly as suggested in the paper
/// (footnote 5, after Flajolet-Martin).
class LevelHash {
 public:
  LevelHash() : LevelHash(0, 63) {}
  LevelHash(std::uint64_t seed, int max_level) noexcept
      : hash_(seed), max_level_(max_level) {}

  int operator()(std::uint64_t key) const noexcept {
    return level_from(hash_(key));
  }

  /// Level for a precomputed mix64(key) (see SeededHash::from_mixed).
  int from_mixed(std::uint64_t mixed_key) const noexcept {
    return level_from(hash_.from_mixed(mixed_key));
  }

  int max_level() const noexcept { return max_level_; }

 private:
  int level_from(std::uint64_t h) const noexcept {
    // h == 0 happens with probability 2^-64; fold it into the deepest level.
    const int l = (h == 0) ? max_level_ : lsb_index(h);
    return l > max_level_ ? max_level_ : l;
  }

  SeededHash hash_;
  int max_level_;
};

/// A family of r independent uniform hashes g_j : [2^64] -> [s], one per
/// second-level hash table of a first-level bucket.
class BucketHashFamily {
 public:
  BucketHashFamily() = default;

  /// Construct `count` functions onto [0, range), derived from `seed`.
  BucketHashFamily(std::uint64_t seed, int count, std::uint32_t range);

  std::uint32_t bucket(int j, std::uint64_t key) const noexcept {
    return reduce_range(hashes_[static_cast<std::size_t>(j)](key), range_);
  }

  /// bucket(j, key) for a precomputed mix64(key) (see SeededHash::from_mixed).
  std::uint32_t bucket_mixed(int j, std::uint64_t mixed_key) const noexcept {
    return reduce_range(
        hashes_[static_cast<std::size_t>(j)].from_mixed(mixed_key), range_);
  }

  int count() const noexcept { return static_cast<int>(hashes_.size()); }
  std::uint32_t range() const noexcept { return range_; }

 private:
  std::vector<SeededHash> hashes_;
  std::uint32_t range_ = 1;
};

}  // namespace dcs
