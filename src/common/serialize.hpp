// Minimal binary serialization for sketches and trace files.
//
// Format: little-endian fixed-width integers, length-prefixed vectors. All
// writers/readers are explicit (no reflection) so the on-disk layout is an
// auditable contract; each top-level object carries a magic + version header.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dcs {

/// Thrown on malformed input (bad magic, truncated stream, absurd lengths,
/// CRC mismatches).
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`,
/// continuing from `seed` (pass a previous return value to extend a running
/// checksum; the default starts a fresh one). Table-driven, ~1 GB/s — fast
/// enough for serialization paths, never on the per-update hot path.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0) noexcept;

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  template <typename T>
  void pod_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }

  /// Running CRC-32 of every byte written so far (see crc_reset()).
  std::uint32_t crc() const noexcept { return crc_; }

  /// Restart the running CRC. Serializers call this before writing an
  /// object body so the integrity footer covers exactly that object even
  /// when several are written through one writer.
  void crc_reset() noexcept { crc_ = 0; }

 private:
  void raw(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!out_) throw SerializeError("BinaryWriter: write failed");
    crc_ = crc32(data, n, crc_);
  }

  std::ostream& out_;
  std::uint32_t crc_ = 0;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  std::uint8_t u8() { return read_as<std::uint8_t>(); }
  std::uint32_t u32() { return read_as<std::uint32_t>(); }
  std::uint64_t u64() { return read_as<std::uint64_t>(); }
  std::int32_t i32() { return read_as<std::int32_t>(); }
  std::int64_t i64() { return read_as<std::int64_t>(); }
  double f64() { return read_as<double>(); }

  std::string str() {
    const std::uint64_t n = u64();
    check_length(n);
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }

  template <typename T>
  std::vector<T> pod_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    check_length(n * sizeof(T));
    std::vector<T> v(n);
    raw(v.data(), n * sizeof(T));
    return v;
  }

  /// Running CRC-32 of every byte read so far (see crc_reset()).
  std::uint32_t crc() const noexcept { return crc_; }

  /// Restart the running CRC (mirror of BinaryWriter::crc_reset()).
  void crc_reset() noexcept { crc_ = 0; }

 private:
  template <typename T>
  T read_as() {
    T v;
    raw(&v, sizeof v);
    return v;
  }

  void raw(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n)
      throw SerializeError("BinaryReader: truncated input");
    crc_ = crc32(data, n, crc_);
  }

  static void check_length(std::uint64_t n) {
    // 1 GiB sanity cap: protects against reading garbage length prefixes.
    if (n > (1ULL << 30)) throw SerializeError("BinaryReader: absurd length");
  }

  std::istream& in_;
  std::uint32_t crc_ = 0;
};

/// Write/verify a 4-byte magic + 1-byte version header. read_header returns
/// the version actually read so callers can branch on format revisions.
void write_header(BinaryWriter& w, std::uint32_t magic, std::uint8_t version);
std::uint8_t read_header(BinaryReader& r, std::uint32_t magic,
                         std::uint8_t max_version);

/// Append the writer's running CRC as a u32 integrity footer. Pair with
/// read_crc_footer: the serializer calls crc_reset() before the body,
/// write_crc_footer after it; the deserializer mirrors with crc_reset /
/// read_crc_footer and gets a SerializeError on any bit flip or truncation
/// inside the covered span.
void write_crc_footer(BinaryWriter& w);

/// Read the u32 footer and compare against the reader's running CRC over the
/// bytes consumed since its last crc_reset(). Throws SerializeError on
/// mismatch.
void read_crc_footer(BinaryReader& r);

// --- durable file I/O -------------------------------------------------------
//
// Helpers for state that must survive a crash (service checkpoints, epoch
// journals). They only move bytes; integrity framing (magic/version header +
// CRC footer) stays with the serializers above.

/// Atomically publish `bytes` at `path`: write to `path + ".tmp"`, fsync the
/// file, rename over `path`, then fsync the containing directory so the
/// rename itself is durable. A crash at any point leaves either the old file
/// or the new one — never a torn mix. Throws SerializeError on any I/O
/// failure (the temp file is removed best-effort). If `fsync_ns` is non-null
/// it receives the time spent in the two fsync calls.
void atomic_write_file(const std::string& path, std::string_view bytes,
                       std::uint64_t* fsync_ns = nullptr);

/// Read a whole file into memory. Returns std::nullopt if the file does not
/// exist or cannot be read — corruption handling belongs to the caller's
/// CRC checks, not here.
std::optional<std::string> read_file_bytes(const std::string& path);

}  // namespace dcs
