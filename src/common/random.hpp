// xoshiro256** PRNG — fast, high-quality, deterministic across platforms.
// Used for workload generation and for choosing sketch seeds in experiments;
// std::mt19937_64 is avoided because its stream is slower and its seeding via
// seed_seq is awkward to reproduce.
#pragma once

#include <cstdint>

#include "common/hash.hpp"

namespace dcs {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0xdcdcdcdcULL) noexcept {
    // Expand the 64-bit seed into 256 bits of state via splitmix64, as the
    // xoshiro authors recommend.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    // 128-bit multiply rejection-free reduction is fine for our workloads.
    return static_cast<std::uint64_t>(
        (static_cast<uint128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dcs
