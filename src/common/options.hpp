// Tiny option reader for benchmark harnesses and examples.
//
// Values are looked up first on the command line (--name value or
// --name=value), then in the environment (DCS_NAME), then fall back to the
// built-in default. This lets `for b in build/bench/*; do $b; done` run with
// fast defaults while DCS_FULL=1 or explicit flags reproduce paper scale.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dcs {

class Options {
 public:
  Options(int argc, char** argv);

  /// Look up `name` ("u", "runs", ...) as flag --name / env DCS_NAME.
  std::optional<std::string> raw(const std::string& name) const;

  std::int64_t integer(const std::string& name, std::int64_t fallback) const;
  double real(const std::string& name, double fallback) const;
  bool flag(const std::string& name, bool fallback = false) const;
  std::string str(const std::string& name, const std::string& fallback) const;

 private:
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace dcs
