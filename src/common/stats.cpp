#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcs {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of range");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dcs
