// Bit-manipulation helpers shared across the sketch implementations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace dcs {

/// Index (0-based, from the LSB) of the least-significant set bit of `x`.
/// Precondition: x != 0.
inline int lsb_index(std::uint64_t x) noexcept {
  return std::countr_zero(x);
}

/// Value of bit `j` (0-based from the LSB) of `x`.
inline bool bit_at(std::uint64_t x, int j) noexcept {
  return ((x >> j) & 1u) != 0;
}

/// Number of set bits.
inline int popcount64(std::uint64_t x) noexcept { return std::popcount(x); }

/// Smallest power of two >= x (x must be >= 1).
inline std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
  return std::bit_ceil(x);
}

/// floor(log2(x)) for x >= 1.
inline int floor_log2(std::uint64_t x) noexcept {
  return 63 - std::countl_zero(x);
}

/// ceil(log2(x)) for x >= 1.
inline int ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// Software-prefetch `bytes` starting at `address` into cache, hinting an
/// upcoming read-modify-write. The batched sketch ingest computes all bucket
/// addresses for a block of updates first, prefetches the touched
/// count-signature lines, then applies — hiding the random-access latency
/// that dominates the per-update path once the sketch outgrows L2.
inline void prefetch_write(const void* address, std::size_t bytes = 64) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  const char* p = static_cast<const char*>(address);
  for (std::size_t offset = 0; offset < bytes; offset += 64)
    __builtin_prefetch(p + offset, /*rw=*/1, /*locality=*/3);
#else
  (void)address;
  (void)bytes;
#endif
}

}  // namespace dcs
