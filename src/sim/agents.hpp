// Host behaviors (protocol agents) for the ISP simulator.
//
// ServerBehavior implements the victim side of the TCP handshake with a
// finite SYN backlog — the resource a SYN flood exhausts (CERT CA-1996-21,
// paper §1). ClientBehavior completes handshakes (legitimate traffic / flash
// crowds). Spoofed flood sources need no behavior at all: they are
// unattached addresses, so the victim's SYN-ACKs black-hole and the
// connection stays half-open — the attack dynamics *emerge* from the
// simulation rather than being scripted.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/random.hpp"
#include "sim/simulator.hpp"

namespace dcs::sim {

class ServerBehavior final : public HostBehavior {
 public:
  struct Config {
    Addr address = 0;
    /// Delay between receiving a SYN and emitting the SYN-ACK.
    std::uint64_t synack_delay = 1;
    /// Half-open connections the server can hold; SYNs beyond it are
    /// rejected (the flood's goal). 0 means unlimited.
    std::size_t backlog_limit = 0;
  };

  explicit ServerBehavior(Config config) : config_(config) {}

  void on_packet(Simulator& simulator, std::uint64_t now,
                 const Packet& packet) override;

  std::size_t half_open() const noexcept { return backlog_.size(); }
  std::uint64_t established() const noexcept { return established_; }
  /// SYNs rejected because the backlog was full — service denial, made
  /// measurable.
  std::uint64_t rejected_syns() const noexcept { return rejected_; }

 private:
  Config config_;
  std::unordered_set<Addr> backlog_;  // client addresses awaiting ACK
  std::uint64_t established_ = 0;
  std::uint64_t rejected_ = 0;
};

class ClientBehavior final : public HostBehavior {
 public:
  struct Config {
    Addr address = 0;
    /// Delay between receiving the SYN-ACK and sending the completing ACK.
    std::uint64_t ack_delay = 1;
  };

  explicit ClientBehavior(Config config) : config_(config) {}

  void on_packet(Simulator& simulator, std::uint64_t now,
                 const Packet& packet) override;

  std::uint64_t completed() const noexcept { return completed_; }

 private:
  Config config_;
  std::uint64_t completed_ = 0;
};

/// Send the opening SYN of a (client -> server) session at time `when`.
void launch_session(Simulator& simulator, std::uint64_t when, Addr client,
                    Addr server);

/// Inject a spoofed-source SYN flood: `count` SYNs towards `victim`, sources
/// drawn (bijectively, hence distinct) from unattached address space, spread
/// uniformly over [start, start + duration), injected at `origin` (the
/// zombies' edge router). Returns the spoofed addresses used.
std::vector<Addr> launch_spoofed_flood(Simulator& simulator, RouterId origin,
                                       Addr victim, std::uint64_t start,
                                       std::uint64_t duration,
                                       std::uint64_t count,
                                       std::uint32_t spoof_salt,
                                       Xoshiro256& rng);

}  // namespace dcs::sim
