#include "sim/agents.hpp"

#include "stream/generator.hpp"  // bijective32

namespace dcs::sim {

void ServerBehavior::on_packet(Simulator& simulator, std::uint64_t now,
                               const Packet& packet) {
  switch (packet.type) {
    case PacketType::kSyn: {
      if (backlog_.count(packet.source)) return;  // duplicate SYN
      if (config_.backlog_limit != 0 &&
          backlog_.size() >= config_.backlog_limit) {
        ++rejected_;  // denial of service: no room for this connection
        return;
      }
      backlog_.insert(packet.source);
      // SYN-ACK back towards the claimed source. If that address was
      // spoofed (unattached), the simulator drops it and the entry stays
      // half-open forever.
      simulator.send(now + config_.synack_delay,
                     {0, config_.address, packet.source, PacketType::kSynAck});
      break;
    }
    case PacketType::kAck: {
      if (backlog_.erase(packet.source) > 0) ++established_;
      break;
    }
    case PacketType::kRst: {
      backlog_.erase(packet.source);
      break;
    }
    case PacketType::kSynAck:
    case PacketType::kFin:
    case PacketType::kData:
      break;
  }
}

void ClientBehavior::on_packet(Simulator& simulator, std::uint64_t now,
                               const Packet& packet) {
  if (packet.type != PacketType::kSynAck) return;
  // packet.source is the server that accepted our SYN; complete the
  // handshake.
  simulator.send(now + config_.ack_delay,
                 {0, config_.address, packet.source, PacketType::kAck});
  ++completed_;
}

void launch_session(Simulator& simulator, std::uint64_t when, Addr client,
                    Addr server) {
  simulator.send(when, {when, client, server, PacketType::kSyn});
}

std::vector<Addr> launch_spoofed_flood(Simulator& simulator, RouterId origin,
                                       Addr victim, std::uint64_t start,
                                       std::uint64_t duration,
                                       std::uint64_t count,
                                       std::uint32_t spoof_salt,
                                       Xoshiro256& rng) {
  std::vector<Addr> spoofed;
  spoofed.reserve(count);
  // Mix the salt so different salts yield disjoint source blocks even when
  // the raw salt values are small and close together.
  const auto base = static_cast<std::uint32_t>(mix64(spoof_salt));
  for (std::uint64_t i = 0; i < count; ++i) {
    Addr source = bijective32(base + static_cast<std::uint32_t>(i));
    // Spoofed addresses must be unattached so the SYN-ACK black-holes;
    // skip the (astronomically rare) collisions with real hosts.
    while (simulator.topology().host_router(source))
      source = bijective32(source + 1);
    spoofed.push_back(source);
    const std::uint64_t when =
        start + (duration == 0 ? 0 : rng.bounded(duration));
    simulator.send_from(when, origin,
                        {when, source, victim, PacketType::kSyn});
  }
  return spoofed;
}

}  // namespace dcs::sim
