// ISP network topology: routers connected by latency-weighted links, hosts
// attached to edge routers.
//
// The simulator (simulator.hpp) forwards packets hop by hop along the
// shortest-latency paths computed here. Separating the graph from the event
// loop keeps routing testable in isolation and lets experiments build
// arbitrary topologies (the canonical one used by tests and examples is a
// small core ring with edge routers hanging off it — see make_isp_topology).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/flow_update.hpp"

namespace dcs::sim {

using RouterId = std::uint32_t;
using Latency = std::uint32_t;  // simulation ticks per link traversal

constexpr RouterId kNoRouter = std::numeric_limits<RouterId>::max();

class Topology {
 public:
  /// Add a router; returns its id (dense, starting at 0).
  RouterId add_router(std::string name);

  /// Add a bidirectional link with the given latency (>= 1 tick).
  void add_link(RouterId a, RouterId b, Latency latency);

  /// Attach a host address to an edge router. An address may be attached to
  /// exactly one router; re-attaching throws.
  void attach_host(Addr host, RouterId router);

  /// Precompute all-pairs next-hop routing (Dijkstra per router). Must be
  /// called after the graph is built and before routing queries; throws if
  /// the router graph is not connected.
  void build_routes();

  // --- queries -------------------------------------------------------------
  std::size_t num_routers() const noexcept { return names_.size(); }
  const std::string& router_name(RouterId id) const { return names_.at(id); }

  /// Router a host address is attached to, or nullopt for unknown addresses
  /// (spoofed / unallocated space — the simulator drops traffic to them).
  std::optional<RouterId> host_router(Addr host) const;

  /// Next router on the shortest path from `from` towards `to`
  /// (== `to` when adjacent, == from when from == to).
  RouterId next_hop(RouterId from, RouterId to) const;

  /// Latency of the direct link between adjacent routers; throws otherwise.
  Latency link_latency(RouterId a, RouterId b) const;

  /// Total shortest-path latency between two routers.
  Latency path_latency(RouterId from, RouterId to) const;

  bool routes_built() const noexcept { return !next_hop_.empty(); }

 private:
  struct Edge {
    RouterId to;
    Latency latency;
  };

  std::vector<std::string> names_;
  std::vector<std::vector<Edge>> adjacency_;
  std::unordered_map<Addr, RouterId> hosts_;
  // next_hop_[from * n + to], dist_[from * n + to]
  std::vector<RouterId> next_hop_;
  std::vector<Latency> dist_;
};

/// Canonical test/example topology: `core_size` core routers in a ring
/// (latency 2), one edge router per core router (latency 1). Returns the
/// edge-router ids; hosts should be attached to these.
std::vector<RouterId> make_isp_topology(Topology& topology,
                                        std::size_t core_size);

}  // namespace dcs::sim
