// Event-driven packet simulator over an ISP topology.
//
// Packets are forwarded hop by hop along shortest-latency routes; each
// router traversal fires the router's *taps* (the simulated NetFlow probes —
// a FlowUpdateExporter hangs off each monitored edge router). Hosts carry
// pluggable behaviors (agents.hpp) that react to delivered packets by
// sending more — so TCP handshake dynamics (SYN -> SYN-ACK -> ACK) emerge
// from the simulation instead of being scripted, and spoofed-source floods
// black-hole mechanically: the SYN-ACK routes towards an unattached address
// and is dropped at the victim's edge.
//
// The simulation is deterministic: events are ordered by (time, sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/topology.hpp"

namespace dcs::sim {

class Simulator;

/// A host's protocol behavior: invoked when a packet is delivered to the
/// host's address. Implementations respond by calling Simulator::send.
class HostBehavior {
 public:
  virtual ~HostBehavior() = default;
  virtual void on_packet(Simulator& simulator, std::uint64_t now,
                         const Packet& packet) = 0;
};

/// Observer attached to a router; sees every packet the router forwards or
/// delivers, at the time it passes through.
using RouterTap =
    std::function<void(RouterId router, std::uint64_t now, const Packet&)>;

struct SimStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;  // destination address unattached
  std::uint64_t hops_traversed = 0;
};

class Simulator {
 public:
  explicit Simulator(Topology topology);

  const Topology& topology() const noexcept { return topology_; }

  /// Register a behavior for a host address (which must be attached in the
  /// topology). Addresses without behaviors silently consume packets.
  void set_behavior(Addr host, std::unique_ptr<HostBehavior> behavior);

  /// Attach a tap to a router: sees every packet traversing it (any hop).
  void add_tap(RouterId router, RouterTap tap);

  /// Attach an *ingress* tap: fires only where traffic enters the network
  /// (the injection router), so each packet is observed exactly once —
  /// the egress-flow NetFlow deployment of the paper's Fig. 1. Feed these
  /// into per-router FlowUpdateExporters.
  void add_ingress_tap(RouterId router, RouterTap tap);

  /// Send `packet` from its source host at absolute time `when` (must be
  /// >= the current simulation time). The source must be attached unless
  /// `spoofed_origin` names the router actually injecting the traffic
  /// (zombies spoof addresses they do not own).
  void send(std::uint64_t when, const Packet& packet);
  void send_from(std::uint64_t when, RouterId origin, const Packet& packet);

  /// Run until the event queue drains (or `until` ticks, if nonzero).
  void run(std::uint64_t until = 0);

  std::uint64_t now() const noexcept { return now_; }
  const SimStats& stats() const noexcept { return stats_; }

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;        // FIFO among equal times: determinism
    RouterId router;          // router the packet is arriving at
    bool ingress;             // true at the injection router only
    Packet packet;

    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  void arrive(const Event& event);

  Topology topology_;
  std::unordered_map<Addr, std::unique_ptr<HostBehavior>> behaviors_;
  std::unordered_map<RouterId, std::vector<RouterTap>> taps_;
  std::unordered_map<RouterId, std::vector<RouterTap>> ingress_taps_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  SimStats stats_;
};

}  // namespace dcs::sim
