#include "sim/topology.hpp"

#include <queue>
#include <stdexcept>

namespace dcs::sim {

RouterId Topology::add_router(std::string name) {
  if (routes_built())
    throw std::logic_error("Topology: cannot add routers after build_routes");
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return static_cast<RouterId>(names_.size() - 1);
}

void Topology::add_link(RouterId a, RouterId b, Latency latency) {
  if (routes_built())
    throw std::logic_error("Topology: cannot add links after build_routes");
  if (a >= num_routers() || b >= num_routers())
    throw std::out_of_range("Topology: unknown router");
  if (a == b) throw std::invalid_argument("Topology: self-links not allowed");
  if (latency == 0) throw std::invalid_argument("Topology: latency >= 1");
  adjacency_[a].push_back({b, latency});
  adjacency_[b].push_back({a, latency});
}

void Topology::attach_host(Addr host, RouterId router) {
  if (router >= num_routers())
    throw std::out_of_range("Topology: unknown router");
  if (!hosts_.emplace(host, router).second)
    throw std::invalid_argument("Topology: host already attached");
}

std::optional<RouterId> Topology::host_router(Addr host) const {
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) return std::nullopt;
  return it->second;
}

void Topology::build_routes() {
  const std::size_t n = num_routers();
  if (n == 0) throw std::logic_error("Topology: no routers");
  constexpr Latency kInf = std::numeric_limits<Latency>::max();
  next_hop_.assign(n * n, kNoRouter);
  dist_.assign(n * n, kInf);

  // Dijkstra from every source; n is small (tens of routers).
  for (RouterId source = 0; source < n; ++source) {
    auto* dist = &dist_[source * n];
    auto* hop = &next_hop_[source * n];
    dist[source] = 0;
    hop[source] = source;
    using Item = std::pair<Latency, RouterId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
    frontier.push({0, source});
    while (!frontier.empty()) {
      const auto [d, at] = frontier.top();
      frontier.pop();
      if (d > dist[at]) continue;
      for (const Edge& edge : adjacency_[at]) {
        const Latency candidate = d + edge.latency;
        if (candidate < dist[edge.to]) {
          dist[edge.to] = candidate;
          // First hop towards edge.to: inherit `at`'s first hop, unless we
          // are leaving the source itself.
          hop[edge.to] = (at == source) ? edge.to : hop[at];
          frontier.push({candidate, edge.to});
        }
      }
    }
    for (RouterId to = 0; to < n; ++to)
      if (dist[to] == kInf)
        throw std::logic_error("Topology: router graph is not connected");
  }
}

RouterId Topology::next_hop(RouterId from, RouterId to) const {
  if (!routes_built()) throw std::logic_error("Topology: routes not built");
  return next_hop_[from * num_routers() + to];
}

Latency Topology::link_latency(RouterId a, RouterId b) const {
  for (const Edge& edge : adjacency_.at(a))
    if (edge.to == b) return edge.latency;
  throw std::invalid_argument("Topology: routers not adjacent");
}

Latency Topology::path_latency(RouterId from, RouterId to) const {
  if (!routes_built()) throw std::logic_error("Topology: routes not built");
  return dist_[from * num_routers() + to];
}

std::vector<RouterId> make_isp_topology(Topology& topology,
                                        std::size_t core_size) {
  if (core_size < 2)
    throw std::invalid_argument("make_isp_topology: core_size >= 2");
  std::vector<RouterId> core, edges;
  for (std::size_t i = 0; i < core_size; ++i)
    core.push_back(topology.add_router("core" + std::to_string(i)));
  for (std::size_t i = 0; i < core_size; ++i)
    edges.push_back(topology.add_router("edge" + std::to_string(i)));
  for (std::size_t i = 0; i < core_size; ++i) {
    topology.add_link(core[i], core[(i + 1) % core_size], 2);
    topology.add_link(edges[i], core[i], 1);
  }
  topology.build_routes();
  return edges;
}

}  // namespace dcs::sim
