#include "sim/simulator.hpp"

#include <stdexcept>

namespace dcs::sim {

Simulator::Simulator(Topology topology) : topology_(std::move(topology)) {
  if (!topology_.routes_built())
    throw std::invalid_argument("Simulator: topology routes not built");
}

void Simulator::set_behavior(Addr host, std::unique_ptr<HostBehavior> behavior) {
  if (!topology_.host_router(host))
    throw std::invalid_argument("Simulator: host not attached to the topology");
  behaviors_[host] = std::move(behavior);
}

void Simulator::add_tap(RouterId router, RouterTap tap) {
  if (router >= topology_.num_routers())
    throw std::out_of_range("Simulator: unknown router");
  taps_[router].push_back(std::move(tap));
}

void Simulator::add_ingress_tap(RouterId router, RouterTap tap) {
  if (router >= topology_.num_routers())
    throw std::out_of_range("Simulator: unknown router");
  ingress_taps_[router].push_back(std::move(tap));
}

void Simulator::send(std::uint64_t when, const Packet& packet) {
  const auto origin = topology_.host_router(packet.source);
  if (!origin)
    throw std::invalid_argument(
        "Simulator::send: source not attached; use send_from for spoofed "
        "traffic");
  send_from(when, *origin, packet);
}

void Simulator::send_from(std::uint64_t when, RouterId origin,
                          const Packet& packet) {
  if (when < now_)
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  if (origin >= topology_.num_routers())
    throw std::out_of_range("Simulator: unknown origin router");
  Packet timed = packet;
  timed.timestamp = when;
  queue_.push({when, next_seq_++, origin, /*ingress=*/true, timed});
  ++stats_.packets_sent;
}

void Simulator::arrive(const Event& event) {
  // Every router the packet touches fires its taps.
  const auto tap_it = taps_.find(event.router);
  if (tap_it != taps_.end())
    for (const RouterTap& tap : tap_it->second) tap(event.router, now_, event.packet);
  if (event.ingress) {
    const auto ingress_it = ingress_taps_.find(event.router);
    if (ingress_it != ingress_taps_.end())
      for (const RouterTap& tap : ingress_it->second)
        tap(event.router, now_, event.packet);
  }

  const auto dest_router = topology_.host_router(event.packet.dest);
  if (!dest_router) {
    // Unallocated / spoofed destination address: black-holed here. This is
    // how SYN-ACKs to spoofed flood sources die.
    ++stats_.packets_dropped;
    return;
  }

  if (*dest_router == event.router) {
    ++stats_.packets_delivered;
    const auto behavior_it = behaviors_.find(event.packet.dest);
    if (behavior_it != behaviors_.end()) {
      Packet delivered = event.packet;
      delivered.timestamp = now_;
      behavior_it->second->on_packet(*this, now_, delivered);
    }
    return;
  }

  const RouterId hop = topology_.next_hop(event.router, *dest_router);
  const Latency latency = topology_.link_latency(event.router, hop);
  ++stats_.hops_traversed;
  queue_.push({now_ + latency, next_seq_++, hop, /*ingress=*/false,
               event.packet});
}

void Simulator::run(std::uint64_t until) {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    if (until != 0 && event.time > until) return;
    queue_.pop();
    now_ = event.time;
    arrive(event);
  }
}

}  // namespace dcs::sim
