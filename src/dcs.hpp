// Umbrella header for the dcsketch library.
//
// Pulls in the public API surface:
//   * sketches      — DistinctCountSketch, TrackingDcs, SlidingWindowSketch
//   * detection     — DdosMonitor, EpochChangeDetector
//   * distribution  — ShardedMonitor, ConcurrentMonitor
//   * stream model  — FlowUpdate, ZipfWorkload, trace I/O
//   * network sim   — Topology, Simulator, host agents, scenarios, exporter
//   * baselines     — exact tracker and the comparison algorithms
//
// Include individual headers instead when compile time matters; every header
// is self-contained.
#pragma once

#include "baselines/exact_tracker.hpp"
#include "detection/alert_log.hpp"
#include "detection/ddos_monitor.hpp"
#include "detection/epoch_change.hpp"
#include "distributed/concurrent_monitor.hpp"
#include "distributed/sharded_monitor.hpp"
#include "metrics/accuracy.hpp"
#include "net/exporter.hpp"
#include "obs/export.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "net/scenarios.hpp"
#include "sim/agents.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/sliding_window.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"
#include "stream/trace_io.hpp"
