#include "service/agent.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"

namespace dcs::service {

namespace {

std::string serialize_sketch(const DistinctCountSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return std::move(out).str();
}

}  // namespace

SiteAgent::SiteAgent(SiteAgentConfig config)
    : config_(std::move(config)),
      current_(config_.params),
      current_epoch_(config_.first_epoch),
      jitter_(config_.jitter_seed),
      trace_ring_(config_.trace_capacity) {
  // Eager registration so an agent-side scrape lists every stage family
  // (and the heartbeat RTT histogram) before any epoch is sealed.
  obs::TraceMetrics::get();
  obs::AgentMetrics::get();
  if (config_.epoch_updates == 0)
    throw std::invalid_argument("SiteAgent: epoch_updates must be > 0");
  if (config_.spool_epochs == 0)
    throw std::invalid_argument("SiteAgent: spool_epochs must be > 0");
  if (config_.first_epoch == 0)
    throw std::invalid_argument("SiteAgent: first_epoch must be >= 1");
  if (config_.backoff_jitter < 0.0 || config_.backoff_jitter > 1.0)
    throw std::invalid_argument("SiteAgent: backoff_jitter must be in [0,1]");
  stats_.current_epoch = current_epoch_;
  shard_map_ = config_.shard_map;
  stats_.map_version = shard_map_.version();
}

SiteAgent::~SiteAgent() {
  // Abrupt: no Bye, no drain — the collector sees a vanished peer, exactly
  // like a crashed agent. The churn test relies on this.
  running_.store(false, std::memory_order_release);
  cv_.notify_all();
  if (sender_.joinable()) sender_.join();
}

void SiteAgent::start() {
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  sender_ = std::thread([this] { sender_loop(); });
}

void SiteAgent::stop(int drain_timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  flush(drain_timeout_ms);
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  // Give the sender a moment to send Bye, then cut it off.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::milliseconds(drain_timeout_ms),
                 [&] { return !running_.load(std::memory_order_acquire); });
  }
  running_.store(false, std::memory_order_release);
  cv_.notify_all();
  if (sender_.joinable()) sender_.join();
}

void SiteAgent::ingest(const FlowUpdate& update) {
  ingest(update.dest, update.source, update.delta);
}

void SiteAgent::ingest(Addr dest, Addr source, int delta) {
  current_.update(dest, source, delta);
  if (++current_updates_ >= config_.epoch_updates) seal_epoch();
}

void SiteAgent::seal_epoch() {
  if (current_updates_ == 0) return;
  SpooledEpoch sealed;
  sealed.epoch = current_epoch_;
  sealed.updates = current_updates_;
  const std::uint64_t seal_start_ns = obs::steady_now_ns();
  sealed.blob =
      serialize_sketch(std::exchange(current_, DistinctCountSketch(config_.params)));
  // Origin stamps: the wall clock rides the wire (v3) so the collector can
  // subtract across processes; the steady stamp is for agent-local spans.
  sealed.seal_unix_ns = obs::unix_now_ns();
  sealed.seal_steady_ns = obs::steady_now_ns();
  current_updates_ = 0;
  ++current_epoch_;
  if (obs::recording())
    obs::TraceMetrics::get()
        .stage(obs::TraceStage::kSealed)
        .observe(sealed.seal_steady_ns - seal_start_ns);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (spool_.size() >= config_.spool_epochs) {
      // Collector unreachable for too long: shed the *oldest* epoch — the
      // newest data matters most for detection — and account the loss.
      spool_.pop_front();
      ++stats_.epochs_dropped;
      if (obs::recording()) obs::AgentMetrics::get().epochs_dropped.inc();
    }
    sealed.spool_unix_ns = obs::unix_now_ns();
    if (obs::recording())
      obs::TraceMetrics::get().observe_span(obs::TraceStage::kSpooled,
                                            sealed.seal_unix_ns,
                                            sealed.spool_unix_ns);
    spool_.push_back(std::move(sealed));
    ++stats_.epochs_sealed;
    stats_.spool_depth = spool_.size();
    stats_.current_epoch = current_epoch_;
    if (obs::recording()) {
      obs::AgentMetrics::get().epochs_sealed.inc();
      obs::AgentMetrics::get().spool_depth.set(
          static_cast<std::int64_t>(spool_.size()));
    }
  }
  cv_.notify_all();
}

bool SiteAgent::flush(int timeout_ms) {
  seal_epoch();
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return spool_.empty() || stats_.rejected ||
           !running_.load(std::memory_order_acquire);
  }) && spool_.empty();
}

SiteAgent::Stats SiteAgent::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t SiteAgent::next_backoff_ms() {
  backoff_ms_ = backoff_ms_ == 0
                    ? config_.backoff_initial_ms
                    : std::min(backoff_ms_ * 2, config_.backoff_max_ms);
  // Symmetric jitter: delay * (1 ± jitter), so a fleet of agents spreads
  // its reconnect attempts instead of stampeding in sync.
  const double spread = 1.0 + config_.backoff_jitter * (2.0 * jitter_.uniform() - 1.0);
  return static_cast<std::uint64_t>(static_cast<double>(backoff_ms_) * spread);
}

void SiteAgent::sender_loop() {
  bool first_attempt = true;
  while (running_.load(std::memory_order_acquire)) {
    if (!first_attempt) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.reconnects;
      }
      if (obs::recording()) obs::AgentMetrics::get().reconnects.inc();
      const auto delay = std::chrono::milliseconds(next_backoff_ms());
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, delay,
                   [&] { return !running_.load(std::memory_order_acquire); });
      if (!running_.load(std::memory_order_acquire)) break;
    }
    first_attempt = false;
    if (!run_connection()) {
      // Parameter mismatch: retrying can never succeed.
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.rejected = true;
      cv_.notify_all();
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  running_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void SiteAgent::pick_target(std::string& host, std::uint16_t& port) {
  host = config_.collector_host;
  port = config_.collector_port;
  if (shard_map_.empty()) return;
  if (connect_failures_ >= kSeedFallbackAfter) return;  // seed fallback
  const LeafEndpoint leaf = shard_map_.endpoint_for(config_.site_id);
  host = leaf.host;
  port = leaf.port;
}

bool SiteAgent::adopt_map(const Ack& ack) {
  if (ack.map_blob.empty() || ack.map_version <= shard_map_.version())
    return false;
  ShardMap updated;
  try {
    updated = ShardMap::decode(ack.map_blob);
  } catch (const SerializeError&) {
    return false;  // corrupt push — keep the map we have
  }
  const bool had_map = !shard_map_.empty();
  const LeafEndpoint before =
      had_map ? shard_map_.endpoint_for(config_.site_id) : LeafEndpoint{};
  shard_map_ = updated;
  const LeafEndpoint after = shard_map_.endpoint_for(config_.site_id);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.map_version = shard_map_.version();
  }
  return !had_map || !(before == after);
}

bool SiteAgent::run_connection() {
  std::string target_host;
  std::uint16_t target_port = 0;
  pick_target(target_host, target_port);
  auto socket = tcp_connect(target_host, target_port, config_.io_timeout_ms);
  if (!socket) {
    ++connect_failures_;  // enough of these and pick_target tries the seed
    return true;          // unreachable — back off and retry
  }
  socket->set_timeouts(static_cast<std::uint64_t>(config_.io_timeout_ms),
                       static_cast<std::uint64_t>(config_.io_timeout_ms));

  FrameDecoder decoder;
  char buffer[16 * 1024];
  const auto io_error = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.io_errors;
    stats_.connected = false;
    if (obs::recording()) obs::AgentMetrics::get().io_errors.inc();
    return true;  // transient — retry with backoff
  };

  // The version the collector frames its replies at; learned from the
  // Hello ack and used to downgrade our own encoding for a v2 collector
  // (no delta timestamps, no heartbeat acks to wait for).
  std::uint8_t peer_version = kWireVersion;

  /// Block until one Ack arrives (or timeout/error). nullopt = connection
  /// is dead.
  const auto await_ack = [&]() -> std::optional<Ack> {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(config_.io_timeout_ms);
    for (;;) {
      if (auto frame = decoder.next()) {
        if (frame->type != MsgType::kAck)
          throw WireError("agent: expected Ack");
        peer_version = frame->version;
        return Ack::decode(frame->payload, frame->version);
      }
      if (!running_.load(std::memory_order_acquire) ||
          std::chrono::steady_clock::now() >= deadline)
        return std::nullopt;
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.closed || got.error) return std::nullopt;
      if (got.bytes > 0) decoder.feed(buffer, got.bytes);
    }
  };

  try {
    Hello hello;
    hello.site_id = config_.site_id;
    hello.role = PeerRole::kSite;
    hello.params_fingerprint = config_.params.fingerprint();
    hello.epoch_updates = config_.epoch_updates;
    hello.map_version = shard_map_.version();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      hello.first_epoch =
          spool_.empty() ? stats_.current_epoch : spool_.front().epoch;
      hello.dropped_epochs = stats_.epochs_dropped;
    }
    if (!socket->send_all(encode_frame(MsgType::kHello, hello.encode())))
      return io_error();
    const auto hello_ack = await_ack();
    if (!hello_ack) return io_error();
    if (hello_ack->status == AckStatus::kRejected) return false;
    if (hello_ack->status == AckStatus::kWrongShard) {
      // This leaf no longer (or never did) own our shard. Its ack carries
      // the authoritative map: adopt it, drop this connection, and go
      // straight to the right leaf. The spool rides along untouched.
      adopt_map(*hello_ack);
      connect_failures_ = 0;
      backoff_ms_ = 0;  // re-home fast — this is redirection, not failure
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.rehomes;
      }
      if (obs::recording()) obs::FederationMetrics::get().rehomes.inc();
      return true;
    }
    connect_failures_ = 0;
    // A v4 leaf piggybacks the current map on every Hello ack when ours is
    // stale; a moved shard re-homes us on the next reconnect.
    adopt_map(*hello_ack);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.connected = true;
      // The Hello ack carries the collector's resume watermark: everything
      // at or below it is already durably merged (the collector restarted
      // from its checkpoint after our ack was lost with the connection).
      // Prune instead of re-shipping — the bytes would only come back
      // kDuplicate.
      while (!spool_.empty() && spool_.front().epoch <= hello_ack->epoch) {
        spool_.pop_front();
        ++stats_.epochs_shipped;
        ++stats_.resume_skips;
        if (obs::recording()) {
          obs::AgentMetrics::get().epochs_shipped.inc();
          obs::AgentMetrics::get().resume_skips.inc();
        }
      }
      stats_.spool_depth = spool_.size();
      if (obs::recording())
        obs::AgentMetrics::get().spool_depth.set(
            static_cast<std::int64_t>(spool_.size()));
    }
    cv_.notify_all();
    backoff_ms_ = 0;  // healthy connection resets the backoff schedule

    while (running_.load(std::memory_order_acquire)) {
      // Peek (don't pop) the oldest spooled epoch: it stays queued until
      // the collector acks it, so a drop mid-flight retransmits.
      std::optional<SpooledEpoch> head;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (spool_.empty()) {
          if (stopping_.load(std::memory_order_acquire)) break;
          const bool woke = cv_.wait_for(
              lock, std::chrono::milliseconds(config_.heartbeat_interval_ms),
              [&] {
                return !spool_.empty() ||
                       !running_.load(std::memory_order_acquire) ||
                       stopping_.load(std::memory_order_acquire);
              });
          if (!woke) {
            // Idle: snapshot the fields under the lock, send outside it.
            Heartbeat beat;
            beat.site_id = config_.site_id;
            beat.current_epoch = stats_.current_epoch;
            beat.spooled_epochs = 0;
            beat.dropped_epochs = stats_.epochs_dropped;
            lock.unlock();
            const std::uint64_t sent_ns = obs::steady_now_ns();
            if (!socket->send_all(
                    encode_frame(MsgType::kHeartbeat, beat.encode())))
              return io_error();
            if (peer_version >= 3) {
              // A v3 collector acks heartbeats (epoch 0), turning frames
              // we already exchange into a free network-RTT probe.
              const auto beat_ack = await_ack();
              if (!beat_ack) return io_error();
              if (beat_ack->epoch != 0)
                throw WireError("agent: heartbeat ack carries an epoch");
              if (obs::recording())
                obs::AgentMetrics::get().heartbeat_rtt_ns.observe(
                    obs::steady_now_ns() - sent_ns);
            }
          }
          continue;
        }
        head = spool_.front();
      }

      SnapshotDelta delta;
      delta.site_id = config_.site_id;
      delta.epoch = head->epoch;
      delta.updates = head->updates;
      delta.seal_unix_ns = head->seal_unix_ns;
      delta.seal_steady_ns = head->seal_steady_ns;
      delta.spool_unix_ns = head->spool_unix_ns;
      delta.ship_unix_ns = obs::unix_now_ns();  // fresh per send attempt
      delta.sketch_blob = head->blob;
      // Speak the collector's dialect: a v2 peer gets a v2 payload (no
      // timestamps) in a v2 frame.
      const std::uint8_t wire_version =
          peer_version < kWireVersion ? peer_version : kWireVersion;
      if (obs::recording())
        obs::TraceMetrics::get().observe_span(obs::TraceStage::kShipped,
                                              delta.spool_unix_ns,
                                              delta.ship_unix_ns);
      if (!socket->send_all(encode_frame(MsgType::kSnapshotDelta,
                                         delta.encode(wire_version),
                                         wire_version)))
        return io_error();
      const auto ack = await_ack();
      if (!ack) return io_error();
      if (ack->status == AckStatus::kRejected) return false;
      if (ack->epoch != head->epoch)
        throw WireError("agent: ack for unexpected epoch");
      if (ack->status == AckStatus::kWrongShard) {
        // A reshard moved our shard away mid-connection. The delta stays
        // spooled (NOT popped); adopt the pushed map and reconnect to the
        // new owner, which re-ships it there.
        adopt_map(*ack);
        connect_failures_ = 0;
        backoff_ms_ = 0;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.rehomes;
          stats_.connected = false;
        }
        if (obs::recording()) obs::FederationMetrics::get().rehomes.inc();
        return true;
      }
      if (ack->status == AckStatus::kRetryLater) {
        // The collector shed this delta under overload. Honor the
        // retry_after contract: keep the epoch at the head of the spool
        // (nothing is lost) and wait before re-shipping. The hint is
        // clamped so a byzantine collector can neither make us spin
        // (floor 1 ms) nor wedge us forever (ceiling backoff_max_ms),
        // and the wait wakes immediately on stop().
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.nacks;
        }
        if (obs::recording()) obs::AgentMetrics::get().nacks.inc();
        const std::uint64_t wait_ms = std::min<std::uint64_t>(
            std::max<std::uint32_t>(ack->retry_after_ms, 1),
            config_.backoff_max_ms);
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                     [&] { return !running_.load(std::memory_order_acquire); });
        continue;
      }
      if (obs::recording()) {
        obs::EpochTrace trace;
        trace.site_id = config_.site_id;
        trace.epoch = delta.epoch;
        trace.updates = delta.updates;
        trace.bytes = delta.sketch_blob.size();
        trace.stamp(obs::TraceStage::kSealed) = delta.seal_unix_ns;
        trace.stamp(obs::TraceStage::kSpooled) = delta.spool_unix_ns;
        trace.stamp(obs::TraceStage::kShipped) = delta.ship_unix_ns;
        trace_ring_.push(trace);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!spool_.empty() && spool_.front().epoch == head->epoch)
          spool_.pop_front();
        ++stats_.epochs_shipped;
        stats_.spool_depth = spool_.size();
        if (obs::recording()) {
          obs::AgentMetrics::get().epochs_shipped.inc();
          obs::AgentMetrics::get().spool_depth.set(
              static_cast<std::int64_t>(spool_.size()));
        }
      }
      cv_.notify_all();
    }

    if (stopping_.load(std::memory_order_acquire)) {
      Bye bye;
      bye.site_id = config_.site_id;
      socket->send_all(encode_frame(MsgType::kBye, bye.encode()));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.connected = false;
    return true;
  } catch (const WireError&) {
    // Garbage from the collector side: drop the connection and retry.
    return io_error();
  }
}

}  // namespace dcs::service
