#include "service/socket.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dcs::service {

namespace {

timeval ms_to_timeval(std::uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return tv;
}

bool make_addr(const std::string& address, std::uint16_t port,
               sockaddr_in& out) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  return inet_pton(AF_INET, address.c_str(), &out.sin_addr) == 1;
}

void set_fd_nonblocking(int fd, bool on) {
  if (fd < 0) return;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

/// poll(2) one fd, retrying EINTR with the remaining timeout so a signal
/// mid-wait (profilers, test harnesses sending SIGUSR) never turns into a
/// spurious timeout.
int poll_retry_eintr(pollfd& pfd, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready >= 0 || errno != EINTR) return ready;
    if (timeout_ms >= 0) {
      const auto left = deadline - std::chrono::steady_clock::now();
      timeout_ms = static_cast<int>(std::max<std::int64_t>(
          0, std::chrono::duration_cast<std::chrono::milliseconds>(left)
                 .count()));
    }
  }
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

void TcpSocket::set_timeouts(std::uint64_t recv_ms,
                             std::uint64_t send_ms) noexcept {
  const int fd = fd_.load();
  if (fd < 0) return;
  const timeval rcv = ms_to_timeval(recv_ms);
  const timeval snd = ms_to_timeval(send_ms);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof rcv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof snd);
}

bool TcpSocket::send_all(const void* data, std::size_t size) noexcept {
  const int fd = fd_.load();
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t sent = ::send(fd, cursor, remaining, MSG_NOSIGNAL);
    if (sent > 0) {
      cursor += sent;
      remaining -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;  // timeout, reset, or closed peer — all fatal to the frame
  }
  return true;
}

SendResult TcpSocket::send_some(const void* data, std::size_t size) noexcept {
  const int fd = fd_.load();
  const char* cursor = static_cast<const char*>(data);
  SendResult result;
  while (result.bytes < size) {
    const ssize_t sent =
        ::send(fd, cursor + result.bytes, size - result.bytes, MSG_NOSIGNAL);
    if (sent > 0) {
      result.bytes += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      result.would_block = true;
      return result;
    }
    result.error = true;
    return result;
  }
  return result;
}

RecvResult TcpSocket::recv_some(void* buffer, std::size_t capacity) noexcept {
  const int fd = fd_.load();
  RecvResult result;
  for (;;) {
    const ssize_t got = ::recv(fd, buffer, capacity, 0);
    if (got > 0) {
      result.bytes = static_cast<std::size_t>(got);
      return result;
    }
    if (got == 0) {
      result.closed = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.timed_out = true;
      return result;
    }
    result.error = true;
    return result;
  }
}

void TcpSocket::set_nonblocking(bool on) noexcept {
  set_fd_nonblocking(fd_.load(), on);
}

void TcpSocket::shutdown() noexcept {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void TcpSocket::close() noexcept {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<TcpListener> TcpListener::listen(const std::string& address,
                                               std::uint16_t port,
                                               int backlog) {
  sockaddr_in addr{};
  if (!make_addr(address, port, addr)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<TcpSocket> TcpListener::accept(int timeout_ms) noexcept {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = poll_retry_eintr(pfd, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;
  return accept_now();
}

std::optional<TcpSocket> TcpListener::accept_now() noexcept {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return TcpSocket(conn);
    if (errno == EINTR) continue;
    return std::nullopt;
  }
}

void TcpListener::set_nonblocking(bool on) noexcept {
  set_fd_nonblocking(fd_, on);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpSocket> tcp_connect(const std::string& address,
                                     std::uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  if (!make_addr(address, port, addr)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  // Non-blocking connect so refusal/timeout never wedges the caller; the
  // socket is switched back to blocking (with SO_*TIMEO) once connected.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return std::nullopt;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (poll_retry_eintr(pfd, timeout_ms) <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return TcpSocket(fd);
}

}  // namespace dcs::service
