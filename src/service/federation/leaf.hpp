// Leaf tier of the two-tier collector federation (docs/FEDERATION.md).
//
// A *leaf* is a full Collector — durability, admission, tracing, the works
// — that owns one shard of the site population and additionally relays
// every delta it accepts to the federation root over a single multiplexed
// uplink connection (wire v4, Hello role = kLeaf). Sketch linearity makes
// the root's merge of relayed deltas exact, so the root's top-k is
// bit-identical to a single collector that saw every site directly.
//
// Exactly-once composition across the tiers (the full argument lives in
// docs/FEDERATION.md):
//
//   agent --(ack-gated spool)--> leaf --(ack-gated uplink spool)--> root
//
//   * The leaf taps each delta into the uplink spool BEFORE journaling /
//     merging / acking it; if the spool is full the agent gets an honest
//     kRetryLater instead — backpressure propagates to the edge, relays
//     are never dropped.
//   * A relayed delta leaves the uplink spool only on the root's ack, so
//     an uplink drop retransmits and the root's per-(origin site, epoch)
//     dedup absorbs the duplicate.
//   * "Acked at the leaf" implies "in the leaf's fsync'd journal", and the
//     leaf's checkpoint gate refuses to fold the journal into a checkpoint
//     until the uplink has drained — so even if the leaf is SIGKILLed with
//     relays in flight, restarting it replays the journal and re-offers
//     every record to the uplink (recovery drain). The root dedups what it
//     already merged and gap-fills what it never saw.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "common/random.hpp"
#include "service/collector.hpp"

namespace dcs::service {

struct LeafUplinkConfig {
  /// Leaf id announced in the uplink Hello (must not collide with any site
  /// id — the root accounts both in one per-site namespace).
  std::uint64_t leaf_id = 0;
  std::string root_host = "127.0.0.1";
  std::uint16_t root_port = 0;
  /// Must match the root's params (fingerprint-checked at Hello).
  DcsParams params;
  /// Soft bound on spooled relays: offer() without force refuses past it
  /// (the collector then NACKs the agent kRetryLater). Recovery re-offers
  /// bypass the bound — shedding a journal replay would turn recovery into
  /// loss.
  std::size_t spool_deltas = 4096;
  std::uint64_t backoff_initial_ms = 50;
  std::uint64_t backoff_max_ms = 2000;
  double backoff_jitter = 0.2;
  std::uint64_t heartbeat_interval_ms = 500;
  int io_timeout_ms = 2000;
  std::uint64_t jitter_seed = 0x1eafULL;
};

/// The leaf's sender half: an ack-gated FIFO of relayed deltas shipped to
/// the root over one role=kLeaf connection. Mirrors SiteAgent's spool
/// discipline (pop only on ack, reconnect with jittered backoff, Bye on
/// graceful stop) but carries *other* sites' deltas, preserving each origin
/// site id and epoch so the root can dedup per (site, epoch).
class LeafUplink {
 public:
  struct Stats {
    std::uint64_t relayed = 0;          ///< Deltas enqueued for relay.
    std::uint64_t root_acks = 0;        ///< kOk acks from the root.
    std::uint64_t root_duplicates = 0;  ///< kDuplicate acks (re-forwarded
                                        ///< records the root already had).
    std::uint64_t nacks = 0;            ///< kRetryLater from the root.
    std::uint64_t shed_offers = 0;      ///< offer() refused (spool full).
    std::uint64_t reconnects = 0;
    std::uint64_t io_errors = 0;
    std::size_t spool_depth = 0;
    bool connected = false;
    /// Root rejected our Hello (parameter mismatch) — permanent.
    bool rejected = false;
  };

  explicit LeafUplink(LeafUplinkConfig config);
  /// Abrupt teardown: no Bye, no drain; spooled relays die with the
  /// process image. Crash recovery re-creates them from the leaf journal.
  ~LeafUplink();

  LeafUplink(const LeafUplink&) = delete;
  LeafUplink& operator=(const LeafUplink&) = delete;

  void start();
  /// Graceful: drain the spool (bounded by drain_timeout_ms), Bye, join.
  void stop(int drain_timeout_ms = 2000);

  /// Enqueue one delta for relay. Returns false — without enqueueing —
  /// when the spool is at capacity and `force` is false; the caller (the
  /// collector's delta tap) turns that into a kRetryLater NACK upstream.
  /// `force` is for recovery replay, which must never shed.
  bool offer(std::uint64_t site_id, std::uint64_t epoch, std::uint64_t updates,
             const std::string& sketch_blob, bool force);

  /// Block until the spool drains (every relay root-acked) or timeout.
  bool flush(int timeout_ms);
  /// True when nothing is spooled awaiting a root ack — the leaf
  /// collector's checkpoint gate (safe to fold the journal away).
  bool drained() const;

  Stats stats() const;
  const LeafUplinkConfig& config() const noexcept { return config_; }

 private:
  struct Relayed {
    std::uint64_t site_id = 0;
    std::uint64_t epoch = 0;
    std::uint64_t updates = 0;
    std::string blob;
  };

  void sender_loop();
  bool run_connection();
  std::uint64_t next_backoff_ms();

  LeafUplinkConfig config_;

  std::thread sender_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;  ///< Guards spool_ and stats_.
  mutable std::condition_variable cv_;
  std::deque<Relayed> spool_;
  Stats stats_;

  Xoshiro256 jitter_;
  std::uint64_t backoff_ms_ = 0;
};

struct LeafCollectorConfig {
  /// The embedded collector's config. leaf_id + shard_map select this
  /// leaf's shard; delta_tap and checkpoint_gate are overwritten here to
  /// wire the uplink in.
  CollectorConfig collector;
  std::string root_host = "127.0.0.1";
  std::uint16_t root_port = 0;
  /// Uplink spool bound (see LeafUplinkConfig::spool_deltas).
  std::size_t uplink_spool = 4096;
  std::uint64_t uplink_io_timeout_ms = 2000;
  std::uint64_t uplink_heartbeat_interval_ms = 500;
};

/// One leaf: a Collector wired to a LeafUplink. Construction order is the
/// contract — the uplink exists before the collector so that the
/// collector's crash recovery can re-offer replayed journal records to it
/// (drain mode), and the checkpoint gate can consult it from the first
/// merge.
class LeafCollector {
 public:
  explicit LeafCollector(LeafCollectorConfig config);

  LeafCollector(const LeafCollector&) = delete;
  LeafCollector& operator=(const LeafCollector&) = delete;

  /// Start the uplink sender, then the collector's listener.
  void start();
  /// Graceful: stop ingesting, drain the uplink, then fold the (now
  /// fully-relayed) journal into a final checkpoint.
  void stop(int drain_timeout_ms = 2000);

  /// Install a newer shard map (forwards to Collector::set_shard_map).
  void set_shard_map(const ShardMap& map) { collector_.set_shard_map(map); }

  Collector& collector() noexcept { return collector_; }
  const Collector& collector() const noexcept { return collector_; }
  LeafUplink& uplink() noexcept { return uplink_; }
  const LeafUplink& uplink() const noexcept { return uplink_; }

 private:
  LeafUplink uplink_;
  Collector collector_;
};

}  // namespace dcs::service
