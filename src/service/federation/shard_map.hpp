// Versioned consistent-hash shard map for the two-tier collector federation
// (docs/FEDERATION.md).
//
// A federation runs N leaf collectors, each owning a *shard* of the site id
// space, under one root collector that merges every leaf's relayed deltas.
// The assignment site -> leaf must be:
//
//   * deterministic — every process (agent, leaf, root, tools) that holds
//     the same map version computes the same owner, with no coordination;
//   * balanced — leaves own ~equal slices of the site population;
//   * stable under membership change — adding or removing one leaf moves
//     ~1/N of the sites, not all of them (a naive `site % N` moves nearly
//     everything and forces a full re-home storm on every reshard).
//
// We use the Maglev lookup-table construction (Eisenbud et al., NSDI 2016),
// the pattern referenced from ROADMAP item 1: each leaf generates a
// deterministic permutation of the M table slots from two independent
// 64-bit mixers of its leaf id (offset + skip, M prime so every skip is
// coprime and the permutation covers the table), and leaves claim slots
// round-robin in leaf-id order until the table is full. Every leaf ends up
// with floor/ceil(M/N) slots, and removing a leaf only reassigns the slots
// it owned (plus a handful disturbed by the refill) — the ~1/N remap bound
// the property tests pin.
//
// Lookup is two instructions away from a site id: slot = hash(site) % M,
// owner = table[slot]. The map is a value type: versioned, order-insensitive
// (endpoints are sorted by leaf id before the build), and serialized with
// the common magic/version/CRC-footer contract so a corrupt blob is
// rejected, never half-applied. Only the endpoint list travels on the wire;
// the receiver rebuilds the table, which makes "decode(encode(m)) == m" a
// theorem rather than a hope and keeps the blob a few hundred bytes.
//
// Version semantics: 0 means "no map" (an unsharded, pre-federation
// deployment); reshards bump the version. Consumers (Collector::
// set_shard_map, SiteAgent) only ever replace their map with a strictly
// newer version, so a delayed or replayed map push can never roll a peer
// back onto a stale topology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace dcs::service {

/// Where one leaf collector listens for its shard's site agents.
struct LeafEndpoint {
  std::uint64_t leaf_id = 0;
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const LeafEndpoint& a, const LeafEndpoint& b) {
    return a.leaf_id == b.leaf_id && a.host == b.host && a.port == b.port;
  }
};

class ShardMap {
 public:
  /// Prime table size: 251 slots keeps per-leaf ownership within ~2% of
  /// ideal for the leaf counts a single root realistically fans into
  /// (Maglev's guidance is M >= 100 * N).
  static constexpr std::uint32_t kDefaultTableSize = 251;

  /// Default-constructed map = "no map" (version 0, empty). leaf_for on it
  /// throws; callers guard with empty().
  ShardMap() = default;

  /// Build the Maglev table for `leaves` (any order; sorted by leaf_id
  /// internally so the table is a pure function of the *set*). Throws
  /// std::invalid_argument on version 0, no leaves, duplicate leaf ids, or
  /// a non-prime / too-small table size.
  static ShardMap build(std::uint32_t version, std::vector<LeafEndpoint> leaves,
                        std::uint32_t table_size = kDefaultTableSize);

  bool empty() const noexcept { return leaves_.empty(); }
  std::uint32_t version() const noexcept { return version_; }
  std::uint32_t table_size() const noexcept { return table_size_; }
  /// Endpoints sorted by leaf_id.
  const std::vector<LeafEndpoint>& leaves() const noexcept { return leaves_; }

  /// Owning leaf id for a site. Throws std::logic_error on an empty map.
  std::uint64_t leaf_for(std::uint64_t site_id) const;
  /// Endpoint of leaf_for(site_id).
  const LeafEndpoint& endpoint_for(std::uint64_t site_id) const;
  /// Endpoint of a specific leaf. Throws std::invalid_argument if the leaf
  /// is not in the map.
  const LeafEndpoint& endpoint_of(std::uint64_t leaf_id) const;
  /// Table slots owned by `leaf_id` (balance diagnostics / tests).
  std::uint32_t slots_of(std::uint64_t leaf_id) const noexcept;

  /// Fraction of table slots whose owner differs between two maps (the
  /// reshard blast radius; ~1/N when one of N leaves changes). Throws
  /// std::invalid_argument when table sizes differ.
  static double remap_fraction(const ShardMap& a, const ShardMap& b);

  /// Serialize with the common magic/version/CRC-footer contract. decode
  /// rebuilds the lookup table from the endpoint list, so any accepted
  /// blob yields a map identical to what the sender held; corruption or
  /// truncation throws SerializeError.
  std::string encode() const;
  static ShardMap decode(const std::string& blob);

  /// File forms of encode/decode for tools and flags (--shard-map FILE).
  /// save_file writes tmp + rename so readers never observe a torn map.
  void save_file(const std::string& path) const;
  static ShardMap load_file(const std::string& path);

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.version_ == b.version_ && a.table_size_ == b.table_size_ &&
           a.leaves_ == b.leaves_ && a.table_ == b.table_;
  }

 private:
  std::uint32_t version_ = 0;
  std::uint32_t table_size_ = 0;
  std::vector<LeafEndpoint> leaves_;   // sorted by leaf_id
  std::vector<std::uint32_t> table_;   // slot -> index into leaves_
};

}  // namespace dcs::service
