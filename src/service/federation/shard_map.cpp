#include "service/federation/shard_map.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/hash.hpp"

namespace dcs::service {

namespace {

constexpr std::uint32_t kShardMapMagic = 0x4D534344;  // "DCSM"
constexpr std::uint8_t kShardMapFormatVersion = 1;
/// Independent salts so the lookup hash, offsets and skips never correlate
/// (a shared hash would alias slot preference with slot lookup).
constexpr std::uint64_t kLookupSalt = 0x73686172646d6170ULL;  // "shardmap"
constexpr std::uint64_t kOffsetSalt = 0x6d61676c65763031ULL;  // "maglev01"
constexpr std::uint64_t kSkipSalt = 0x6d61676c65763032ULL;    // "maglev02"
/// Endpoint blobs travel inside Hello acks; cap what a hostile map blob can
/// make a decoder allocate long before the CRC footer is reached.
constexpr std::uint64_t kMaxLeaves = 4096;

bool is_prime(std::uint32_t n) {
  if (n < 2) return false;
  for (std::uint32_t d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return true;
}

std::uint32_t lookup_slot(std::uint64_t site_id, std::uint32_t table_size) {
  return static_cast<std::uint32_t>(fmix64(mix64(site_id) ^ kLookupSalt) %
                                    table_size);
}

}  // namespace

ShardMap ShardMap::build(std::uint32_t version,
                         std::vector<LeafEndpoint> leaves,
                         std::uint32_t table_size) {
  if (version == 0)
    throw std::invalid_argument("ShardMap: version 0 is reserved for no-map");
  if (leaves.empty()) throw std::invalid_argument("ShardMap: no leaves");
  if (leaves.size() > kMaxLeaves)
    throw std::invalid_argument("ShardMap: too many leaves");
  if (!is_prime(table_size) || table_size < leaves.size())
    throw std::invalid_argument(
        "ShardMap: table size must be prime and >= leaf count");
  // Sort by leaf id so the table is a function of the endpoint *set*, not
  // of flag order — every process building "the v3 map" builds one table.
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafEndpoint& a, const LeafEndpoint& b) {
              return a.leaf_id < b.leaf_id;
            });
  for (std::size_t i = 1; i < leaves.size(); ++i)
    if (leaves[i].leaf_id == leaves[i - 1].leaf_id)
      throw std::invalid_argument("ShardMap: duplicate leaf id");

  ShardMap map;
  map.version_ = version;
  map.table_size_ = table_size;
  map.leaves_ = std::move(leaves);

  // Maglev fill: each leaf walks its own permutation of the slots
  // (offset + k * skip mod M, M prime so any skip in [1, M-1] generates
  // the whole table) and leaves claim unclaimed slots round-robin.
  const std::uint32_t m = table_size;
  const std::size_t n = map.leaves_.size();
  std::vector<std::uint32_t> offset(n), skip(n), next(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t id = map.leaves_[i].leaf_id;
    offset[i] = static_cast<std::uint32_t>(mix64(id ^ kOffsetSalt) % m);
    skip[i] = static_cast<std::uint32_t>(fmix64(id ^ kSkipSalt) % (m - 1)) + 1;
  }
  map.table_.assign(m, m);  // m = unclaimed sentinel
  std::uint32_t filled = 0;
  while (filled < m) {
    for (std::size_t i = 0; i < n && filled < m; ++i) {
      std::uint32_t slot;
      do {
        slot = (offset[i] + next[i] * skip[i]) % m;
        ++next[i];
      } while (map.table_[slot] != m);
      map.table_[slot] = static_cast<std::uint32_t>(i);
      ++filled;
    }
  }
  return map;
}

std::uint64_t ShardMap::leaf_for(std::uint64_t site_id) const {
  if (empty()) throw std::logic_error("ShardMap::leaf_for on empty map");
  return leaves_[table_[lookup_slot(site_id, table_size_)]].leaf_id;
}

const LeafEndpoint& ShardMap::endpoint_for(std::uint64_t site_id) const {
  if (empty()) throw std::logic_error("ShardMap::endpoint_for on empty map");
  return leaves_[table_[lookup_slot(site_id, table_size_)]];
}

const LeafEndpoint& ShardMap::endpoint_of(std::uint64_t leaf_id) const {
  for (const auto& leaf : leaves_)
    if (leaf.leaf_id == leaf_id) return leaf;
  throw std::invalid_argument("ShardMap: unknown leaf id");
}

std::uint32_t ShardMap::slots_of(std::uint64_t leaf_id) const noexcept {
  std::uint32_t count = 0;
  for (std::size_t i = 0; i < leaves_.size(); ++i)
    if (leaves_[i].leaf_id == leaf_id)
      for (const auto idx : table_) count += (idx == i);
  return count;
}

double ShardMap::remap_fraction(const ShardMap& a, const ShardMap& b) {
  if (a.table_size_ != b.table_size_)
    throw std::invalid_argument("ShardMap::remap_fraction: table sizes differ");
  if (a.table_size_ == 0) return 0.0;
  std::uint32_t moved = 0;
  for (std::uint32_t slot = 0; slot < a.table_size_; ++slot)
    moved += a.leaves_[a.table_[slot]].leaf_id != b.leaves_[b.table_[slot]].leaf_id;
  return static_cast<double>(moved) / static_cast<double>(a.table_size_);
}

std::string ShardMap::encode() const {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out);
  w.crc_reset();
  write_header(w, kShardMapMagic, kShardMapFormatVersion);
  w.u32(version_);
  w.u32(table_size_);
  w.u64(leaves_.size());
  for (const auto& leaf : leaves_) {
    w.u64(leaf.leaf_id);
    w.str(leaf.host);
    w.u32(leaf.port);
  }
  // The lookup table is NOT serialized: the receiver rebuilds it from the
  // endpoint set, so an accepted blob cannot describe an inconsistent map.
  write_crc_footer(w);
  return std::move(out).str();
}

ShardMap ShardMap::decode(const std::string& blob) {
  std::istringstream in(blob, std::ios::binary);
  BinaryReader r(in);
  r.crc_reset();
  read_header(r, kShardMapMagic, kShardMapFormatVersion);
  const std::uint32_t version = r.u32();
  const std::uint32_t table_size = r.u32();
  const std::uint64_t count = r.u64();
  if (count == 0 || count > kMaxLeaves)
    throw SerializeError("ShardMap: absurd leaf count");
  std::vector<LeafEndpoint> leaves;
  leaves.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    LeafEndpoint leaf;
    leaf.leaf_id = r.u64();
    leaf.host = r.str();
    const std::uint32_t port = r.u32();
    if (leaf.host.empty() || leaf.host.size() > 255 || port == 0 ||
        port > 65535)
      throw SerializeError("ShardMap: invalid endpoint");
    leaf.port = static_cast<std::uint16_t>(port);
    leaves.push_back(std::move(leaf));
  }
  read_crc_footer(r);
  if (in.peek() != std::char_traits<char>::eof())
    throw SerializeError("ShardMap: trailing bytes");
  try {
    return build(version, std::move(leaves), table_size);
  } catch (const std::invalid_argument& error) {
    throw SerializeError(std::string("ShardMap: ") + error.what());
  }
}

void ShardMap::save_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    const std::string blob = encode();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) throw SerializeError("ShardMap: cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw SerializeError("ShardMap: cannot rename " + tmp + " -> " + path);
}

ShardMap ShardMap::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("ShardMap: cannot open " + path);
  std::ostringstream blob;
  blob << in.rdbuf();
  return decode(std::move(blob).str());
}

}  // namespace dcs::service
