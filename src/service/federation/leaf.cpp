#include "service/federation/leaf.hpp"

#include <algorithm>
#include <chrono>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"

namespace dcs::service {

LeafUplink::LeafUplink(LeafUplinkConfig config)
    : config_(std::move(config)), jitter_(config_.jitter_seed) {
  if (config_.leaf_id == 0)
    throw std::invalid_argument("LeafUplink: leaf_id must be non-zero");
  if (config_.spool_deltas == 0)
    throw std::invalid_argument("LeafUplink: spool_deltas must be > 0");
}

LeafUplink::~LeafUplink() {
  running_.store(false, std::memory_order_release);
  cv_.notify_all();
  if (sender_.joinable()) sender_.join();
}

void LeafUplink::start() {
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  sender_ = std::thread([this] { sender_loop(); });
}

void LeafUplink::stop(int drain_timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  flush(drain_timeout_ms);
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::milliseconds(drain_timeout_ms),
                 [&] { return !running_.load(std::memory_order_acquire); });
  }
  running_.store(false, std::memory_order_release);
  cv_.notify_all();
  if (sender_.joinable()) sender_.join();
}

bool LeafUplink::offer(std::uint64_t site_id, std::uint64_t epoch,
                       std::uint64_t updates, const std::string& sketch_blob,
                       bool force) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!force && spool_.size() >= config_.spool_deltas) {
      // Backpressure, not loss: the collector NACKs the agent kRetryLater
      // and the delta stays in the agent's spool.
      ++stats_.shed_offers;
      return false;
    }
    spool_.push_back({site_id, epoch, updates, sketch_blob});
    ++stats_.relayed;
    stats_.spool_depth = spool_.size();
    if (obs::recording()) {
      obs::FederationMetrics::get().uplink_relayed.inc();
      obs::FederationMetrics::get().uplink_spool_depth.set(
          static_cast<std::int64_t>(spool_.size()));
    }
  }
  cv_.notify_all();
  return true;
}

bool LeafUplink::flush(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return spool_.empty() || stats_.rejected ||
           !running_.load(std::memory_order_acquire);
  }) && spool_.empty();
}

bool LeafUplink::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spool_.empty();
}

LeafUplink::Stats LeafUplink::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t LeafUplink::next_backoff_ms() {
  backoff_ms_ = backoff_ms_ == 0
                    ? config_.backoff_initial_ms
                    : std::min(backoff_ms_ * 2, config_.backoff_max_ms);
  const double spread =
      1.0 + config_.backoff_jitter * (2.0 * jitter_.uniform() - 1.0);
  return static_cast<std::uint64_t>(static_cast<double>(backoff_ms_) * spread);
}

void LeafUplink::sender_loop() {
  bool first_attempt = true;
  while (running_.load(std::memory_order_acquire)) {
    if (!first_attempt) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.reconnects;
      }
      if (obs::recording())
        obs::FederationMetrics::get().uplink_reconnects.inc();
      const auto delay = std::chrono::milliseconds(next_backoff_ms());
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, delay,
                   [&] { return !running_.load(std::memory_order_acquire); });
      if (!running_.load(std::memory_order_acquire)) break;
    }
    first_attempt = false;
    if (!run_connection()) {
      // Parameter mismatch at the root: retrying can never succeed.
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.rejected = true;
      cv_.notify_all();
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  running_.store(false, std::memory_order_release);
  cv_.notify_all();
}

bool LeafUplink::run_connection() {
  auto socket = tcp_connect(config_.root_host, config_.root_port,
                            config_.io_timeout_ms);
  if (!socket) return true;  // unreachable — back off and retry
  socket->set_timeouts(static_cast<std::uint64_t>(config_.io_timeout_ms),
                       static_cast<std::uint64_t>(config_.io_timeout_ms));

  FrameDecoder decoder;
  char buffer[16 * 1024];
  const auto io_error = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.io_errors;
    stats_.connected = false;
    return true;
  };

  std::uint8_t peer_version = kWireVersion;
  const auto await_ack = [&]() -> std::optional<Ack> {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(config_.io_timeout_ms);
    for (;;) {
      if (auto frame = decoder.next()) {
        if (frame->type != MsgType::kAck)
          throw WireError("leaf uplink: expected Ack");
        peer_version = frame->version;
        return Ack::decode(frame->payload, frame->version);
      }
      if (!running_.load(std::memory_order_acquire) ||
          std::chrono::steady_clock::now() >= deadline)
        return std::nullopt;
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.closed || got.error) return std::nullopt;
      if (got.bytes > 0) decoder.feed(buffer, got.bytes);
    }
  };

  try {
    Hello hello;
    hello.site_id = config_.leaf_id;
    hello.role = PeerRole::kLeaf;
    hello.params_fingerprint = config_.params.fingerprint();
    if (!socket->send_all(encode_frame(MsgType::kHello, hello.encode())))
      return io_error();
    const auto hello_ack = await_ack();
    if (!hello_ack) return io_error();
    if (hello_ack->status == AckStatus::kRejected) return false;
    // The Hello-ack resume watermark is meaningless for a multiplexed
    // uplink (it would be the *leaf id's* watermark, not any origin
    // site's): everything spooled is re-shipped and the root's per-site
    // dedup answers kDuplicate for what it already merged.

    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.connected = true;
    }
    backoff_ms_ = 0;

    while (running_.load(std::memory_order_acquire)) {
      std::optional<Relayed> head;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (spool_.empty()) {
          if (stopping_.load(std::memory_order_acquire)) break;
          const bool woke = cv_.wait_for(
              lock, std::chrono::milliseconds(config_.heartbeat_interval_ms),
              [&] {
                return !spool_.empty() ||
                       !running_.load(std::memory_order_acquire) ||
                       stopping_.load(std::memory_order_acquire);
              });
          if (!woke) {
            Heartbeat beat;
            beat.site_id = config_.leaf_id;
            lock.unlock();
            if (!socket->send_all(
                    encode_frame(MsgType::kHeartbeat, beat.encode())))
              return io_error();
            if (peer_version >= 3) {
              const auto beat_ack = await_ack();
              if (!beat_ack) return io_error();
              if (beat_ack->epoch != 0)
                throw WireError("leaf uplink: heartbeat ack carries an epoch");
            }
          }
          continue;
        }
        head = spool_.front();
      }

      SnapshotDelta delta;
      delta.site_id = head->site_id;  // origin site, not the leaf id
      delta.epoch = head->epoch;
      delta.updates = head->updates;
      delta.ship_unix_ns = obs::unix_now_ns();
      delta.sketch_blob = head->blob;
      const std::uint8_t wire_version =
          peer_version < kWireVersion ? peer_version : kWireVersion;
      if (!socket->send_all(encode_frame(MsgType::kSnapshotDelta,
                                         delta.encode(wire_version),
                                         wire_version)))
        return io_error();
      const auto ack = await_ack();
      if (!ack) return io_error();
      if (ack->status == AckStatus::kRejected) return false;
      if (ack->epoch != head->epoch)
        throw WireError("leaf uplink: ack for unexpected epoch");
      if (ack->status == AckStatus::kWrongShard)
        throw WireError("leaf uplink: root answered kWrongShard");
      if (ack->status == AckStatus::kRetryLater) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.nacks;
        }
        if (obs::recording())
          obs::FederationMetrics::get().uplink_nacks.inc();
        const std::uint64_t wait_ms = std::min<std::uint64_t>(
            std::max<std::uint32_t>(ack->retry_after_ms, 1),
            config_.backoff_max_ms);
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                     [&] { return !running_.load(std::memory_order_acquire); });
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!spool_.empty() && spool_.front().epoch == head->epoch &&
            spool_.front().site_id == head->site_id)
          spool_.pop_front();
        if (ack->status == AckStatus::kDuplicate)
          ++stats_.root_duplicates;
        else
          ++stats_.root_acks;
        stats_.spool_depth = spool_.size();
        if (obs::recording()) {
          obs::FederationMetrics::get().uplink_acked.inc();
          obs::FederationMetrics::get().uplink_spool_depth.set(
              static_cast<std::int64_t>(spool_.size()));
        }
      }
      cv_.notify_all();
    }

    if (stopping_.load(std::memory_order_acquire)) {
      Bye bye;
      bye.site_id = config_.leaf_id;
      socket->send_all(encode_frame(MsgType::kBye, bye.encode()));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.connected = false;
    return true;
  } catch (const WireError&) {
    return io_error();
  }
}

namespace {

CollectorConfig wire_leaf_collector(CollectorConfig config,
                                    LeafUplink& uplink) {
  // The tap and the gate are the two hooks that make a Collector a leaf:
  // every accepted delta is relayed, and the journal outlives the relays.
  config.delta_tap = [&uplink](std::uint64_t site_id, std::uint64_t epoch,
                               std::uint64_t updates, const std::string& blob,
                               bool replay) {
    return uplink.offer(site_id, epoch, updates, blob, /*force=*/replay);
  };
  config.checkpoint_gate = [&uplink] { return uplink.drained(); };
  return config;
}

LeafUplinkConfig uplink_config_of(const LeafCollectorConfig& config) {
  LeafUplinkConfig uplink;
  uplink.leaf_id = config.collector.leaf_id;
  uplink.root_host = config.root_host;
  uplink.root_port = config.root_port;
  uplink.params = config.collector.params;
  uplink.spool_deltas = config.uplink_spool;
  uplink.io_timeout_ms = static_cast<int>(config.uplink_io_timeout_ms);
  uplink.heartbeat_interval_ms = config.uplink_heartbeat_interval_ms;
  // Distinct jitter stream per leaf so a fleet of leaves reconnecting to a
  // restarted root spreads out.
  uplink.jitter_seed = 0x1eafULL ^ config.collector.leaf_id;
  return uplink;
}

}  // namespace

LeafCollector::LeafCollector(LeafCollectorConfig config)
    : uplink_(uplink_config_of(config)),
      collector_(wire_leaf_collector(std::move(config.collector), uplink_)) {}

void LeafCollector::start() {
  // Uplink first: crash recovery in the collector's ctor may already have
  // re-offered journal records, and they should start draining before the
  // listener admits new load.
  uplink_.start();
  collector_.start();
}

void LeafCollector::stop(int drain_timeout_ms) {
  collector_.stop();
  uplink_.stop(drain_timeout_ms);
  // With the uplink drained the checkpoint gate opens: fold the journal
  // into a final checkpoint so the next start replays nothing.
  if (uplink_.drained()) collector_.checkpoint_now();
}

}  // namespace dcs::service
