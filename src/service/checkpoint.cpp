#include "service/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "common/serialize.hpp"

namespace dcs::service {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4B434344;  // "DCCK"
constexpr std::uint8_t kCheckpointVersion = 1;
constexpr const char* kCheckpointPrefix = "checkpoint-";
constexpr const char* kCheckpointSuffix = ".dcsc";
constexpr const char* kJournalPrefix = "journal-";
constexpr const char* kJournalSuffix = ".dcsj";

std::string generation_name(const char* prefix, std::uint64_t generation,
                            const char* suffix) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s%08llu%s", prefix,
                static_cast<unsigned long long>(generation), suffix);
  return buffer;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::uint64_t retain)
    : dir_(std::move(dir)), retain_(retain) {
  if (retain_ == 0)
    throw std::invalid_argument("CheckpointStore: retain must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_))
    throw std::runtime_error("CheckpointStore: cannot create directory " +
                             dir_);
}

std::string CheckpointStore::checkpoint_path(std::uint64_t generation) const {
  return dir_ + "/" +
         generation_name(kCheckpointPrefix, generation, kCheckpointSuffix);
}

std::string CheckpointStore::journal_path(std::uint64_t generation) const {
  return dir_ + "/" + generation_name(kJournalPrefix, generation, kJournalSuffix);
}

std::string CheckpointStore::encode(const CheckpointState& state) {
  // The sketch and detector carry their own header + CRC footer; embed them
  // as length-prefixed blobs so the outer footer's running CRC covers the
  // whole container without being reset by their serializers.
  std::ostringstream sketch_out(std::ios::binary);
  {
    BinaryWriter sketch_writer(sketch_out);
    state.sketch.serialize(sketch_writer);
  }

  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  writer.crc_reset();
  write_header(writer, kCheckpointMagic, kCheckpointVersion);
  writer.u64(state.generation);
  writer.u64(state.deltas_merged);
  writer.u64(state.duplicate_deltas);
  writer.u64(state.dropped_epochs);
  writer.u64(state.byes);
  writer.u64(state.sites.size());
  for (const SiteWatermark& site : state.sites) {
    writer.u64(site.site_id);
    writer.u64(site.last_epoch);
    writer.u64(site.epochs_merged);
    writer.u64(site.updates_merged);
    writer.u64(site.dropped_epochs);
    writer.u64(site.duplicate_deltas);
  }
  writer.str(state.detector_blob);
  writer.str(std::move(sketch_out).str());
  write_crc_footer(writer);
  return std::move(out).str();
}

CheckpointState CheckpointStore::decode(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(in);
  reader.crc_reset();
  read_header(reader, kCheckpointMagic, kCheckpointVersion);
  CheckpointState state;
  state.generation = reader.u64();
  state.deltas_merged = reader.u64();
  state.duplicate_deltas = reader.u64();
  state.dropped_epochs = reader.u64();
  state.byes = reader.u64();
  const std::uint64_t site_count = reader.u64();
  // Guard before allocating: a corrupt count must fail cleanly, not OOM.
  if (site_count > bytes.size())
    throw SerializeError("CheckpointState: absurd site count");
  state.sites.reserve(site_count);
  for (std::uint64_t i = 0; i < site_count; ++i) {
    SiteWatermark site;
    site.site_id = reader.u64();
    site.last_epoch = reader.u64();
    site.epochs_merged = reader.u64();
    site.updates_merged = reader.u64();
    site.dropped_epochs = reader.u64();
    site.duplicate_deltas = reader.u64();
    state.sites.push_back(site);
  }
  state.detector_blob = reader.str();
  const std::string sketch_blob = reader.str();
  // Verify the container footer BEFORE interpreting the nested blobs, so a
  // bit flip anywhere is caught by exactly one check and nothing corrupt is
  // ever handed to the sketch deserializer.
  read_crc_footer(reader);
  if (in.peek() != std::char_traits<char>::eof())
    throw SerializeError("CheckpointState: trailing bytes");

  std::istringstream sketch_in(sketch_blob, std::ios::binary);
  BinaryReader sketch_reader(sketch_in);
  state.sketch = DistinctCountSketch::deserialize(sketch_reader);
  return state;
}

std::uint64_t CheckpointStore::write(const CheckpointState& state,
                                     std::uint64_t* fsync_ns) const {
  const std::string bytes = encode(state);
  atomic_write_file(checkpoint_path(state.generation), bytes, fsync_ns);
  return bytes.size();
}

std::vector<std::uint64_t> CheckpointStore::generations_matching(
    const char* prefix, const char* suffix) const {
  std::vector<std::uint64_t> generations;
  const std::string prefix_str = prefix;
  const std::string suffix_str = suffix;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix_str.size() + suffix_str.size()) continue;
    if (name.compare(0, prefix_str.size(), prefix_str) != 0) continue;
    if (name.compare(name.size() - suffix_str.size(), suffix_str.size(),
                     suffix_str) != 0)
      continue;
    const std::string digits = name.substr(
        prefix_str.size(), name.size() - prefix_str.size() - suffix_str.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    generations.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

std::vector<std::uint64_t> CheckpointStore::checkpoint_generations() const {
  return generations_matching(kCheckpointPrefix, kCheckpointSuffix);
}

std::vector<std::uint64_t> CheckpointStore::journal_generations() const {
  return generations_matching(kJournalPrefix, kJournalSuffix);
}

std::uint64_t CheckpointStore::max_generation() const {
  const auto checkpoints = checkpoint_generations();
  const auto journals = journal_generations();
  std::uint64_t max = 0;
  if (!checkpoints.empty()) max = checkpoints.back();
  if (!journals.empty()) max = std::max(max, journals.back());
  return max;
}

std::optional<CheckpointState> CheckpointStore::load_latest(
    std::uint64_t* corrupt_skipped) const {
  if (corrupt_skipped) *corrupt_skipped = 0;
  const auto generations = checkpoint_generations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const auto bytes = read_file_bytes(checkpoint_path(*it));
    if (bytes) {
      try {
        CheckpointState state = decode(*bytes);
        // The file name is untrusted input too: the state must agree.
        if (state.generation == *it) return state;
      } catch (const SerializeError&) {
        // fall through to the previous generation
      }
    }
    if (corrupt_skipped) ++*corrupt_skipped;
  }
  return std::nullopt;
}

void CheckpointStore::prune_retained(std::uint64_t newest_generation) const {
  // Keep generations in (newest - retain, newest]; saturate so the first
  // retain_ generations survive (generation numbering starts at 1).
  if (newest_generation < retain_) return;
  prune_below(newest_generation - retain_ + 1);
}

void CheckpointStore::prune_below(std::uint64_t keep_from) const {
  for (const std::uint64_t generation : checkpoint_generations())
    if (generation < keep_from)
      std::remove(checkpoint_path(generation).c_str());
  for (const std::uint64_t generation : journal_generations())
    if (generation < keep_from)
      std::remove(journal_path(generation).c_str());
}

}  // namespace dcs::service
