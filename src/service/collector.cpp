#include "service/collector.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "service/wire.hpp"

namespace dcs::service {

namespace {

DistinctCountSketch decode_sketch_blob(const std::string& blob) {
  std::istringstream in(blob, std::ios::binary);
  BinaryReader reader(in);
  return DistinctCountSketch::deserialize(reader);
}

}  // namespace

/// One accepted site connection: its socket, decoder, and the thread that
/// serves it. shared_ptr because stop() (holding conn_mutex_) and the
/// serving thread both touch it.
struct Collector::Connection {
  TcpSocket socket;
  FrameDecoder decoder;
  std::thread thread;
  /// Site id learned from the Hello; 0 until the handshake completes.
  std::uint64_t site_id = 0;
  bool hello_ok = false;
  /// Set by serve() on exit so the accept loop can reap the thread.
  std::atomic<bool> done{false};
};

Collector::Collector(CollectorConfig config)
    : config_(std::move(config)),
      merged_(config_.params),
      detector_(config_.detection) {
  if (config_.detection_top_k == 0)
    throw std::invalid_argument("Collector: detection_top_k must be > 0");
}

Collector::~Collector() { stop(); }

void Collector::start() {
  if (running_.load(std::memory_order_acquire)) return;
  auto listener = TcpListener::listen(config_.bind_address, config_.port);
  if (!listener)
    throw std::runtime_error("Collector: cannot bind " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port));
  listener_ = std::move(*listener);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Collector::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Shut the sockets down (not close: the serving threads still own the
  // fds) to unblock their recvs, then join. The fds close when `conns`
  // drops the last Connection references below, after every join.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) conn->socket.shutdown();
  for (auto& conn : conns)
    if (conn->thread.joinable()) conn->thread.join();
}

bool Collector::running() const {
  return running_.load(std::memory_order_acquire);
}

std::uint16_t Collector::port() const { return listener_.port(); }

void Collector::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    // Reap connections whose serving thread has finished, so churn (agents
    // restarting repeatedly) does not accumulate dead threads.
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      std::erase_if(connections_, [](const std::shared_ptr<Connection>& c) {
        if (!c->done.load(std::memory_order_acquire)) return false;
        if (c->thread.joinable()) c->thread.join();
        return true;
      });
    }
    auto socket = listener_.accept(config_.io_timeout_ms);
    if (!socket) continue;
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(*socket);
    conn->socket.set_timeouts(
        static_cast<std::uint64_t>(config_.io_timeout_ms),
        static_cast<std::uint64_t>(config_.io_timeout_ms));
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      connections_.push_back(conn);
    }
    conn->thread = std::thread([this, conn] { serve(conn); });
  }
}

void Collector::serve(std::shared_ptr<Connection> conn) {
  char buffer[64 * 1024];
  bool failed = false;
  while (running_.load(std::memory_order_acquire)) {
    const RecvResult got = conn->socket.recv_some(buffer, sizeof buffer);
    if (got.closed || got.error) break;
    if (got.timed_out) continue;
    conn->decoder.feed(buffer, got.bytes);
    try {
      while (auto frame = conn->decoder.next()) {
        if (obs::recording()) obs::CollectorMetrics::get().frames.inc();
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          ++totals_.frames;
        }
        const std::string ack = handle_frame(*conn, frame->type,
                                             frame->payload);
        if (!ack.empty() && !conn->socket.send_all(ack)) {
          failed = true;
          break;
        }
      }
    } catch (const WireError&) {
      // Malformed frame or payload: the byte stream is unrecoverable.
      // Count it, drop this connection, keep serving everyone else.
      if (obs::recording()) obs::CollectorMetrics::get().frame_errors.inc();
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++totals_.frame_errors;
      failed = true;
    }
    if (failed) break;
  }
  // Tell the peer now (FIN), but leave the close to whoever destroys the
  // Connection after this thread is joined — closing here would race with
  // stop()'s concurrent shutdown on the same fd.
  conn->socket.shutdown();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (conn->hello_ok) {
      auto it = sites_.find(conn->site_id);
      if (it != sites_.end() && it->second.connected) {
        it->second.connected = false;
        --totals_.connected_sites;
        if (obs::recording())
          obs::CollectorMetrics::get().connected_sites.add(-1);
      }
    }
    state_cv_.notify_all();
  }
  conn->done.store(true, std::memory_order_release);
}

std::string Collector::handle_frame(Connection& conn, MsgType type,
                                    const std::string& payload) {
  switch (type) {
    case MsgType::kHello: {
      const Hello hello = Hello::decode(payload);
      Ack ack;
      ack.epoch = 0;
      if (hello.params_fingerprint != config_.params.fingerprint()) {
        ack.status = AckStatus::kRejected;
        if (obs::recording())
          obs::CollectorMetrics::get().rejected_hellos.inc();
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++totals_.rejected_hellos;
        return encode_frame(MsgType::kAck, ack.encode());
      }
      conn.site_id = hello.site_id;
      conn.hello_ok = true;
      std::lock_guard<std::mutex> lock(state_mutex_);
      SiteStats& site = sites_[hello.site_id];
      site.site_id = hello.site_id;
      if (!site.connected) {
        site.connected = true;
        ++totals_.connected_sites;
        if (obs::recording())
          obs::CollectorMetrics::get().connected_sites.add(1);
      }
      // A fresh agent resuming above last_epoch+1 (e.g. restart with a new
      // first_epoch) is an epoch gap; account it like any other drop.
      if (hello.first_epoch > site.last_epoch + 1) {
        const std::uint64_t gap = hello.first_epoch - site.last_epoch - 1;
        site.dropped_epochs += gap;
        totals_.dropped_epochs += gap;
        // Advance last_epoch past the gap so the first delta of the new
        // connection does not count the same missing epochs again.
        site.last_epoch = hello.first_epoch - 1;
        if (obs::recording())
          obs::CollectorMetrics::get().dropped_epochs.inc(gap);
      }
      state_cv_.notify_all();
      return encode_frame(MsgType::kAck, ack.encode());
    }
    case MsgType::kSnapshotDelta:
      return handle_delta(conn, payload);
    case MsgType::kHeartbeat: {
      Heartbeat::decode(payload);  // validation only; liveness is implicit
      return {};
    }
    case MsgType::kAck:
      throw WireError("collector: unexpected Ack from site");
    case MsgType::kBye: {
      Bye::decode(payload);
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++totals_.byes;
      state_cv_.notify_all();
      return {};
    }
  }
  throw WireError("collector: unhandled message type");
}

std::string Collector::handle_delta(Connection& conn,
                                    const std::string& payload) {
  const SnapshotDelta delta = SnapshotDelta::decode(payload);
  if (!conn.hello_ok) throw WireError("collector: delta before Hello");
  if (delta.site_id != conn.site_id)
    throw WireError("collector: delta site_id does not match Hello");
  if (delta.epoch == 0) throw WireError("collector: delta epoch must be >= 1");

  // Deserialize (and CRC-check) the blob before taking the state lock; a
  // corrupt blob must never leave a half-merged global sketch.
  DistinctCountSketch sketch = [&] {
    try {
      return decode_sketch_blob(delta.sketch_blob);
    } catch (const SerializeError& error) {
      throw WireError(std::string("collector: bad sketch blob: ") +
                      error.what());
    }
  }();
  if (sketch.params().fingerprint() != config_.params.fingerprint())
    throw WireError("collector: delta sketch parameters mismatch");

  Ack ack;
  ack.epoch = delta.epoch;
  std::lock_guard<std::mutex> lock(state_mutex_);
  SiteStats& site = sites_[conn.site_id];
  if (delta.epoch <= site.last_epoch) {
    // Retransmit after a reconnect — already merged; ack so the site can
    // drop it from its spool. Exactly-once merging from at-least-once
    // delivery.
    ack.status = AckStatus::kDuplicate;
    ++site.duplicate_deltas;
    ++totals_.duplicate_deltas;
    if (obs::recording()) obs::CollectorMetrics::get().duplicate_deltas.inc();
    return encode_frame(MsgType::kAck, ack.encode());
  }
  if (delta.epoch > site.last_epoch + 1) {
    const std::uint64_t gap = delta.epoch - site.last_epoch - 1;
    site.dropped_epochs += gap;
    totals_.dropped_epochs += gap;
    if (obs::recording())
      obs::CollectorMetrics::get().dropped_epochs.inc(gap);
  }
  {
    obs::ScopedTimer timer(obs::CollectorMetrics::get().merge_ns);
    merged_.merge_sketch(sketch);
    if (config_.run_detection)
      detector_.observe(merged_.top_k(config_.detection_top_k).entries,
                        totals_.deltas_merged + 1);
  }
  site.last_epoch = delta.epoch;
  ++site.epochs_merged;
  site.updates_merged += delta.updates;
  ++totals_.deltas_merged;
  if (obs::recording()) obs::CollectorMetrics::get().deltas.inc();
  state_cv_.notify_all();
  return encode_frame(MsgType::kAck, ack.encode());
}

TopKResult Collector::top_k(std::size_t k) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return merged_.top_k(k);
}

std::uint64_t Collector::estimate_frequency(Addr group) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return merged_.estimate_frequency(group);
}

DistinctCountSketch Collector::merged_sketch() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return merged_.sketch();
}

std::vector<Alert> Collector::alerts() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return detector_.alerts();
}

std::size_t Collector::active_alarm_count() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return detector_.active_alarm_count();
}

Collector::Stats Collector::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return totals_;
}

std::vector<Collector::SiteStats> Collector::site_stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<SiteStats> out;
  out.reserve(sites_.size());
  for (const auto& [id, site] : sites_) out.push_back(site);
  return out;
}

bool Collector::wait_for_deltas(std::uint64_t count, int timeout_ms) const {
  std::unique_lock<std::mutex> lock(state_mutex_);
  return state_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return totals_.deltas_merged >= count; });
}

bool Collector::wait_for_byes(std::uint64_t count, int timeout_ms) const {
  std::unique_lock<std::mutex> lock(state_mutex_);
  return state_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return totals_.byes >= count; });
}

}  // namespace dcs::service
