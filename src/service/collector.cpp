#include "service/collector.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "service/reactor.hpp"
#include "service/wire.hpp"

namespace dcs::service {

namespace {

DistinctCountSketch decode_sketch_blob(const std::string& blob) {
  std::istringstream in(blob, std::ios::binary);
  BinaryReader reader(in);
  return DistinctCountSketch::deserialize(reader);
}

}  // namespace

/// One accepted site connection: its socket, decoder, and the thread that
/// serves it. shared_ptr because stop() (holding conn_mutex_) and the
/// serving thread both touch it.
struct Collector::Connection {
  TcpSocket socket;
  FrameDecoder decoder;
  std::thread thread;
  /// Transport-agnostic protocol state (see wire.hpp) — the same struct
  /// the reactor keeps per connection, handed to the same handle_frame().
  PeerState peer;
  /// Set by serve() on exit so the accept loop can reap the thread.
  std::atomic<bool> done{false};
};

/// The reactor's view of the collector: every callback lands in the exact
/// accounting the threaded serve() loop does, and on_frame delegates to the
/// shared handle_frame() — the reactor cannot diverge from the oracle
/// without this adapter diverging, which it has no logic to do.
class Collector::ReactorSink : public FrameHandler {
 public:
  explicit ReactorSink(Collector& collector) : collector_(collector) {}

  std::string on_frame(PeerState& peer, MsgType type, std::uint8_t version,
                       const std::string& payload) override {
    if (obs::recording()) obs::CollectorMetrics::get().frames.inc();
    {
      std::lock_guard<std::mutex> lock(collector_.state_mutex_);
      ++collector_.totals_.frames;
    }
    return collector_.handle_frame(peer, type, version, payload);
  }

  void on_disconnect(PeerState& peer) override {
    collector_.note_disconnect(peer);
  }

  void on_frame_error() override {
    if (obs::recording()) obs::CollectorMetrics::get().frame_errors.inc();
    std::lock_guard<std::mutex> lock(collector_.state_mutex_);
    ++collector_.totals_.frame_errors;
  }

  void on_deadline_drop() override {
    if (obs::recording()) obs::CollectorMetrics::get().deadline_drops.inc();
    std::lock_guard<std::mutex> lock(collector_.state_mutex_);
    ++collector_.totals_.deadline_drops;
  }

  void on_idle_reap() override {
    if (obs::recording()) obs::CollectorMetrics::get().idle_reaped.inc();
    std::lock_guard<std::mutex> lock(collector_.state_mutex_);
    ++collector_.totals_.idle_reaped;
  }

 private:
  Collector& collector_;
};

Collector::Collector(CollectorConfig config)
    : config_(std::move(config)),
      admission_(config_.admission),
      merged_(config_.params),
      detector_(config_.detection),
      trace_ring_(config_.trace_capacity) {
  // Register every trace-stage histogram family up front: a scrape of a
  // collector that has merged nothing yet must still list all pipeline
  // stages (at count 0), not grow families as traffic arrives.
  obs::TraceMetrics::get();
  if (config_.detection_top_k == 0)
    throw std::invalid_argument("Collector: detection_top_k must be > 0");
  if (config_.federation_root && config_.leaf_id != 0)
    throw std::invalid_argument(
        "Collector: a collector is a root or a leaf, not both (deeper "
        "trees are not supported)");
  shard_map_ = config_.shard_map;
  if (config_.checkpoint_every == 0)
    throw std::invalid_argument("Collector: checkpoint_every must be > 0");
  if (config_.use_reactor && config_.reactor_workers < 1)
    throw std::invalid_argument("Collector: reactor_workers must be >= 1");
  if (config_.admission.max_inflight_bytes != 0) {
    // A single frame larger than the whole budget could never admit and
    // would be NACKed forever — a livelock the operator must resolve by
    // raising the budget or lowering the frame cap.
    const std::uint64_t frame_cap =
        config_.max_frame_bytes != 0 &&
                config_.max_frame_bytes < kMaxPayloadBytes
            ? config_.max_frame_bytes
            : kMaxPayloadBytes;
    if (frame_cap > config_.admission.max_inflight_bytes)
      throw std::invalid_argument(
          "Collector: admission.max_inflight_bytes must cover at least one "
          "max-size frame (raise the budget or lower max_frame_bytes)");
  }
  if (!config_.state_dir.empty()) recover();
}

Collector::~Collector() { stop(); }

void Collector::start() {
  if (running_.load(std::memory_order_acquire)) return;
  auto listener = TcpListener::listen(config_.bind_address, config_.port);
  if (!listener)
    throw std::runtime_error("Collector: cannot bind " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port));
  listener_ = std::move(*listener);
  running_.store(true, std::memory_order_release);
  if (config_.use_reactor) {
    listener_.set_nonblocking(true);
    reactor_sink_ = std::make_unique<ReactorSink>(*this);
    ReactorConfig reactor_config;
    reactor_config.workers = config_.reactor_workers;
    reactor_config.tick_ms = config_.io_timeout_ms;
    reactor_config.frame_deadline_ms = config_.frame_deadline_ms;
    reactor_config.idle_timeout_ms = config_.idle_timeout_ms;
    reactor_config.max_frame_bytes = config_.max_frame_bytes;
    reactor_ = std::make_unique<Reactor>(reactor_config, *reactor_sink_);
    reactor_->start(listener_);
  } else {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
}

void Collector::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (reactor_) {
    reactor_->stop();
    reactor_.reset();
    reactor_sink_.reset();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Shut the sockets down (not close: the serving threads still own the
  // fds) to unblock their recvs, then join. The fds close when `conns`
  // drops the last Connection references below, after every join.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) conn->socket.shutdown();
  for (auto& conn : conns)
    if (conn->thread.joinable()) conn->thread.join();
  // Clean shutdown: fold the journal tail into a final checkpoint so the
  // next start replays nothing. Best-effort — the journal already holds
  // every acked delta, so a failed write here loses no data.
  if (store_) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (deltas_since_checkpoint_ > 0) {
      try {
        write_checkpoint_locked();
      } catch (const std::exception&) {
        // keep the journal; recovery will replay it
      }
    }
  }
}

bool Collector::running() const {
  return running_.load(std::memory_order_acquire);
}

std::uint16_t Collector::port() const { return listener_.port(); }

void Collector::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    // Reap connections whose serving thread has finished, so churn (agents
    // restarting repeatedly) does not accumulate dead threads.
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      std::erase_if(connections_, [](const std::shared_ptr<Connection>& c) {
        if (!c->done.load(std::memory_order_acquire)) return false;
        if (c->thread.joinable()) c->thread.join();
        return true;
      });
    }
    auto socket = listener_.accept(config_.io_timeout_ms);
    if (!socket) continue;
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(*socket);
    conn->socket.set_timeouts(
        static_cast<std::uint64_t>(config_.io_timeout_ms),
        static_cast<std::uint64_t>(config_.io_timeout_ms));
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      connections_.push_back(conn);
    }
    conn->thread = std::thread([this, conn] { serve(conn); });
  }
}

void Collector::serve(std::shared_ptr<Connection> conn) {
  using Clock = std::chrono::steady_clock;
  char buffer[64 * 1024];
  bool failed = false;
  if (config_.max_frame_bytes != 0)
    conn->decoder.set_max_payload(config_.max_frame_bytes);
  // Deadline bookkeeping. frame_start marks when the *oldest incomplete*
  // frame began arriving and is deliberately not refreshed by later bytes:
  // a slow-loris peer dribbling one byte per poll hits the deadline just
  // like one that stalls outright. last_activity is refreshed by any bytes
  // (heartbeats count) and backs the idle reaper.
  Clock::time_point last_activity = Clock::now();
  bool frame_pending = false;
  Clock::time_point frame_start{};
  while (running_.load(std::memory_order_acquire)) {
    const RecvResult got = conn->socket.recv_some(buffer, sizeof buffer);
    if (got.closed || got.error) break;
    const Clock::time_point now = Clock::now();
    if (!got.timed_out && got.bytes > 0) {
      last_activity = now;
      if (!frame_pending) {
        frame_pending = true;
        frame_start = now;
      }
      conn->decoder.feed(buffer, got.bytes);
      try {
        while (auto frame = conn->decoder.next()) {
          if (obs::recording()) obs::CollectorMetrics::get().frames.inc();
          {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++totals_.frames;
          }
          const std::string ack = handle_frame(conn->peer, frame->type,
                                               frame->version,
                                               frame->payload);
          if (!ack.empty() && !conn->socket.send_all(ack)) {
            failed = true;
            break;
          }
        }
        if (conn->decoder.buffered() == 0) frame_pending = false;
      } catch (const WireError&) {
        // Malformed frame or payload: the byte stream is unrecoverable.
        // Count it, drop this connection, keep serving everyone else.
        if (obs::recording()) obs::CollectorMetrics::get().frame_errors.inc();
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++totals_.frame_errors;
        failed = true;
      }
      if (failed) break;
    }
    if (config_.frame_deadline_ms > 0 && frame_pending &&
        now - frame_start >
            std::chrono::milliseconds(config_.frame_deadline_ms)) {
      if (obs::recording()) obs::CollectorMetrics::get().deadline_drops.inc();
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++totals_.deadline_drops;
      break;
    }
    if (config_.idle_timeout_ms > 0 &&
        now - last_activity >
            std::chrono::milliseconds(config_.idle_timeout_ms)) {
      if (obs::recording()) obs::CollectorMetrics::get().idle_reaped.inc();
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++totals_.idle_reaped;
      break;
    }
  }
  // Tell the peer now (FIN), but leave the close to whoever destroys the
  // Connection after this thread is joined — closing here would race with
  // stop()'s concurrent shutdown on the same fd.
  conn->socket.shutdown();
  note_disconnect(conn->peer);
  conn->done.store(true, std::memory_order_release);
}

void Collector::note_disconnect(const PeerState& peer) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (peer.hello_ok) {
    auto it = sites_.find(peer.site_id);
    if (it != sites_.end() && it->second.connected) {
      it->second.connected = false;
      --totals_.connected_sites;
      if (obs::recording())
        obs::CollectorMetrics::get().connected_sites.add(-1);
    }
  }
  state_cv_.notify_all();
}

std::string Collector::handle_frame(PeerState& peer, MsgType type,
                                    std::uint8_t version,
                                    const std::string& payload) {
  switch (type) {
    case MsgType::kHello: {
      const Hello hello = Hello::decode(payload, version);
      // Negotiate down to the site's dialect: everything we send back on
      // this connection is framed at min(ours, theirs).
      peer.wire_version = version < kWireVersion ? version : kWireVersion;
      Ack ack;
      ack.epoch = 0;
      // A leaf uplink relays deltas whose site ids differ from the Hello
      // id; only a federation root is prepared to account those, so
      // anywhere else the connection is refused outright.
      if (hello.params_fingerprint != config_.params.fingerprint() ||
          (hello.role == PeerRole::kLeaf && !config_.federation_root)) {
        ack.status = AckStatus::kRejected;
        if (obs::recording())
          obs::CollectorMetrics::get().rejected_hellos.inc();
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++totals_.rejected_hellos;
        return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                            peer.wire_version);
      }
      peer.site_id = hello.site_id;
      peer.role = hello.role;
      std::lock_guard<std::mutex> lock(state_mutex_);
      // Leaf shard enforcement: a site the current map assigns to another
      // leaf is re-homed with kWrongShard + the map (v4), or kRejected for
      // a downlevel agent that cannot decode a map anyway.
      if (config_.leaf_id != 0 && hello.role == PeerRole::kSite &&
          !shard_map_.empty() &&
          shard_map_.leaf_for(hello.site_id) != config_.leaf_id) {
        if (peer.wire_version >= 4) return wrong_shard_ack_locked(peer, 0);
        ack.status = AckStatus::kRejected;
        ++totals_.rejected_hellos;
        if (obs::recording())
          obs::CollectorMetrics::get().rejected_hellos.inc();
        return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                            peer.wire_version);
      }
      peer.hello_ok = true;
      SiteStats& site = sites_[hello.site_id];
      site.site_id = hello.site_id;
      if (!site.connected) {
        site.connected = true;
        ++totals_.connected_sites;
        if (obs::recording())
          obs::CollectorMetrics::get().connected_sites.add(1);
      }
      // A fresh agent resuming above last_epoch+1 (e.g. restart with a new
      // first_epoch) is an epoch gap; account it like any other drop.
      if (hello.first_epoch > site.last_epoch + 1) {
        const std::uint64_t gap = hello.first_epoch - site.last_epoch - 1;
        site.dropped_epochs += gap;
        totals_.dropped_epochs += gap;
        // Advance last_epoch past the gap so the first delta of the new
        // connection does not count the same missing epochs again.
        site.last_epoch = hello.first_epoch - 1;
        if (obs::recording())
          obs::CollectorMetrics::get().dropped_epochs.inc(gap);
      }
      // Resume watermark: the highest epoch already durable/merged for this
      // site. The agent prunes spooled epochs at or below it instead of
      // re-shipping them after a collector restart.
      ack.epoch = site.last_epoch;
      // Push the shard map to v4 site agents holding a stale version —
      // map distribution rides the handshake, no side channel needed.
      if (peer.wire_version >= 4 && !shard_map_.empty() &&
          hello.role == PeerRole::kSite) {
        ack.map_version = shard_map_.version();
        if (hello.map_version < shard_map_.version())
          ack.map_blob = shard_map_.encode();
      }
      state_cv_.notify_all();
      return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                          peer.wire_version);
    }
    case MsgType::kSnapshotDelta:
      return handle_delta(peer, version, payload);
    case MsgType::kHeartbeat: {
      Heartbeat::decode(payload);  // validation; liveness is implicit
      // v3 sites expect a heartbeat ack (epoch 0) and time it as a network
      // RTT probe. A v2 site does NOT wait for one — acking would desync
      // its request/response ack stream, so the gate is the negotiated
      // version, not ours.
      if (peer.wire_version >= 3) {
        Ack ack;
        ack.epoch = 0;
        return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                            peer.wire_version);
      }
      return {};
    }
    case MsgType::kAck:
      throw WireError("collector: unexpected Ack from site");
    case MsgType::kBye: {
      Bye::decode(payload);
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++totals_.byes;
      state_cv_.notify_all();
      return {};
    }
  }
  throw WireError("collector: unhandled message type");
}

std::string Collector::handle_delta(PeerState& peer, std::uint8_t version,
                                    const std::string& payload) {
  const SnapshotDelta delta = SnapshotDelta::decode(payload, version);
  if (!peer.hello_ok) throw WireError("collector: delta before Hello");
  // A leaf uplink relays deltas for every site its shard owns: the delta
  // carries the *origin* site id, which legitimately differs from the
  // Hello id (the leaf's own). Everywhere else a mismatch is an attack.
  if (delta.site_id != peer.site_id &&
      !(peer.role == PeerRole::kLeaf && config_.federation_root))
    throw WireError("collector: delta site_id does not match Hello");
  if (delta.epoch == 0) throw WireError("collector: delta epoch must be >= 1");

  // Start this epoch's trace. The agent-side stamps arrived on the wire
  // (zero from a v2 site — the cross-process spans simply don't record);
  // every collector-side stage stamps as the delta moves through.
  obs::EpochTrace trace;
  trace.site_id = delta.site_id;
  trace.epoch = delta.epoch;
  trace.updates = delta.updates;
  trace.bytes = delta.sketch_blob.size();
  trace.stamp(obs::TraceStage::kSealed) = delta.seal_unix_ns;
  trace.stamp(obs::TraceStage::kSpooled) = delta.spool_unix_ns;
  trace.stamp(obs::TraceStage::kShipped) = delta.ship_unix_ns;
  trace.stamp(obs::TraceStage::kReceived) = obs::unix_now_ns();
  if (obs::recording())
    obs::TraceMetrics::get().observe_span(
        obs::TraceStage::kReceived, delta.ship_unix_ns,
        trace.stamp(obs::TraceStage::kReceived));

  Ack ack;
  ack.epoch = delta.epoch;

  // Duplicate pre-check before admission: a retransmit costs nothing to
  // ack and must never be shed — post-recovery re-ships have to drain even
  // when the collector is saturated, or reconnect storms wedge on a full
  // budget.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // Reshard enforcement mid-connection: the Hello passed under an older
    // map, but this site has since moved to another leaf. Nothing is
    // merged; the attached map re-homes the agent with its spool intact.
    if (config_.leaf_id != 0 && peer.role == PeerRole::kSite &&
        !shard_map_.empty() &&
        shard_map_.leaf_for(delta.site_id) != config_.leaf_id) {
      if (peer.wire_version >= 4)
        return wrong_shard_ack_locked(peer, delta.epoch);
      ack.status = AckStatus::kRejected;
      return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                          peer.wire_version);
    }
    SiteStats& site = sites_[delta.site_id];
    site.site_id = delta.site_id;
    if (already_merged_locked(site, delta.epoch)) {
      // Retransmit after a reconnect — already merged; ack so the site can
      // drop it from its spool. Exactly-once merging from at-least-once
      // delivery.
      ack.status = AckStatus::kDuplicate;
      ++site.duplicate_deltas;
      ++totals_.duplicate_deltas;
      if (obs::recording())
        obs::CollectorMetrics::get().duplicate_deltas.inc();
      const auto watermark = recovered_watermarks_.find(delta.site_id);
      if (watermark != recovered_watermarks_.end() &&
          delta.epoch <= watermark->second) {
        // A pre-crash epoch re-shipped after our restart: the watermark
        // dedup working as designed. Counted separately as the double-merge
        // oracle.
        ++totals_.post_recovery_duplicates;
        if (obs::recording())
          obs::CheckpointMetrics::get().post_recovery_duplicates.inc();
      }
      return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                          peer.wire_version);
    }
  }

  // Admission: charge the frame's bytes against the global in-flight
  // budget and the site's token bucket before the expensive deserialize.
  // A shed is an honest NACK — the epoch stays in the site's spool and
  // returns after retry_after_ms; nothing is merged, nothing is lost.
  const AdmissionDecision decision = admission_.try_admit(
      peer.site_id, payload.size(), std::chrono::steady_clock::now());
  if (!decision.admitted) {
    ack.status = AckStatus::kRetryLater;
    ack.retry_after_ms = decision.retry_after_ms;
    if (obs::recording()) {
      obs::CollectorMetrics::get().shed_deltas.inc();
      obs::CollectorMetrics::get().shed_bytes.inc(payload.size());
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++totals_.shed_deltas;
    totals_.shed_bytes += payload.size();
    ++sites_[delta.site_id].shed_deltas;
    return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                        peer.wire_version);
  }
  // Released on every exit from here (ack sent, duplicate race, or a
  // throw on a bad blob) — the budget can never leak.
  InflightCharge charge(&admission_, payload.size());
  trace.stamp(obs::TraceStage::kAdmitted) = obs::unix_now_ns();
  if (obs::recording())
    obs::TraceMetrics::get().observe_span(
        obs::TraceStage::kAdmitted, trace.stamp(obs::TraceStage::kReceived),
        trace.stamp(obs::TraceStage::kAdmitted));

  // Deserialize (and CRC-check) the blob before taking the state lock; a
  // corrupt blob must never leave a half-merged global sketch.
  DistinctCountSketch sketch = [&] {
    try {
      return decode_sketch_blob(delta.sketch_blob);
    } catch (const SerializeError& error) {
      throw WireError(std::string("collector: bad sketch blob: ") +
                      error.what());
    }
  }();
  if (sketch.params().fingerprint() != config_.params.fingerprint())
    throw WireError("collector: delta sketch parameters mismatch");

  std::lock_guard<std::mutex> lock(state_mutex_);
  SiteStats& site = sites_[delta.site_id];
  if (already_merged_locked(site, delta.epoch)) {
    // Lost the race with another connection of the same site between the
    // pre-check and here (admitted but already merged): dedup, never
    // double-merge. The charge guard releases the admitted bytes.
    ack.status = AckStatus::kDuplicate;
    ++site.duplicate_deltas;
    ++totals_.duplicate_deltas;
    if (obs::recording()) obs::CollectorMetrics::get().duplicate_deltas.inc();
    return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                        peer.wire_version);
  }
  // Leaf uplink tap, before the durability barrier: if the uplink spool
  // cannot take the delta, shed honestly — the agent keeps it spooled and
  // re-ships, so backpressure propagates to the edge instead of dropping
  // relays (the root would see a permanent gap).
  if (config_.delta_tap &&
      !config_.delta_tap(delta.site_id, delta.epoch, delta.updates,
                         delta.sketch_blob, /*replay=*/false)) {
    ack.status = AckStatus::kRetryLater;
    ack.retry_after_ms = config_.tap_retry_after_ms;
    ++totals_.tap_shed_deltas;
    ++site.shed_deltas;
    if (obs::recording()) obs::FederationMetrics::get().tap_shed_deltas.inc();
    return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                        peer.wire_version);
  }
  // Durability barrier: the delta must hit the journal (fsync'd) BEFORE it
  // is merged or acked. If the append fails the connection is dropped
  // without an ack, the agent keeps the epoch spooled, and no state moved.
  if (store_) {
    try {
      std::uint64_t fsync_ns = 0;
      journal_.append({delta.site_id, delta.epoch, delta.updates,
                       delta.sketch_blob},
                      &fsync_ns);
      ++totals_.journal_records;
      if (obs::recording()) {
        obs::CheckpointMetrics::get().journal_records.inc();
        obs::CheckpointMetrics::get().fsync_ns.observe(fsync_ns);
      }
    } catch (const std::runtime_error& error) {
      throw WireError(std::string("collector: journal append failed: ") +
                      error.what());
    }
  }
  // Journaled stamp: with durability off the stage is a pass-through (the
  // stamp keeps the trace complete; the span histogram only records when a
  // journal append actually happened).
  trace.stamp(obs::TraceStage::kJournaled) = obs::unix_now_ns();
  if (store_ && obs::recording())
    obs::TraceMetrics::get().observe_span(
        obs::TraceStage::kJournaled, trace.stamp(obs::TraceStage::kAdmitted),
        trace.stamp(obs::TraceStage::kJournaled));
  merge_delta_locked(delta.site_id, delta.epoch, delta.updates, sketch,
                     &trace);
  if (peer.role == PeerRole::kLeaf) {
    ++totals_.relayed_deltas;
    if (obs::recording()) obs::FederationMetrics::get().relayed_deltas.inc();
  }
  if (obs::recording()) trace_ring_.push(trace);
  if (store_ && ++deltas_since_checkpoint_ >= config_.checkpoint_every) {
    try {
      write_checkpoint_locked();
    } catch (const std::exception&) {
      // A failed checkpoint is not fatal and must not fail the delta (it is
      // already durable in the journal): keep journaling, retry at the next
      // merge.
    }
  }
  state_cv_.notify_all();
  return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                      peer.wire_version);
}

bool Collector::already_merged_locked(const SiteStats& site,
                                      std::uint64_t epoch) const {
  if (epoch > site.last_epoch) return false;
  if (!config_.federation_root) return true;
  // Root mode: an epoch below the watermark is new iff it fills a recorded
  // gap — after a leaf kill + reshard, the new leaf relays a site's later
  // epochs before the old leaf's drained journal delivers the earlier
  // ones, and both paths may deliver the same epoch.
  const auto gaps = gap_epochs_.find(site.site_id);
  return gaps == gap_epochs_.end() ||
         gaps->second.find(epoch) == gaps->second.end();
}

std::string Collector::wrong_shard_ack_locked(const PeerState& peer,
                                              std::uint64_t epoch) {
  Ack ack;
  ack.epoch = epoch;
  ack.status = AckStatus::kWrongShard;
  ack.map_version = shard_map_.version();
  ack.map_blob = shard_map_.encode();
  ++totals_.wrong_shard_acks;
  if (obs::recording()) obs::FederationMetrics::get().wrong_shard_acks.inc();
  return encode_frame(MsgType::kAck, ack.encode(peer.wire_version),
                      peer.wire_version);
}

void Collector::set_shard_map(const ShardMap& map) {
  if (map.empty())
    throw std::invalid_argument("Collector::set_shard_map: empty map");
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!shard_map_.empty() && map.version() <= shard_map_.version())
    throw std::invalid_argument(
        "Collector::set_shard_map: version must be strictly newer (a "
        "delayed push must never roll the topology back)");
  shard_map_ = map;
  ++totals_.reshards;
  if (obs::recording()) obs::FederationMetrics::get().reshards.inc();
  state_cv_.notify_all();
}

ShardMap Collector::shard_map() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return shard_map_;
}

void Collector::merge_delta_locked(std::uint64_t site_id, std::uint64_t epoch,
                                   std::uint64_t updates,
                                   const DistinctCountSketch& sketch,
                                   obs::EpochTrace* trace) {
  SiteStats& site = sites_[site_id];
  site.site_id = site_id;
  const bool gap_fill = config_.federation_root && epoch <= site.last_epoch;
  if (gap_fill) {
    // Filling a previously recorded gap (already_merged_locked vetted
    // membership before this call): the watermark does not move.
    auto gaps = gap_epochs_.find(site_id);
    gaps->second.erase(epoch);
    if (gaps->second.empty()) gap_epochs_.erase(gaps);
    ++totals_.gap_fills;
    if (obs::recording()) obs::FederationMetrics::get().gap_fills.inc();
  } else if (epoch > site.last_epoch + 1) {
    const std::uint64_t gap = epoch - site.last_epoch - 1;
    if (config_.federation_root) {
      // Not (yet) a loss: with multiple relay paths the missing epochs may
      // simply be in flight on another leaf. Record them as pending gaps;
      // a bounded set per site keeps a buggy epoch jump from ballooning
      // memory — the overflow beyond the bound is accounted as dropped.
      constexpr std::uint64_t kMaxTrackedGapEpochs = 4096;
      auto& gaps = gap_epochs_[site_id];
      std::uint64_t first_tracked = site.last_epoch + 1;
      if (gap > kMaxTrackedGapEpochs - std::min<std::uint64_t>(
                                           kMaxTrackedGapEpochs, gaps.size())) {
        const std::uint64_t room =
            kMaxTrackedGapEpochs -
            std::min<std::uint64_t>(kMaxTrackedGapEpochs, gaps.size());
        const std::uint64_t overflow = gap - room;
        site.dropped_epochs += overflow;
        totals_.dropped_epochs += overflow;
        if (obs::recording())
          obs::CollectorMetrics::get().dropped_epochs.inc(overflow);
        first_tracked += overflow;
      }
      for (std::uint64_t e = first_tracked; e < epoch; ++e) gaps.insert(e);
      if (gaps.empty()) gap_epochs_.erase(site_id);
    } else {
      site.dropped_epochs += gap;
      totals_.dropped_epochs += gap;
      if (obs::recording())
        obs::CollectorMetrics::get().dropped_epochs.inc(gap);
    }
  }
  {
    obs::ScopedTimer timer(obs::CollectorMetrics::get().merge_ns);
    merged_.merge_sketch(sketch);
    if (trace) {
      trace->stamp(obs::TraceStage::kMerged) = obs::unix_now_ns();
      if (obs::recording())
        obs::TraceMetrics::get().observe_span(
            obs::TraceStage::kMerged,
            trace->stamp(obs::TraceStage::kJournaled),
            trace->stamp(obs::TraceStage::kMerged));
    }
    BaselineDetector::Outcome outcome;
    if (config_.run_detection)
      outcome =
          detector_.observe(merged_.top_k(config_.detection_top_k).entries,
                            totals_.deltas_merged + 1);
    if (trace) {
      // This is the moment an alert for this epoch's data exists (or
      // provably does not) — the far edge of the freshness SLO.
      const std::uint64_t verdict_ns = obs::unix_now_ns();
      trace->stamp(obs::TraceStage::kDetectorEvaluated) = verdict_ns;
      trace->alerts_raised = outcome.raised;
      const std::uint64_t seal_ns = trace->stamp(obs::TraceStage::kSealed);
      if (seal_ns != 0) {
        trace->freshness_ns =
            verdict_ns >= seal_ns ? verdict_ns - seal_ns : 0;
        site.last_seal_unix_ns = seal_ns;
        site.last_freshness_ns = trace->freshness_ns;
        if (obs::recording()) {
          auto& tm = obs::TraceMetrics::get();
          tm.observe_span(obs::TraceStage::kDetectorEvaluated,
                          trace->stamp(obs::TraceStage::kMerged),
                          verdict_ns);
          tm.detection_freshness_ns.observe(trace->freshness_ns);
        }
      } else if (obs::recording()) {
        obs::TraceMetrics::get().observe_span(
            obs::TraceStage::kDetectorEvaluated,
            trace->stamp(obs::TraceStage::kMerged), verdict_ns);
      }
    }
  }
  if (epoch > site.last_epoch) site.last_epoch = epoch;
  ++site.epochs_merged;
  site.updates_merged += updates;
  ++totals_.deltas_merged;
  if (obs::recording()) obs::CollectorMetrics::get().deltas.inc();
}

void Collector::recover() {
  store_ = std::make_unique<CheckpointStore>(config_.state_dir,
                                             config_.checkpoint_retain);
  std::lock_guard<std::mutex> lock(state_mutex_);

  std::uint64_t corrupt_skipped = 0;
  auto loaded = store_->load_latest(&corrupt_skipped);
  totals_.corrupt_generations_skipped = corrupt_skipped;
  if (obs::recording() && corrupt_skipped > 0)
    obs::CheckpointMetrics::get().corrupt_skipped.inc(corrupt_skipped);

  bool restored = false;
  std::uint64_t replay_from = 0;
  if (loaded) {
    if (loaded->sketch.params().fingerprint() != config_.params.fingerprint())
      throw std::runtime_error(
          "Collector: checkpoint in state_dir was written with different "
          "sketch parameters");
    generation_ = loaded->generation;
    replay_from = loaded->generation;
    merged_ = TrackingDcs(loaded->sketch);
    totals_.deltas_merged = loaded->deltas_merged;
    totals_.duplicate_deltas = loaded->duplicate_deltas;
    totals_.dropped_epochs = loaded->dropped_epochs;
    totals_.byes = loaded->byes;
    for (const SiteWatermark& watermark : loaded->sites) {
      SiteStats site;
      site.site_id = watermark.site_id;
      site.last_epoch = watermark.last_epoch;
      site.epochs_merged = watermark.epochs_merged;
      site.updates_merged = watermark.updates_merged;
      site.dropped_epochs = watermark.dropped_epochs;
      site.duplicate_deltas = watermark.duplicate_deltas;
      sites_[watermark.site_id] = site;
    }
    if (!loaded->detector_blob.empty()) {
      std::istringstream in(loaded->detector_blob, std::ios::binary);
      BinaryReader reader(in);
      detector_ = BaselineDetector::deserialize(reader, config_.detection);
    }
    restored = true;
  }

  // Replay every journal generation at or after the loaded checkpoint, in
  // order. Records at or below a site's watermark were already covered by a
  // newer checkpoint (possible when falling back a generation) — dedup,
  // never double-merge. Replaying through merge_delta_locked re-runs the
  // detector over the exact observe() sequence of the uninterrupted run.
  for (const std::uint64_t gen : store_->journal_generations()) {
    if (gen < replay_from) continue;
    const auto replayed = EpochJournal::replay(store_->journal_path(gen));
    for (const EpochJournal::Record& record : replayed.records) {
      SiteStats& site = sites_[record.site_id];
      site.site_id = record.site_id;
      // Gap-aware in root mode: the journal records gap fills in append
      // order, so replay re-runs the exact out-of-order merge sequence.
      if (already_merged_locked(site, record.epoch)) {
        ++totals_.replay_deduped;
        if (obs::recording())
          obs::CheckpointMetrics::get().replay_deduped.inc();
        continue;
      }
      // The record CRC already verified the blob byte-for-byte; a decode
      // failure here means the collector journaled garbage, which validation
      // before append rules out. Treat defensively like a torn tail.
      DistinctCountSketch sketch = [&]() -> DistinctCountSketch {
        try {
          return decode_sketch_blob(record.sketch_blob);
        } catch (const SerializeError&) {
          return DistinctCountSketch(config_.params);
        }
      }();
      if (sketch.params().fingerprint() != config_.params.fingerprint())
        continue;
      merge_delta_locked(record.site_id, record.epoch, record.updates, sketch,
                         /*trace=*/nullptr);
      // Drain mode: re-offer every replayed record to the uplink. Records
      // the root already merged come back as cheap duplicate acks; records
      // lost with the pre-crash uplink spool are exactly the ones this
      // replay re-forwards — the leaf-kill recovery path (the checkpoint
      // gate guarantees the journal still holds everything un-acked).
      // replay=true makes the spool accept past its soft bound: shedding a
      // replayed record would turn recovery into loss.
      if (config_.delta_tap)
        config_.delta_tap(record.site_id, record.epoch, record.updates,
                          record.sketch_blob, /*replay=*/true);
      ++totals_.replayed_epochs;
      if (obs::recording())
        obs::CheckpointMetrics::get().replayed_epochs.inc();
      restored = true;
    }
  }

  if (restored) {
    ++totals_.recoveries;
    if (obs::recording()) obs::CheckpointMetrics::get().recoveries.inc();
  }
  for (const auto& [site_id, site] : sites_)
    recovered_watermarks_[site_id] = site.last_epoch;

  // Make the recovered state durable immediately: the journal tail folds
  // into a fresh checkpoint generation and a clean journal, so a crash loop
  // can never replay the same journal into divergent states.
  write_checkpoint_locked();
}

CheckpointState Collector::build_checkpoint_state_locked() const {
  CheckpointState state;
  state.sketch = merged_.sketch();
  for (const auto& [site_id, site] : sites_)
    state.sites.push_back({site_id, site.last_epoch, site.epochs_merged,
                           site.updates_merged, site.dropped_epochs,
                           site.duplicate_deltas});
  state.deltas_merged = totals_.deltas_merged;
  state.duplicate_deltas = totals_.duplicate_deltas;
  state.dropped_epochs = totals_.dropped_epochs;
  state.byes = totals_.byes;
  if (config_.run_detection) {
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    detector_.serialize(writer);
    state.detector_blob = std::move(out).str();
  }
  return state;
}

void Collector::write_checkpoint_locked() {
  if (!store_) return;
  if (config_.checkpoint_gate && !config_.checkpoint_gate()) {
    // Gated (leaf uplink not drained): rotating the journal into a
    // checkpoint now would prune the uplink's only crash-replay source.
    // Keep appending to the current generation's journal — O_APPEND means
    // reopening after recovery just extends it — and retry at the next
    // merge / stop().
    if (!journal_.is_open())
      journal_ = EpochJournal::open(store_->journal_path(generation_),
                                    config_.journal_fsync);
    return;
  }
  obs::ScopedTimer timer(obs::CheckpointMetrics::get().write_ns);

  CheckpointState state = build_checkpoint_state_locked();
  // Number above every file present — even a corrupt newer generation —
  // so a fallback recovery never overwrites evidence or reuses a name.
  state.generation = std::max(generation_, store_->max_generation()) + 1;

  std::uint64_t fsync_ns = 0;
  const std::uint64_t bytes = store_->write(state, &fsync_ns);
  // Only after the checkpoint is durable: rotate to its journal and drop
  // generations older than the previous one (kept as the corruption
  // fallback).
  journal_.close();
  generation_ = state.generation;
  journal_ = EpochJournal::open(store_->journal_path(generation_),
                                config_.journal_fsync);
  deltas_since_checkpoint_ = 0;
  ++totals_.checkpoints_written;
  store_->prune_retained(generation_);
  if (obs::recording()) {
    obs::CheckpointMetrics::get().generations.inc();
    obs::CheckpointMetrics::get().bytes_written.inc(bytes);
    obs::CheckpointMetrics::get().fsync_ns.observe(fsync_ns);
  }
}

bool Collector::checkpoint_now() {
  if (!store_) return false;
  std::lock_guard<std::mutex> lock(state_mutex_);
  write_checkpoint_locked();
  return true;
}

std::uint64_t Collector::checkpoint_generation() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return generation_;
}

TopKResult Collector::top_k(std::size_t k) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return merged_.top_k(k);
}

std::uint64_t Collector::estimate_frequency(Addr group) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return merged_.estimate_frequency(group);
}

DistinctCountSketch Collector::merged_sketch() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return merged_.sketch();
}

std::vector<Alert> Collector::alerts() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return detector_.alerts();
}

std::size_t Collector::active_alarm_count() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return detector_.active_alarm_count();
}

Collector::Stats Collector::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Stats out = totals_;
  for (const auto& [site_id, gaps] : gap_epochs_)
    out.pending_gap_epochs += gaps.size();
  if (obs::recording())
    obs::FederationMetrics::get().pending_gap_epochs.set(
        static_cast<std::int64_t>(out.pending_gap_epochs));
  return out;
}

std::size_t Collector::connection_count() const {
  if (reactor_) return reactor_->connection_count();
  std::lock_guard<std::mutex> lock(conn_mutex_);
  std::size_t live = 0;
  for (const auto& conn : connections_)
    if (!conn->done.load(std::memory_order_acquire)) ++live;
  return live;
}

std::uint64_t Collector::inflight_bytes() const {
  return admission_.inflight_bytes();
}

QueryPublishState Collector::query_publish_state(std::size_t top_k) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  QueryPublishState state;
  state.checkpoint = build_checkpoint_state_locked();
  state.alerts = detector_.alerts();
  state.active_alarms = detector_.active_alarm_count();
  state.top_k = merged_.top_k(top_k);
  state.distinct_pairs = merged_.estimate_distinct_pairs();
  for (const auto& [site_id, site] : sites_)
    state.epoch_watermark = std::max(state.epoch_watermark, site.last_epoch);
  state.deltas_merged = totals_.deltas_merged;
  return state;
}

std::vector<Collector::SiteStats> Collector::site_stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<SiteStats> out;
  out.reserve(sites_.size());
  for (const auto& [id, site] : sites_) out.push_back(site);
  return out;
}

bool Collector::wait_for_deltas(std::uint64_t count, int timeout_ms) const {
  std::unique_lock<std::mutex> lock(state_mutex_);
  return state_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return totals_.deltas_merged >= count; });
}

bool Collector::wait_for_byes(std::uint64_t count, int timeout_ms) const {
  std::unique_lock<std::mutex> lock(state_mutex_);
  return state_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return totals_.byes >= count; });
}

}  // namespace dcs::service
