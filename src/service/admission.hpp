// Overload admission control for the collector (src/service).
//
// The paper's premise is *real-time* detection, which means the collector
// must degrade gracefully rather than fall over when sites misbehave: a
// burst of reconnecting agents after a WAN partition, a site shipping
// oversized deltas, or a byzantine peer flooding frames. Two bounds are
// enforced here, both with honest NACKs (Ack{kRetryLater, retry_after_ms})
// instead of silent tail-drop — principled shedding in the spirit of the
// Randomized Admission Policy line of work: the sender always learns the
// fate of its delta and keeps it spooled, so shedding costs latency, never
// correctness.
//
//   1. A global in-flight budget on delta bytes admitted but not yet
//      merged+acked. This is the collector's RSS proxy for the shipping
//      path: admitted bytes are the only per-delta allocations that scale
//      with load (decoded blob + deserialized sketch), so bounding them
//      bounds shipping-path memory regardless of how many sites connect.
//   2. A per-site token bucket on delta admissions (rate deltas/sec,
//      burst capacity), so one site replaying a deep spool at line rate
//      cannot starve every other site out of the global budget.
//
// Determinism for tests: every decision takes an explicit time_point, so
// unit tests drive a synthetic clock and the chaos harness stays seeded
// and reproducible. The controller does its own locking and is safe to
// call from all connection threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace dcs::service {

struct AdmissionConfig {
  /// Global cap on admitted-but-unreleased delta bytes. 0 disables the
  /// byte budget (every delta admits, as pre-overload collectors did).
  std::uint64_t max_inflight_bytes = 0;
  /// Per-site sustained admission rate in deltas per second. 0 disables
  /// per-site rate limiting.
  double site_rate_per_sec = 0.0;
  /// Per-site burst capacity in deltas (token-bucket depth). A site that
  /// has been quiet may ship this many back-to-back before the sustained
  /// rate applies — sized to let a reconnecting agent drain a reasonable
  /// spool without shedding. Clamped up to 1 when rate limiting is on.
  double site_burst = 8.0;
  /// retry_after hint floor, so agents never spin on immediate retries
  /// even when the computed wait rounds to zero.
  std::uint32_t min_retry_after_ms = 10;
  /// retry_after hint ceiling; also the hint used when the global byte
  /// budget (whose drain time we cannot predict) is what shed the delta.
  std::uint32_t max_retry_after_ms = 1000;
};

/// Outcome of one admission attempt.
struct AdmissionDecision {
  bool admitted = false;
  /// When !admitted: how long the site should wait before re-shipping.
  std::uint32_t retry_after_ms = 0;
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(const AdmissionConfig& config);

  /// Decide whether one delta of `bytes` from `site_id` may enter the
  /// merge path now. On admit, `bytes` is charged against the global
  /// budget and one token is consumed from the site's bucket; the caller
  /// MUST balance every admit with release() (use InflightCharge).
  AdmissionDecision try_admit(std::uint64_t site_id, std::uint64_t bytes,
                              Clock::time_point now);

  /// Return an admitted delta's bytes to the global budget (merge done,
  /// ack sent — or the merge path threw).
  void release(std::uint64_t bytes);

  /// Currently admitted, unreleased bytes (the dcs_collector_inflight
  /// gauge reads this).
  std::uint64_t inflight_bytes() const;

  /// Drop rate-limiter state for sites idle since `cutoff` so the bucket
  /// map cannot grow without bound across site churn.
  void forget_idle_sites(Clock::time_point cutoff);

  const AdmissionConfig& config() const { return config_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last;
  };

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::uint64_t inflight_bytes_ = 0;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

/// RAII balance for try_admit: releases the charged bytes on destruction
/// unless disarmed. Exceptions on the merge path can never leak budget.
class InflightCharge {
 public:
  InflightCharge() = default;
  InflightCharge(AdmissionController* controller, std::uint64_t bytes)
      : controller_(controller), bytes_(bytes) {}
  InflightCharge(InflightCharge&& other) noexcept
      : controller_(other.controller_), bytes_(other.bytes_) {
    other.controller_ = nullptr;
  }
  InflightCharge& operator=(InflightCharge&& other) noexcept {
    if (this != &other) {
      reset();
      controller_ = other.controller_;
      bytes_ = other.bytes_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  InflightCharge(const InflightCharge&) = delete;
  InflightCharge& operator=(const InflightCharge&) = delete;
  ~InflightCharge() { reset(); }

  void reset() {
    if (controller_ != nullptr) controller_->release(bytes_);
    controller_ = nullptr;
  }

 private:
  AdmissionController* controller_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace dcs::service
