// Minimal RAII wrappers over POSIX TCP sockets — just enough transport for
// the sketch-shipping protocol: a listener with timed accept, a timed
// connect, and full-buffer send / some-bytes receive with socket-level
// timeouts. No external dependencies; errors surface as return values (the
// service layer treats every transport failure the same way: drop the
// connection and let the reconnect/backoff logic recover).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace dcs::service {

/// Result of one receive attempt.
struct RecvResult {
  /// Bytes read into the buffer (0 with closed=false means timeout).
  std::size_t bytes = 0;
  /// Peer closed the connection (orderly EOF).
  bool closed = false;
  /// Hard transport error (connection reset, bad fd, ...).
  bool error = false;
  /// The receive timed out with no data (soft; retry is fine).
  bool timed_out = false;
};

/// Result of one send attempt (see TcpSocket::send_some).
struct SendResult {
  /// Bytes actually written (may be less than requested).
  std::size_t bytes = 0;
  /// The socket's send buffer is full (non-blocking socket, or SO_SNDTIMEO
  /// expired); retry once the peer drains — the bytes written so far were
  /// accepted by the kernel.
  bool would_block = false;
  /// Hard transport error (connection reset, bad fd, ...).
  bool error = false;
};

/// Move-only owner of a connected TCP socket.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) noexcept : fd_(fd) {}
  ~TcpSocket() { close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const noexcept { return fd_.load() >= 0; }
  int fd() const noexcept { return fd_.load(); }

  /// Apply SO_RCVTIMEO / SO_SNDTIMEO (0 = block forever).
  void set_timeouts(std::uint64_t recv_ms, std::uint64_t send_ms) noexcept;

  /// Send the whole buffer; false on any transport error (SIGPIPE is
  /// suppressed via MSG_NOSIGNAL).
  bool send_all(const void* data, std::size_t size) noexcept;
  bool send_all(const std::string& data) noexcept {
    return send_all(data.data(), data.size());
  }

  /// Send as much as the kernel will take right now, retrying EINTR but
  /// never blocking past one send(2) call on a non-blocking socket. The
  /// reactor's reply path: partial progress is reported, not treated as
  /// failure (the latent assumption send_all could hide behind SO_SNDTIMEO).
  SendResult send_some(const void* data, std::size_t size) noexcept;

  /// Receive up to `capacity` bytes (at least one unless EOF/timeout).
  RecvResult recv_some(void* buffer, std::size_t capacity) noexcept;

  /// Toggle O_NONBLOCK. Reactor-owned sockets are non-blocking; everything
  /// else keeps blocking semantics with SO_*TIMEO.
  void set_nonblocking(bool on) noexcept;

  /// Disable further sends/receives, waking any thread blocked in
  /// recv_some/send_all. Unlike close(), this leaves the fd valid, so it
  /// is safe to call from another thread while the owner is mid-recv —
  /// the owner (and only the owner) still calls close().
  void shutdown() noexcept;

  void close() noexcept;

 private:
  std::atomic<int> fd_{-1};
};

/// Listening socket bound to an IPv4 address. Construction may fail
/// (address in use, permission) — use the factory.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }

  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen on `address:port` (port 0 picks an ephemeral port;
  /// read it back via port()). Returns nullopt on failure.
  static std::optional<TcpListener> listen(const std::string& address,
                                           std::uint16_t port,
                                           int backlog = 16);

  bool valid() const noexcept { return fd_ >= 0; }
  std::uint16_t port() const noexcept { return port_; }
  /// Raw fd for event-loop registration (epoll). The listener still owns it.
  int fd() const noexcept { return fd_; }

  /// Toggle O_NONBLOCK so accept_now() returns instead of blocking.
  void set_nonblocking(bool on) noexcept;

  /// Wait up to `timeout_ms` for a connection; nullopt on timeout or error.
  std::optional<TcpSocket> accept(int timeout_ms) noexcept;

  /// Accept without waiting (EINTR retried): nullopt when no connection is
  /// queued. The reactor calls this in a drain-until-empty loop after an
  /// EPOLLIN on the listener.
  std::optional<TcpSocket> accept_now() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to `address:port`, waiting at most `timeout_ms`; nullopt on
/// refusal/timeout (callers back off and retry).
std::optional<TcpSocket> tcp_connect(const std::string& address,
                                     std::uint16_t port, int timeout_ms);

}  // namespace dcs::service
