#include "service/wire.hpp"

#include <cstring>
#include <sstream>

namespace dcs::service {

namespace {

bool valid_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MsgType::kHello) &&
         type <= static_cast<std::uint8_t>(MsgType::kBye);
}

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

std::uint32_t get_u32(const char* data) {
  std::uint32_t v;
  std::memcpy(&v, data, sizeof v);
  return v;
}

/// Encode a payload struct through a BinaryWriter-over-string.
template <typename Fn>
std::string encode_payload(Fn&& write_fields) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  write_fields(writer);
  return std::move(out).str();
}

/// Decode a payload; any reader underflow or trailing garbage is a
/// WireError (payload lengths are exact by construction).
template <typename Fn>
void decode_payload(const std::string& payload, Fn&& read_fields) {
  std::istringstream in(payload, std::ios::binary);
  BinaryReader reader(in);
  try {
    read_fields(reader);
  } catch (const SerializeError& error) {
    throw WireError(std::string("malformed payload: ") + error.what());
  }
  if (in.peek() != std::char_traits<char>::eof())
    throw WireError("malformed payload: trailing bytes");
}

}  // namespace

std::string encode_frame(MsgType type, std::string_view payload,
                         std::uint8_t version) {
  if (payload.size() > kMaxPayloadBytes)
    throw WireError("encode_frame: payload exceeds kMaxPayloadBytes");
  if (version < kMinWireVersion || version > kWireVersion)
    throw WireError("encode_frame: version outside supported range");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + kFrameCrcBytes);
  put_u32(frame, kWireMagic);
  frame.push_back(static_cast<char>(version));
  frame.push_back(static_cast<char>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  // CRC covers everything after the magic: version, type, length, payload.
  put_u32(frame, crc32(frame.data() + 4, frame.size() - 4));
  return frame;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<Frame> FrameDecoder::next() {
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  if (get_u32(buffer_.data()) != kWireMagic)
    throw WireError("frame: bad magic");
  const auto version = static_cast<std::uint8_t>(buffer_[4]);
  if (version < kMinWireVersion || version > kWireVersion)
    throw WireError("frame: unsupported version");
  const auto type = static_cast<std::uint8_t>(buffer_[5]);
  if (!valid_type(type)) throw WireError("frame: unknown message type");
  const std::uint32_t payload_len = get_u32(buffer_.data() + 6);
  if (payload_len > max_payload_)
    throw WireError("frame: oversized payload length");
  const std::size_t total =
      kFrameHeaderBytes + payload_len + kFrameCrcBytes;
  if (buffer_.size() < total) return std::nullopt;
  const std::uint32_t expected =
      get_u32(buffer_.data() + kFrameHeaderBytes + payload_len);
  const std::uint32_t computed =
      crc32(buffer_.data() + 4, kFrameHeaderBytes - 4 + payload_len);
  if (expected != computed) throw WireError("frame: CRC mismatch");
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.version = version;
  frame.payload = buffer_.substr(kFrameHeaderBytes, payload_len);
  buffer_.erase(0, total);
  return frame;
}

std::string Hello::encode(std::uint8_t version) const {
  return encode_payload([&](BinaryWriter& w) {
    w.u64(site_id);
    w.u64(params_fingerprint);
    w.u64(epoch_updates);
    w.u64(first_epoch);
    w.u64(dropped_epochs);
    if (version >= 4) {
      w.u8(static_cast<std::uint8_t>(role));
      w.u32(map_version);
    }
  });
}

Hello Hello::decode(const std::string& payload, std::uint8_t version) {
  Hello hello;
  decode_payload(payload, [&](BinaryReader& r) {
    hello.site_id = r.u64();
    hello.params_fingerprint = r.u64();
    hello.epoch_updates = r.u64();
    hello.first_epoch = r.u64();
    hello.dropped_epochs = r.u64();
    if (version >= 4) {
      const std::uint8_t role = r.u8();
      if (role > static_cast<std::uint8_t>(PeerRole::kLeaf))
        throw WireError("hello: unknown role");
      hello.role = static_cast<PeerRole>(role);
      hello.map_version = r.u32();
    }
  });
  return hello;
}

std::string SnapshotDelta::encode(std::uint8_t version) const {
  return encode_payload([&](BinaryWriter& w) {
    w.u64(site_id);
    w.u64(epoch);
    w.u64(updates);
    if (version >= 3) {
      w.u64(seal_unix_ns);
      w.u64(seal_steady_ns);
      w.u64(spool_unix_ns);
      w.u64(ship_unix_ns);
    }
    w.str(sketch_blob);
  });
}

SnapshotDelta SnapshotDelta::decode(const std::string& payload,
                                    std::uint8_t version) {
  SnapshotDelta delta;
  decode_payload(payload, [&](BinaryReader& r) {
    delta.site_id = r.u64();
    delta.epoch = r.u64();
    delta.updates = r.u64();
    if (version >= 3) {
      delta.seal_unix_ns = r.u64();
      delta.seal_steady_ns = r.u64();
      delta.spool_unix_ns = r.u64();
      delta.ship_unix_ns = r.u64();
    }
    delta.sketch_blob = r.str();
  });
  return delta;
}

std::string Heartbeat::encode() const {
  return encode_payload([&](BinaryWriter& w) {
    w.u64(site_id);
    w.u64(current_epoch);
    w.u64(spooled_epochs);
    w.u64(dropped_epochs);
  });
}

Heartbeat Heartbeat::decode(const std::string& payload) {
  Heartbeat heartbeat;
  decode_payload(payload, [&](BinaryReader& r) {
    heartbeat.site_id = r.u64();
    heartbeat.current_epoch = r.u64();
    heartbeat.spooled_epochs = r.u64();
    heartbeat.dropped_epochs = r.u64();
  });
  return heartbeat;
}

std::string Ack::encode(std::uint8_t version) const {
  return encode_payload([&](BinaryWriter& w) {
    w.u64(epoch);
    w.u8(static_cast<std::uint8_t>(status));
    w.u32(retry_after_ms);
    if (version >= 4) {
      w.u32(map_version);
      w.str(map_blob);
    }
  });
}

Ack Ack::decode(const std::string& payload, std::uint8_t version) {
  Ack ack;
  decode_payload(payload, [&](BinaryReader& r) {
    ack.epoch = r.u64();
    const std::uint8_t status = r.u8();
    // kWrongShard needs the map fields to be actionable, so it is v4-only;
    // at v2/v3 the same byte is a protocol violation.
    const auto max_status = static_cast<std::uint8_t>(
        version >= 4 ? AckStatus::kWrongShard : AckStatus::kRetryLater);
    if (status > max_status) throw WireError("ack: unknown status");
    ack.status = static_cast<AckStatus>(status);
    ack.retry_after_ms = r.u32();
    if (version >= 4) {
      ack.map_version = r.u32();
      ack.map_blob = r.str();
    }
  });
  return ack;
}

std::string Bye::encode() const {
  return encode_payload([&](BinaryWriter& w) { w.u64(site_id); });
}

Bye Bye::decode(const std::string& payload) {
  Bye bye;
  decode_payload(payload, [&](BinaryReader& r) { bye.site_id = r.u64(); });
  return bye;
}

}  // namespace dcs::service
