// SiteAgent: the per-router half of the sketch-shipping deployment.
//
// Wraps the existing ingest path (a local DistinctCountSketch) and, every
// `epoch_updates` flow updates, seals the accumulated sketch into an
// immutable per-epoch delta, serializes it (CRC-footered), and queues it on
// a bounded spool. A background sender thread ships spooled deltas to the
// collector and only pops one after the collector's Ack — so a connection
// drop mid-flight retransmits, and the collector's epoch dedup makes the
// retransmit harmless.
//
// Collector outages: the agent keeps ingesting and sealing; the spool
// absorbs up to `spool_epochs` deltas, after which the *oldest* is dropped
// (newest data is most valuable for detection) and counted. Reconnection
// uses exponential backoff with jitter so a fleet of agents does not
// reconnect in lockstep. All degraded-mode accounting (sealed / shipped /
// dropped / reconnects / spool depth) is exported via obs and carried in
// Hello/Heartbeat messages so the collector sees it too.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "common/random.hpp"
#include "obs/trace.hpp"
#include "service/federation/shard_map.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "stream/flow_update.hpp"

namespace dcs::service {

struct Ack;  // wire.hpp

struct SiteAgentConfig {
  std::uint64_t site_id = 1;
  /// Collector endpoint. Under federation (shard_map non-empty) this is the
  /// *seed*: a bootstrap leaf the agent falls back to when the mapped leaf
  /// stays unreachable — any leaf answers a mis-homed Hello with
  /// kWrongShard plus the current map, which is exactly the re-bootstrap
  /// an agent holding a dead map needs.
  std::string collector_host = "127.0.0.1";
  std::uint16_t collector_port = 0;
  /// Optional federation shard map (docs/FEDERATION.md). When non-empty the
  /// agent homes to `shard_map.endpoint_for(site_id)` instead of the seed,
  /// and re-homes whenever a leaf hands it a newer map (a kWrongShard ack
  /// or a map push on the Hello ack). The spool survives re-homing — the
  /// root's per-site dedup absorbs any cross-leaf re-ship.
  ShardMap shard_map;
  /// Must match the collector's params (fingerprint-checked at Hello).
  DcsParams params;
  /// Flow updates per epoch before the sketch is sealed and shipped.
  std::uint64_t epoch_updates = 4096;
  /// Epoch numbering starts here (set > 1 to resume after a restart; the
  /// collector counts the gap as dropped epochs).
  std::uint64_t first_epoch = 1;
  /// Max sealed-but-unacked deltas held; beyond this the oldest is dropped.
  std::size_t spool_epochs = 64;
  std::uint64_t backoff_initial_ms = 50;
  std::uint64_t backoff_max_ms = 2000;
  /// Uniform jitter fraction applied to each backoff delay (0..1).
  double backoff_jitter = 0.2;
  /// Send a Heartbeat after this long with nothing to ship.
  std::uint64_t heartbeat_interval_ms = 500;
  int io_timeout_ms = 2000;
  /// Seed for backoff jitter (deterministic tests).
  std::uint64_t jitter_seed = 0x5eedULL;
  /// Epoch traces retained for the ops plane's /traces endpoint.
  std::size_t trace_capacity = 256;
};

class SiteAgent {
 public:
  struct Stats {
    std::uint64_t epochs_sealed = 0;
    std::uint64_t epochs_shipped = 0;   ///< Acked (kOk or kDuplicate) or
                                        ///< skipped via resume watermark.
    std::uint64_t epochs_dropped = 0;   ///< Evicted from a full spool.
    /// Spooled epochs dropped without re-shipping because the collector's
    /// Hello-ack watermark showed them already durably merged (collector
    /// restarted from its checkpoint). Subset of epochs_shipped.
    std::uint64_t resume_skips = 0;
    /// kRetryLater NACKs received from the collector's admission control.
    /// Each one kept its epoch spooled and delayed the next ship attempt by
    /// the collector's retry_after_ms hint — overload costs latency here,
    /// never data.
    std::uint64_t nacks = 0;
    std::uint64_t reconnects = 0;       ///< Connection attempts after the 1st.
    std::uint64_t io_errors = 0;
    /// Times the agent switched leaves after learning a newer shard map
    /// (kWrongShard ack, or a map push that moved our shard).
    std::uint64_t rehomes = 0;
    /// Version of the newest shard map adopted (0 = none / unsharded).
    std::uint32_t map_version = 0;
    std::size_t spool_depth = 0;
    std::uint64_t current_epoch = 0;    ///< Epoch now accumulating.
    bool connected = false;
    /// Collector rejected our Hello (parameter mismatch) — permanent.
    bool rejected = false;
  };

  explicit SiteAgent(SiteAgentConfig config);
  /// Abrupt teardown: no Bye, no flush — indistinguishable from a crash on
  /// the collector side. Call stop() first for a graceful exit.
  ~SiteAgent();

  SiteAgent(const SiteAgent&) = delete;
  SiteAgent& operator=(const SiteAgent&) = delete;

  /// Start the sender thread. Idempotent until stop().
  void start();
  /// Graceful stop: stops sealing, attempts to drain the spool within
  /// `drain_timeout_ms`, sends Bye if connected, joins the sender.
  void stop(int drain_timeout_ms = 2000);

  // --- ingest (single producer) --------------------------------------------
  /// Apply one flow update to the current epoch's sketch; seals the epoch
  /// automatically every `epoch_updates` updates.
  void ingest(const FlowUpdate& update);
  void ingest(Addr dest, Addr source, int delta);

  /// Seal the current epoch now even if under-full (no-op if empty).
  void seal_epoch();

  /// Seal, then block until the spool drains (all acked) or timeout.
  /// Returns true if fully drained.
  bool flush(int timeout_ms);

  Stats stats() const;
  const SiteAgentConfig& config() const noexcept { return config_; }

  /// Agent-side epoch traces (sealed/spooled/shipped stages), newest last.
  std::vector<obs::EpochTrace> traces() const { return trace_ring_.snapshot(); }

 private:
  struct SpooledEpoch {
    std::uint64_t epoch = 0;
    std::uint64_t updates = 0;
    // Origin stamps carried on the wire (v3) so the collector can compute
    // end-to-end freshness for this epoch.
    std::uint64_t seal_unix_ns = 0;
    std::uint64_t seal_steady_ns = 0;
    std::uint64_t spool_unix_ns = 0;
    std::string blob;  ///< Serialized sketch delta.
  };

  void sender_loop();
  /// One connection lifetime: connect, Hello, ship/heartbeat until error or
  /// shutdown. Returns false if the collector rejected us (permanent).
  bool run_connection();
  std::uint64_t next_backoff_ms();
  /// Where the next connection goes: the mapped leaf, or the seed endpoint
  /// when unsharded / falling back after repeated connect failures.
  void pick_target(std::string& host, std::uint16_t& port);
  /// Adopt the map carried in `ack` if it is strictly newer than ours.
  /// Returns true when adoption moved our shard to a different endpoint.
  bool adopt_map(const Ack& ack);

  SiteAgentConfig config_;

  // Ingest state — touched only by the ingesting thread.
  DistinctCountSketch current_;
  std::uint64_t current_updates_ = 0;
  std::uint64_t current_epoch_;

  std::thread sender_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};  ///< Graceful stop requested.

  mutable std::mutex mutex_;           ///< Guards spool_ and stats_.
  std::condition_variable cv_;
  std::deque<SpooledEpoch> spool_;
  Stats stats_;

  Xoshiro256 jitter_;
  std::uint64_t backoff_ms_ = 0;

  // Federation state — touched only by the sender thread (stats_.map_version
  // mirrors the adopted version for stats() readers).
  ShardMap shard_map_;
  /// Consecutive failed connects to the *mapped* leaf; at
  /// kSeedFallbackAfter the agent tries the seed endpoint instead, which
  /// re-bootstraps the map via kWrongShard if the shard moved.
  static constexpr std::uint32_t kSeedFallbackAfter = 2;
  std::uint32_t connect_failures_ = 0;

  obs::TraceRing trace_ring_;
};

}  // namespace dcs::service
