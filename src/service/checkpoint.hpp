// Durable checkpoints for the sketch-shipping collector.
//
// The collector is the single point of merged state in the paper's
// distributed deployment: lose it and every site's history — and the DDoS
// baseline profiles learned from it — silently resets, exactly the blind
// spot a patient attacker waits for. This module makes that state crash-safe
// with the classic checkpoint + write-ahead-journal pair:
//
//   state-dir/
//     checkpoint-<G>.dcsc   full snapshot: merged sketch counters, per-site
//                           epoch watermarks, collector totals, detector
//                           (EWMA baseline) state. Written atomically
//                           (temp + fsync + rename + dir fsync) with a
//                           versioned header and a CRC-32 footer.
//     journal-<G>.dcsj      every delta merged while checkpoint G was the
//                           newest generation, appended and fsync'd BEFORE
//                           the site is acked (see epoch_journal.hpp).
//
// Recovery = newest checkpoint whose CRC verifies (falling back generation
// by generation on corruption) + replay of every journal generation at or
// after it, deduped by the per-site watermarks. Because the DCS is linear,
// the recovered counters are bit-identical to an uninterrupted run's — a
// property the recovery oracle tests assert exactly, not approximately.
//
// Retention: the store keeps the `retain` newest generations (plus their
// journals) — default 2, so a crash *during* a checkpoint write — or a
// checkpoint that lands corrupt on disk — still has a complete previous
// generation to fall back to. Older generations are pruned. The snapshot
// publisher raises the depth (--publish-retain) so the query tier can
// serve time-travel reads over retained generations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sketch/distinct_count_sketch.hpp"

namespace dcs::service {

/// Per-site recovery watermark: everything the collector must remember about
/// a site to dedup re-shipped epochs and keep its degraded-mode ledger.
struct SiteWatermark {
  std::uint64_t site_id = 0;
  std::uint64_t last_epoch = 0;
  std::uint64_t epochs_merged = 0;
  std::uint64_t updates_merged = 0;
  std::uint64_t dropped_epochs = 0;
  std::uint64_t duplicate_deltas = 0;

  friend bool operator==(const SiteWatermark&, const SiteWatermark&) = default;
};

/// One full checkpoint: the collector's merged/detection state at a moment
/// when exactly `deltas_merged` deltas had been merged.
struct CheckpointState {
  std::uint64_t generation = 0;
  /// Merged basic sketch; the tracking structures are rebuilt on load
  /// (TrackingDcs(sketch)), which by linearity reproduces them exactly.
  DistinctCountSketch sketch;
  /// Sorted by site_id (deterministic bytes for identical state).
  std::vector<SiteWatermark> sites;
  std::uint64_t deltas_merged = 0;
  std::uint64_t duplicate_deltas = 0;
  std::uint64_t dropped_epochs = 0;
  std::uint64_t byes = 0;
  /// BaselineDetector::serialize bytes; empty when detection is off.
  std::string detector_blob;
};

class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if missing. Throws std::runtime_error if
  /// the directory cannot be created, or std::invalid_argument when
  /// `retain` is 0 (a store that prunes its newest generation is useless).
  explicit CheckpointStore(std::string dir, std::uint64_t retain = 2);

  const std::string& dir() const noexcept { return dir_; }
  /// Generations prune_retained() keeps, the newest included.
  std::uint64_t retain() const noexcept { return retain_; }
  std::string checkpoint_path(std::uint64_t generation) const;
  std::string journal_path(std::uint64_t generation) const;

  /// Serialize + atomically publish checkpoint `state.generation`. Returns
  /// the byte size written; `fsync_ns` (if non-null) receives fsync time.
  /// Throws SerializeError on I/O failure.
  std::uint64_t write(const CheckpointState& state,
                      std::uint64_t* fsync_ns = nullptr) const;

  /// Newest checkpoint that decodes cleanly, walking back over corrupt or
  /// truncated generations (each skip counted into `corrupt_skipped` when
  /// non-null). std::nullopt when no generation is loadable.
  std::optional<CheckpointState> load_latest(
      std::uint64_t* corrupt_skipped = nullptr) const;

  /// Generations present on disk (by file name), ascending.
  std::vector<std::uint64_t> checkpoint_generations() const;
  std::vector<std::uint64_t> journal_generations() const;
  /// Highest generation number referenced by any checkpoint or journal
  /// file, 0 if none — new checkpoints must be numbered above this even if
  /// the newest file is corrupt.
  std::uint64_t max_generation() const;

  /// Delete checkpoint and journal files with generation < keep_from.
  void prune_below(std::uint64_t keep_from) const;

  /// Apply the configured retention depth against `newest_generation`:
  /// keeps generations > newest_generation - retain() (i.e. the newest
  /// `retain()` generation numbers, the newest itself included), prunes
  /// everything older. Saturates at generation 0, so the first
  /// `retain()` generations are never pruned.
  void prune_retained(std::uint64_t newest_generation) const;

  /// Encode/decode one checkpoint (exposed for corruption tests). decode
  /// throws SerializeError on any malformed input and never partially
  /// applies.
  static std::string encode(const CheckpointState& state);
  static CheckpointState decode(const std::string& bytes);

 private:
  std::vector<std::uint64_t> generations_matching(const char* prefix,
                                                  const char* suffix) const;

  std::string dir_;
  std::uint64_t retain_;
};

}  // namespace dcs::service
