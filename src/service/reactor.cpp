#include "service/reactor.hpp"

#include <cerrno>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"

namespace dcs::service {

using Clock = std::chrono::steady_clock;

/// One reactor-owned connection. Lives on exactly one worker; nothing here
/// is shared between threads, so no per-connection locking.
struct Reactor::Conn {
  TcpSocket socket;
  FrameDecoder decoder;
  PeerState peer;
  /// Reply bytes queued but not yet accepted by the kernel. out_off tracks
  /// the flushed prefix; the buffer compacts when fully drained.
  std::string out;
  std::size_t out_off = 0;
  bool want_write = false;
  /// Deadline bookkeeping, same semantics as the threaded serve() loop:
  /// frame_start marks when the oldest incomplete frame began arriving and
  /// is NOT refreshed by later bytes (slow-loris defense); last_activity is
  /// refreshed by any bytes and backs the idle reaper.
  bool frame_pending = false;
  Clock::time_point frame_start{};
  Clock::time_point last_activity{};
};

/// One epoll worker: its own epoll set, wakeup eventfd, and connection
/// table keyed by fd. Other threads only ever touch `pending` (under
/// `mutex`) and the eventfd — everything else is worker-thread private.
struct Reactor::Worker {
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::mutex mutex;
  std::vector<TcpSocket> pending;
  Clock::time_point last_sweep{};

  ~Worker() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (event_fd >= 0) ::close(event_fd);
  }
};

namespace {

void signal_eventfd(int fd) {
  const std::uint64_t one = 1;
  // write(2) on an eventfd can only fail with EAGAIN when the counter is
  // already saturated — which still wakes the epoll, so ignore it.
  [[maybe_unused]] ssize_t rc = ::write(fd, &one, sizeof one);
}

void drain_eventfd(int fd) {
  std::uint64_t value = 0;
  [[maybe_unused]] ssize_t rc = ::read(fd, &value, sizeof value);
}

}  // namespace

Reactor::Reactor(ReactorConfig config, FrameHandler& handler)
    : config_(config), handler_(handler) {
  if (config_.workers < 1)
    throw std::invalid_argument("Reactor: workers must be >= 1");
  if (config_.tick_ms < 1) config_.tick_ms = 1;
}

Reactor::~Reactor() { stop(); }

void Reactor::start(TcpListener& listener) {
  if (running_.load(std::memory_order_acquire)) return;
  listener_ = &listener;
  workers_.clear();
  for (int i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (worker->epoll_fd < 0 || worker->event_fd < 0)
      throw std::runtime_error("Reactor: epoll/eventfd setup failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->event_fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->event_fd, &ev) !=
        0)
      throw std::runtime_error("Reactor: cannot register eventfd");
    workers_.push_back(std::move(worker));
  }
  // Worker 0 doubles as the acceptor: the listener joins its epoll set.
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listener.fd();
    if (::epoll_ctl(workers_[0]->epoll_fd, EPOLL_CTL_ADD, listener.fd(),
                    &ev) != 0)
      throw std::runtime_error("Reactor: cannot register listener");
  }
  running_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->last_sweep = Clock::now();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

void Reactor::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& worker : workers_) signal_eventfd(worker->event_fd);
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  // Tear down whatever was still connected; the workers are gone, so the
  // tables are safe to touch from here.
  for (auto& worker : workers_) {
    for (auto& [fd, conn] : worker->conns) {
      conn->socket.shutdown();
      handler_.on_disconnect(conn->peer);
      connections_.fetch_sub(1, std::memory_order_acq_rel);
      if (obs::recording()) obs::ReactorMetrics::get().connections.add(-1);
    }
    worker->conns.clear();
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->pending.clear();
  }
  workers_.clear();
  listener_ = nullptr;
}

void Reactor::worker_loop(Worker& worker) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  const bool acceptor = &worker == workers_[0].get();
  while (running_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(worker.epoll_fd, events, kMaxEvents, config_.tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only possible mid-shutdown
    }
    if (obs::recording()) obs::ReactorMetrics::get().wakeups.inc();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == worker.event_fd) {
        drain_eventfd(worker.event_fd);
        std::vector<TcpSocket> adopted;
        {
          std::lock_guard<std::mutex> lock(worker.mutex);
          adopted.swap(worker.pending);
        }
        for (auto& socket : adopted) adopt(worker, std::move(socket));
        continue;
      }
      if (acceptor && listener_ && fd == listener_->fd()) {
        accept_ready(worker);
        continue;
      }
      // A connection event. The fd may already be gone if an earlier event
      // in this batch dropped it; epoll delivers at most one entry per fd
      // per wait, but the lookup guards against kernel-vs-table skew.
      auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;
      Conn& conn = *it->second;
      bool alive = true;
      if (events[i].events & EPOLLOUT) alive = flush_out(worker, conn);
      if (alive && (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)))
        alive = read_ready(worker, conn);
      if (!alive) drop(worker, fd, conn);
    }
    // Deadline/idle sweep, throttled to the tick so a peer that never
    // triggers another wakeup still dies on time.
    const Clock::time_point now = Clock::now();
    if (now - worker.last_sweep >= std::chrono::milliseconds(config_.tick_ms)) {
      worker.last_sweep = now;
      sweep_deadlines(worker);
    }
  }
}

void Reactor::accept_ready(Worker& worker) {
  // Drain the accept queue completely: with level-triggered epoll one
  // wakeup may announce many queued connections after a burst.
  while (running_.load(std::memory_order_acquire)) {
    auto socket = listener_->accept_now();
    if (!socket) break;
    socket->set_nonblocking(true);
    if (obs::recording()) obs::ReactorMetrics::get().accepts.inc();
    Worker& target = *workers_[next_worker_];
    next_worker_ = (next_worker_ + 1) % workers_.size();
    if (&target == &worker) {
      adopt(worker, std::move(*socket));
    } else {
      {
        std::lock_guard<std::mutex> lock(target.mutex);
        target.pending.push_back(std::move(*socket));
      }
      signal_eventfd(target.event_fd);
    }
  }
}

void Reactor::adopt(Worker& worker, TcpSocket socket) {
  const int fd = socket.fd();
  if (fd < 0) return;
  auto conn = std::make_unique<Conn>();
  conn->socket = std::move(socket);
  if (config_.max_frame_bytes != 0)
    conn->decoder.set_max_payload(config_.max_frame_bytes);
  conn->last_activity = Clock::now();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) return;
  worker.conns.emplace(fd, std::move(conn));
  connections_.fetch_add(1, std::memory_order_acq_rel);
  if (obs::recording()) obs::ReactorMetrics::get().connections.add(1);
}

bool Reactor::read_ready(Worker& worker, Conn& conn) {
  char buffer[64 * 1024];
  std::uint64_t frames_this_wakeup = 0;
  bool saw_eof = false;
  // Drain until EAGAIN: with level-triggered epoll this is an optimization
  // (fewer wakeups), and it defines the per-wakeup frame batch.
  for (;;) {
    const RecvResult got = conn.socket.recv_some(buffer, sizeof buffer);
    if (got.error) return false;
    if (got.closed) {
      saw_eof = true;
      break;
    }
    if (got.timed_out || got.bytes == 0) break;  // EAGAIN — drained
    const Clock::time_point now = Clock::now();
    conn.last_activity = now;
    if (!conn.frame_pending) {
      conn.frame_pending = true;
      conn.frame_start = now;
    }
    conn.decoder.feed(buffer, got.bytes);
    try {
      while (auto frame = conn.decoder.next()) {
        ++frames_this_wakeup;
        const std::string reply = handler_.on_frame(
            conn.peer, frame->type, frame->version, frame->payload);
        if (!reply.empty()) conn.out.append(reply);
      }
      if (conn.decoder.buffered() == 0) conn.frame_pending = false;
    } catch (const WireError&) {
      handler_.on_frame_error();
      return false;
    }
  }
  if (obs::recording() && frames_this_wakeup > 0)
    obs::ReactorMetrics::get().frames_per_wakeup.observe(frames_this_wakeup);
  if (!flush_out(worker, conn)) return false;
  // EOF processed last so frames coalesced with the peer's FIN (a client
  // that ships Bye and closes in one write) are still handled and their
  // replies flushed best-effort before the drop.
  return !saw_eof;
}

bool Reactor::flush_out(Worker& worker, Conn& conn) {
  if (conn.out_off < conn.out.size()) {
    const SendResult sent = conn.socket.send_some(
        conn.out.data() + conn.out_off, conn.out.size() - conn.out_off);
    if (sent.error) return false;
    conn.out_off += sent.bytes;
    if (sent.would_block && obs::recording())
      obs::ReactorMetrics::get().partial_writes.inc();
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > (kMaxOutBufferBytes >> 1)) {
    // Compact occasionally so a slowly-draining peer doesn't pin the
    // already-sent prefix forever.
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  if (conn.out.size() - conn.out_off > kMaxOutBufferBytes) {
    // The peer owes us reads it is not doing; cap what it can make us hold.
    if (obs::recording()) obs::ReactorMetrics::get().out_buffer_drops.inc();
    return false;
  }
  const bool want = conn.out_off < conn.out.size();
  if (want != conn.want_write) {
    conn.want_write = want;
    update_interest(worker, conn);
  }
  return true;
}

void Reactor::update_interest(Worker& worker, Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.socket.fd();
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.socket.fd(), &ev);
}

void Reactor::sweep_deadlines(Worker& worker) {
  const Clock::time_point now = Clock::now();
  std::vector<int> doomed;
  for (auto& [fd, conn] : worker.conns) {
    if (config_.frame_deadline_ms > 0 && conn->frame_pending &&
        now - conn->frame_start >
            std::chrono::milliseconds(config_.frame_deadline_ms)) {
      handler_.on_deadline_drop();
      doomed.push_back(fd);
      continue;
    }
    if (config_.idle_timeout_ms > 0 &&
        now - conn->last_activity >
            std::chrono::milliseconds(config_.idle_timeout_ms)) {
      handler_.on_idle_reap();
      doomed.push_back(fd);
    }
  }
  for (const int fd : doomed) {
    auto it = worker.conns.find(fd);
    if (it != worker.conns.end()) drop(worker, fd, *it->second);
  }
}

void Reactor::drop(Worker& worker, int fd, Conn& conn) {
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  conn.socket.shutdown();
  handler_.on_disconnect(conn.peer);
  worker.conns.erase(fd);  // closes the fd (TcpSocket dtor)
  connections_.fetch_sub(1, std::memory_order_acq_rel);
  if (obs::recording()) obs::ReactorMetrics::get().connections.add(-1);
}

}  // namespace dcs::service
