#include "service/admission.hpp"

#include <algorithm>
#include <cmath>

#include "obs/instruments.hpp"

namespace dcs::service {

namespace {

std::uint32_t clamp_hint(double ms, const AdmissionConfig& config) {
  const double lo = static_cast<double>(config.min_retry_after_ms);
  const double hi = static_cast<double>(config.max_retry_after_ms);
  return static_cast<std::uint32_t>(std::clamp(std::ceil(ms), lo, hi));
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  if (config_.site_rate_per_sec > 0.0)
    config_.site_burst = std::max(config_.site_burst, 1.0);
  config_.max_retry_after_ms =
      std::max(config_.max_retry_after_ms, config_.min_retry_after_ms);
}

AdmissionDecision AdmissionController::try_admit(std::uint64_t site_id,
                                                std::uint64_t bytes,
                                                Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Global byte budget first: when the collector as a whole is saturated,
  // no site-local token should let a delta through. We cannot predict when
  // in-flight merges drain, so the hint is the configured ceiling.
  if (config_.max_inflight_bytes != 0 &&
      inflight_bytes_ + bytes > config_.max_inflight_bytes) {
    return {false, config_.max_retry_after_ms};
  }
  if (config_.site_rate_per_sec > 0.0) {
    auto [it, inserted] = buckets_.try_emplace(site_id);
    Bucket& bucket = it->second;
    if (inserted) {
      bucket.tokens = config_.site_burst;
      bucket.last = now;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - bucket.last).count();
      if (elapsed > 0.0) {
        bucket.tokens = std::min(
            config_.site_burst,
            bucket.tokens + elapsed * config_.site_rate_per_sec);
        bucket.last = now;
      }
    }
    if (bucket.tokens < 1.0) {
      // Time until the bucket refills to one whole token.
      const double wait_ms =
          (1.0 - bucket.tokens) / config_.site_rate_per_sec * 1000.0;
      return {false, clamp_hint(wait_ms, config_)};
    }
    bucket.tokens -= 1.0;
  }
  inflight_bytes_ += bytes;
  if (obs::recording())
    obs::CollectorMetrics::get().inflight_bytes.add(
        static_cast<std::int64_t>(bytes));
  return {true, 0};
}

void AdmissionController::release(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_bytes_ = bytes > inflight_bytes_ ? 0 : inflight_bytes_ - bytes;
  if (obs::recording())
    obs::CollectorMetrics::get().inflight_bytes.add(
        -static_cast<std::int64_t>(bytes));
}

std::uint64_t AdmissionController::inflight_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_bytes_;
}

void AdmissionController::forget_idle_sites(Clock::time_point cutoff) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    it = it->second.last < cutoff ? buckets_.erase(it) : std::next(it);
  }
}

}  // namespace dcs::service
