// Append-only epoch journal: the collector's write-ahead log between
// checkpoints.
//
// Durability contract (see checkpoint.hpp for the full recovery story): a
// SnapshotDelta is appended — full sketch blob included — and fsync'd
// *before* the collector merges it and acks the site. An acked epoch is
// therefore always recoverable: either it is covered by a later checkpoint,
// or replaying the journal re-merges it. Since the site agent drops a delta
// from its spool only on ack, the pair (ack-gated spool, durable-then-ack
// journal) turns at-least-once delivery into end-to-end exactly-once across
// collector crashes.
//
// Record framing (little-endian), one per merged delta:
//
//   offset  size  field
//   ------  ----  -----------------------------------------
//        0     4  magic 0x4A534344 ("DCSJ")
//        4     4  payload length in bytes
//        8     n  payload: u64 site_id, u64 epoch, u64 updates,
//                 str sketch_blob (u64 length + bytes)
//    8 + n     4  CRC-32 over bytes [4, 8 + n)
//
// replay() consumes the longest valid prefix and stops at the first torn or
// corrupt record (a crash mid-append leaves exactly that). It never throws
// on bad bytes — a corrupt journal yields fewer records, not a dead
// collector. Bytes after the first bad record are not trusted: a record
// boundary cannot be re-found reliably, and later records may depend on
// state the lost one carried.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcs::service {

constexpr std::uint32_t kJournalMagic = 0x4A534344;  // "DCSJ"
/// Bound on one record's payload; mirrors the wire frame cap so a corrupt
/// length prefix cannot make replay buffer gigabytes.
constexpr std::uint32_t kMaxJournalPayloadBytes = 64u << 20;

class EpochJournal {
 public:
  /// One journaled delta — everything needed to re-merge it on recovery.
  struct Record {
    std::uint64_t site_id = 0;
    std::uint64_t epoch = 0;
    std::uint64_t updates = 0;
    std::string sketch_blob;
  };

  struct ReplayResult {
    std::vector<Record> records;  ///< Longest valid prefix, in append order.
    /// True when trailing bytes were discarded (torn append or corruption).
    bool truncated_tail = false;
    std::uint64_t valid_bytes = 0;
  };

  EpochJournal() = default;
  ~EpochJournal();

  EpochJournal(EpochJournal&& other) noexcept;
  EpochJournal& operator=(EpochJournal&& other) noexcept;
  EpochJournal(const EpochJournal&) = delete;
  EpochJournal& operator=(const EpochJournal&) = delete;

  /// Open `path` for appending (created if missing). `fsync_each` makes
  /// every append durable before it returns — required for the ack-implies-
  /// durable contract; turn it off only for tests/benchmarks that accept
  /// losing the tail. Throws std::runtime_error on failure.
  static EpochJournal open(const std::string& path, bool fsync_each = true);

  /// Append one record (and fsync when configured). Throws
  /// std::runtime_error if the write or fsync fails — the caller must NOT
  /// ack the delta in that case. If `fsync_ns` is non-null it receives the
  /// fsync duration.
  void append(const Record& record, std::uint64_t* fsync_ns = nullptr);

  /// Parse the longest valid record prefix of the file at `path`. A missing
  /// file is an empty journal, not an error.
  static ReplayResult replay(const std::string& path);

  void close();
  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }
  std::uint64_t appended_records() const noexcept { return appended_; }

 private:
  int fd_ = -1;
  std::string path_;
  bool fsync_each_ = true;
  std::uint64_t appended_ = 0;
};

}  // namespace dcs::service
