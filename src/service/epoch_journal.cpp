#include "service/epoch_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/serialize.hpp"

namespace dcs::service {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

std::uint32_t get_u32(const char* data) {
  std::uint32_t v;
  std::memcpy(&v, data, sizeof v);
  return v;
}

std::uint64_t get_u64(const char* data) {
  std::uint64_t v;
  std::memcpy(&v, data, sizeof v);
  return v;
}

constexpr std::size_t kRecordHeaderBytes = 8;  // magic + payload length
constexpr std::size_t kRecordCrcBytes = 4;

}  // namespace

EpochJournal::~EpochJournal() { close(); }

EpochJournal::EpochJournal(EpochJournal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      fsync_each_(other.fsync_each_),
      appended_(other.appended_) {}

EpochJournal& EpochJournal::operator=(EpochJournal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    fsync_each_ = other.fsync_each_;
    appended_ = other.appended_;
  }
  return *this;
}

EpochJournal EpochJournal::open(const std::string& path, bool fsync_each) {
  EpochJournal journal;
  journal.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (journal.fd_ < 0)
    throw std::runtime_error("EpochJournal: cannot open " + path);
  journal.path_ = path;
  journal.fsync_each_ = fsync_each;
  return journal;
}

void EpochJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void EpochJournal::append(const Record& record, std::uint64_t* fsync_ns) {
  if (fd_ < 0) throw std::runtime_error("EpochJournal: append on closed journal");

  std::string payload;
  payload.reserve(3 * 8 + 8 + record.sketch_blob.size());
  put_u64(payload, record.site_id);
  put_u64(payload, record.epoch);
  put_u64(payload, record.updates);
  put_u64(payload, record.sketch_blob.size());
  payload.append(record.sketch_blob);
  if (payload.size() > kMaxJournalPayloadBytes)
    throw std::runtime_error("EpochJournal: record exceeds payload cap");

  std::string framed;
  framed.reserve(kRecordHeaderBytes + payload.size() + kRecordCrcBytes);
  put_u32(framed, kJournalMagic);
  put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  framed.append(payload);
  // CRC covers the length prefix and payload (magic is checked by equality).
  put_u32(framed, crc32(framed.data() + 4, framed.size() - 4));

  // One write() call per record: O_APPEND makes it a single atomic append,
  // so a crash can tear at most the final record — exactly what replay()'s
  // valid-prefix rule tolerates.
  std::size_t written = 0;
  while (written < framed.size()) {
    const ::ssize_t n =
        ::write(fd_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("EpochJournal: write failed for " + path_);
    }
    written += static_cast<std::size_t>(n);
  }
  if (fsync_each_) {
    const auto start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0)
      throw std::runtime_error("EpochJournal: fsync failed for " + path_);
    if (fsync_ns) {
      const auto elapsed = std::chrono::steady_clock::now() - start;
      *fsync_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
    }
  }
  ++appended_;
}

EpochJournal::ReplayResult EpochJournal::replay(const std::string& path) {
  ReplayResult result;
  const auto bytes = read_file_bytes(path);
  if (!bytes) return result;  // no journal = empty journal
  const std::string& data = *bytes;

  std::size_t offset = 0;
  while (data.size() - offset >= kRecordHeaderBytes + kRecordCrcBytes) {
    if (get_u32(data.data() + offset) != kJournalMagic) break;
    const std::uint32_t payload_len = get_u32(data.data() + offset + 4);
    if (payload_len > kMaxJournalPayloadBytes) break;
    const std::size_t total =
        kRecordHeaderBytes + payload_len + kRecordCrcBytes;
    if (data.size() - offset < total) break;  // torn tail
    const std::uint32_t expected =
        get_u32(data.data() + offset + kRecordHeaderBytes + payload_len);
    const std::uint32_t computed =
        crc32(data.data() + offset + 4, kRecordHeaderBytes - 4 + payload_len);
    if (expected != computed) break;
    // Payload field lengths are internally consistent by construction; a
    // mismatch means corruption the CRC missed (astronomically unlikely) —
    // still reject rather than read out of bounds.
    if (payload_len < 4 * 8) break;
    const char* p = data.data() + offset + kRecordHeaderBytes;
    Record record;
    record.site_id = get_u64(p);
    record.epoch = get_u64(p + 8);
    record.updates = get_u64(p + 16);
    const std::uint64_t blob_len = get_u64(p + 24);
    if (blob_len != payload_len - 4 * 8) break;
    record.sketch_blob.assign(p + 32, blob_len);
    result.records.push_back(std::move(record));
    offset += total;
  }
  result.valid_bytes = offset;
  result.truncated_tail = offset != data.size();
  return result;
}

}  // namespace dcs::service
