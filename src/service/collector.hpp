// Collector daemon: the central detector of the paper's distributed
// deployment. Accepts any number of site-agent connections, merges their
// per-epoch DistinctCountSketch deltas into one global TrackingDcs (sketch
// linearity makes the merge order irrelevant), and runs the EWMA baseline
// detector over the merged top-k after every merge.
//
// Fault model:
//   * Site churn never blocks queries — connection handling and the merged
//     state live behind separate synchronization; a site dying mid-frame
//     just ends that connection's thread.
//   * At-least-once delta delivery: a site retransmits un-acked epochs
//     after reconnecting; the collector dedups by per-site last-merged
//     epoch, so every epoch is merged exactly once.
//   * Degraded-mode visibility: epoch-sequence gaps (spool overflow at the
//     site, agent restart) are counted per site and exported via obs.
//   * A malformed or malicious frame (bad magic/CRC/length, garbage sketch
//     blob) tears down only its own connection; the merged view is
//     untouched because validation happens before any merge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "detection/baseline_detector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/tracking_dcs.hpp"

namespace dcs::service {

struct CollectorConfig {
  /// Sketch parameters every site must match (fingerprint-checked at Hello).
  DcsParams params;
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Collector::port().
  std::uint16_t port = 0;
  /// Run detection over the merged top-k after each delta merge.
  bool run_detection = true;
  BaselineDetectorConfig detection;
  std::size_t detection_top_k = 10;
  /// Poll/IO granularity; bounds stop() latency, not protocol timing.
  int io_timeout_ms = 250;
};

class Collector {
 public:
  /// Per-site accounting, exposed for tests and operators.
  struct SiteStats {
    std::uint64_t site_id = 0;
    std::uint64_t last_epoch = 0;      ///< Highest epoch merged.
    std::uint64_t epochs_merged = 0;
    std::uint64_t updates_merged = 0;  ///< Flow updates the deltas summarize.
    /// Epochs missing from the sequence (site spool overflow or restart)
    /// plus drops the site itself reported — the degraded-mode ledger.
    std::uint64_t dropped_epochs = 0;
    std::uint64_t duplicate_deltas = 0;
    bool connected = false;
  };

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t frame_errors = 0;
    std::uint64_t deltas_merged = 0;
    std::uint64_t duplicate_deltas = 0;
    std::uint64_t dropped_epochs = 0;
    std::uint64_t rejected_hellos = 0;
    std::uint64_t byes = 0;
    std::size_t connected_sites = 0;
  };

  explicit Collector(CollectorConfig config);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Bind + start the accept loop. Throws std::runtime_error if the bind
  /// fails. Idempotent until stop().
  void start();
  /// Stop accepting, close all connections, join all threads. Merged state
  /// remains queryable after stop().
  void stop();

  bool running() const;
  std::uint16_t port() const;

  // --- queries over the merged view (safe during site churn) ---------------
  TopKResult top_k(std::size_t k) const;
  std::uint64_t estimate_frequency(Addr group) const;
  /// Copy of the merged basic sketch (for equality checks against a
  /// reference sketch in tests).
  DistinctCountSketch merged_sketch() const;
  std::vector<Alert> alerts() const;
  std::size_t active_alarm_count() const;

  Stats stats() const;
  std::vector<SiteStats> site_stats() const;

  // --- test/tool synchronization -------------------------------------------
  /// Block until `count` deltas have been merged (or timeout). Returns the
  /// condition's truth at exit.
  bool wait_for_deltas(std::uint64_t count, int timeout_ms) const;
  /// Block until `count` Bye messages have arrived (or timeout).
  bool wait_for_byes(std::uint64_t count, int timeout_ms) const;

 private:
  struct Connection;

  void accept_loop();
  void serve(std::shared_ptr<Connection> conn);
  /// Handle one decoded frame; returns the ack to send (empty = none).
  std::string handle_frame(Connection& conn, MsgType type,
                           const std::string& payload);
  std::string handle_delta(Connection& conn, const std::string& payload);

  CollectorConfig config_;

  TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  /// Connection threads, joined on stop(). Guarded by conn_mutex_.
  mutable std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  /// Everything below is the merged/detection state, guarded by one mutex:
  /// merges are rare (per epoch per site) and queries are cheap, so a
  /// single lock keeps the invariant "detector observed every merge"
  /// trivially true.
  mutable std::mutex state_mutex_;
  mutable std::condition_variable state_cv_;
  TrackingDcs merged_;
  BaselineDetector detector_;
  std::map<std::uint64_t, SiteStats> sites_;
  Stats totals_;
};

}  // namespace dcs::service
