// Collector daemon: the central detector of the paper's distributed
// deployment. Accepts any number of site-agent connections, merges their
// per-epoch DistinctCountSketch deltas into one global TrackingDcs (sketch
// linearity makes the merge order irrelevant), and runs the EWMA baseline
// detector over the merged top-k after every merge.
//
// Fault model:
//   * Site churn never blocks queries — connection handling and the merged
//     state live behind separate synchronization; a site dying mid-frame
//     just ends that connection's thread.
//   * At-least-once delta delivery: a site retransmits un-acked epochs
//     after reconnecting; the collector dedups by per-site last-merged
//     epoch, so every epoch is merged exactly once.
//   * Degraded-mode visibility: epoch-sequence gaps (spool overflow at the
//     site, agent restart) are counted per site and exported via obs.
//   * A malformed or malicious frame (bad magic/CRC/length, garbage sketch
//     blob) tears down only its own connection; the merged view is
//     untouched because validation happens before any merge.
//   * Crash safety (state_dir set): every merged delta is journaled and
//     fsync'd *before* it is acked, and the full merged state (sketch +
//     per-site watermarks + detector baselines) is checkpointed atomically
//     every checkpoint_every merges. A restarted collector loads the newest
//     valid checkpoint (falling back a generation on corruption), replays
//     the journal, and resumes acking — the recovered counters are
//     bit-identical to an uninterrupted run's by sketch linearity. See
//     checkpoint.hpp / epoch_journal.hpp.
//   * Overload protection (see admission.hpp): per-connection frame
//     deadlines kill slow-loris peers that dribble a frame forever, an idle
//     timeout reaps silent connections (live agents heartbeat well inside
//     it), a receive-side frame cap bounds what one peer can make us
//     buffer, and an admission controller bounds total in-flight delta
//     bytes + per-site delta rate. Sheds are honest: the site gets
//     Ack{kRetryLater, retry_after_ms} and re-ships from its spool later,
//     so overload degrades latency, never exactly-once delivery.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "detection/baseline_detector.hpp"
#include "obs/trace.hpp"
#include "service/admission.hpp"
#include "service/checkpoint.hpp"
#include "service/epoch_journal.hpp"
#include "service/federation/shard_map.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/tracking_dcs.hpp"

namespace dcs::service {

/// One internally consistent view of everything the query tier publishes:
/// the durable checkpoint container (sketch + watermarks + detector blob)
/// plus the detection outputs and precomputed answers that only exist in
/// memory. Captured under a single state-lock acquisition so every field
/// describes the same merged moment.
struct QueryPublishState {
  /// generation is left 0 — the publisher numbers its own generations.
  CheckpointState checkpoint;
  std::vector<Alert> alerts;
  std::size_t active_alarms = 0;
  /// Top-k at the requested k, computed from the same merged state.
  TopKResult top_k;
  std::uint64_t distinct_pairs = 0;
  /// Highest epoch merged across all sites — the snapshot's watermark.
  std::uint64_t epoch_watermark = 0;
  std::uint64_t deltas_merged = 0;
};

struct CollectorConfig {
  /// Sketch parameters every site must match (fingerprint-checked at Hello).
  DcsParams params;
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Collector::port().
  std::uint16_t port = 0;
  /// Run detection over the merged top-k after each delta merge.
  bool run_detection = true;
  BaselineDetectorConfig detection;
  std::size_t detection_top_k = 10;
  /// Poll/IO granularity; bounds stop() latency, not protocol timing.
  int io_timeout_ms = 250;

  // --- durability (see checkpoint.hpp) --------------------------------------
  /// Directory for checkpoints + the epoch journal. Empty disables
  /// durability: a crash then loses all merged state (the pre-PR-4
  /// behaviour).
  std::string state_dir;
  /// Write a checkpoint after this many delta merges since the last one.
  std::uint64_t checkpoint_every = 64;
  /// Checkpoint generations (plus journals) retained on disk; the default
  /// keeps the newest two so corruption fallback always has a complete
  /// previous generation. Must be >= 1.
  std::uint64_t checkpoint_retain = 2;
  /// fsync the journal on every append, making "acked" imply "durable".
  /// Turning this off trades the crash guarantee for merge latency: a crash
  /// may lose the journal tail, and the sites that were acked for those
  /// epochs will not retransmit them.
  bool journal_fsync = true;

  // --- overload protection (see admission.hpp) ------------------------------
  /// In-flight byte budget + per-site rate limits. Defaults disable both
  /// (the pre-overload behaviour); tools enable them via flags.
  AdmissionConfig admission;
  /// A connection holding a partial frame older than this is dropped: the
  /// slow-loris defense. The clock starts when the first byte of a frame
  /// arrives and is NOT reset by later bytes, so dribbling one byte per
  /// poll cannot extend the deadline. 0 disables.
  int frame_deadline_ms = 5000;
  /// A connection with no traffic at all for this long is reaped. Healthy
  /// agents heartbeat every ~500 ms even when idle, so anything quiet this
  /// long is dead or hostile. 0 disables.
  int idle_timeout_ms = 15000;
  /// Receive-side per-frame payload cap, clamped to kMaxPayloadBytes;
  /// 0 keeps the protocol-wide cap. Bounds per-connection buffering under
  /// oversized-frame abuse (an announced length above the cap kills the
  /// connection before the payload is buffered).
  std::uint32_t max_frame_bytes = 0;

  // --- tracing (see obs/trace.hpp) ------------------------------------------
  /// Epoch traces retained for the ops plane's /traces endpoint.
  std::size_t trace_capacity = 256;

  // --- federation (see federation/shard_map.hpp, docs/FEDERATION.md) --------
  /// Non-zero makes this collector a *leaf* with that id: with a shard map
  /// set, Hellos and deltas for sites the map assigns to another leaf are
  /// answered kWrongShard (with the map attached) so the agent re-homes,
  /// and hello acks push the map to peers holding a stale version. Leaf
  /// ids must not collide with site ids — at the root both share the
  /// per-site accounting namespace.
  std::uint64_t leaf_id = 0;
  /// Shard map served and enforced at start (empty = unsharded). Reshards
  /// arrive later via Collector::set_shard_map.
  ShardMap shard_map;
  /// Root mode: accept role=kLeaf connections whose deltas carry *origin*
  /// site ids, and dedup per (origin site, epoch) with gap filling — after
  /// a leaf kill + reshard, one site's epochs arrive out of order across
  /// the old leaf's drained journal and the new leaf's live relay, and
  /// each must merge exactly once regardless of arrival order.
  bool federation_root = false;
  /// Leaf uplink tap: called under the state lock with every accepted
  /// delta *before* it is journaled/merged (and with replay=true for each
  /// journal record re-merged during recovery). Returning false sheds the
  /// delta with an honest kRetryLater NACK — uplink backpressure
  /// propagates to the agent's spool instead of dropping relays.
  std::function<bool(std::uint64_t site_id, std::uint64_t epoch,
                     std::uint64_t updates, const std::string& sketch_blob,
                     bool replay)>
      delta_tap;
  /// retry_after_ms hint on a tap shed (uplink spool full).
  std::uint32_t tap_retry_after_ms = 50;
  /// Checkpoint gate: when set and returning false, checkpoint rotation is
  /// skipped and the journal keeps growing. A leaf points this at "uplink
  /// spool drained" — the journal is the uplink's crash-replay source, so
  /// folding it into a checkpoint before every record is root-acked would
  /// orphan un-relayed deltas.
  std::function<bool()> checkpoint_gate;

  // --- ingest path (see reactor.hpp) ----------------------------------------
  /// Serve connections from the epoll reactor instead of one thread per
  /// connection. Every protocol invariant (dedup, admission, deadlines,
  /// journal-before-ack, tracing) is identical — both paths call the same
  /// frame handler — but the reactor scales to 10k+ concurrent agents
  /// where the threaded path tops out at thread-count scale. The threaded
  /// path remains the differential-testing oracle.
  bool use_reactor = false;
  /// Epoll workers when use_reactor is set (worker 0 also accepts).
  int reactor_workers = 2;
};

class Reactor;

class Collector {
 public:
  /// Per-site accounting, exposed for tests and operators.
  struct SiteStats {
    std::uint64_t site_id = 0;
    std::uint64_t last_epoch = 0;      ///< Highest epoch merged.
    std::uint64_t epochs_merged = 0;
    std::uint64_t updates_merged = 0;  ///< Flow updates the deltas summarize.
    /// Epochs missing from the sequence (site spool overflow or restart)
    /// plus drops the site itself reported — the degraded-mode ledger.
    std::uint64_t dropped_epochs = 0;
    std::uint64_t duplicate_deltas = 0;
    /// Deltas NACKed kRetryLater for this site (admission sheds).
    std::uint64_t shed_deltas = 0;
    /// Seal stamp of the newest merged delta (0 = v2 site, no stamps) and
    /// its end-to-end freshness at detector evaluation — the per-site view
    /// of the detection-freshness SLO, served on /sites.
    std::uint64_t last_seal_unix_ns = 0;
    std::uint64_t last_freshness_ns = 0;
    bool connected = false;
  };

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t frame_errors = 0;
    std::uint64_t deltas_merged = 0;
    std::uint64_t duplicate_deltas = 0;
    std::uint64_t dropped_epochs = 0;
    std::uint64_t rejected_hellos = 0;
    std::uint64_t byes = 0;
    std::size_t connected_sites = 0;
    // --- durability/recovery ledger (all zero when state_dir is empty) ------
    std::uint64_t journal_records = 0;     ///< Appends this process lifetime.
    std::uint64_t checkpoints_written = 0;
    std::uint64_t recoveries = 0;          ///< 1 if this start restored state.
    std::uint64_t corrupt_generations_skipped = 0;
    std::uint64_t replayed_epochs = 0;     ///< Journal records re-merged.
    std::uint64_t replay_deduped = 0;      ///< Journal records below watermark.
    /// Re-shipped pre-crash epochs acked-but-not-merged after recovery: the
    /// double-merge oracle — recovery is exactly-once iff the merged sketch
    /// equals the reference while this only ever counts dedups.
    std::uint64_t post_recovery_duplicates = 0;
    // --- overload ledger ------------------------------------------------------
    /// Deltas NACKed kRetryLater by admission control (not merged, not lost:
    /// the site re-ships them).
    std::uint64_t shed_deltas = 0;
    std::uint64_t shed_bytes = 0;
    /// Connections dropped for holding a partial frame past frame_deadline_ms.
    std::uint64_t deadline_drops = 0;
    /// Connections reaped after idle_timeout_ms of silence.
    std::uint64_t idle_reaped = 0;
    // --- federation ledger (see docs/FEDERATION.md) --------------------------
    /// Hellos/deltas answered kWrongShard (re-home churn under reshard).
    std::uint64_t wrong_shard_acks = 0;
    /// set_shard_map calls accepted (map-version bumps observed).
    std::uint64_t reshards = 0;
    /// Root mode: out-of-order epochs merged into a previously recorded
    /// gap — each one is an epoch that would have been lost (or double
    /// merged) without gap-filling dedup.
    std::uint64_t gap_fills = 0;
    /// Root mode: epochs below a site's watermark still awaited (sum over
    /// sites; drains to 0 once every leaf journal is re-forwarded).
    std::uint64_t pending_gap_epochs = 0;
    /// Deltas accepted from role=kLeaf uplink connections.
    std::uint64_t relayed_deltas = 0;
    /// Deltas NACKed kRetryLater because the leaf uplink spool was full
    /// (backpressure, not loss: the agent re-ships).
    std::uint64_t tap_shed_deltas = 0;
  };

  explicit Collector(CollectorConfig config);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Bind + start the accept loop. Throws std::runtime_error if the bind
  /// fails. Idempotent until stop().
  void start();
  /// Stop accepting, close all connections, join all threads. Merged state
  /// remains queryable after stop().
  void stop();

  bool running() const;
  std::uint16_t port() const;

  // --- queries over the merged view (safe during site churn) ---------------
  TopKResult top_k(std::size_t k) const;
  std::uint64_t estimate_frequency(Addr group) const;
  /// Copy of the merged basic sketch (for equality checks against a
  /// reference sketch in tests).
  DistinctCountSketch merged_sketch() const;
  std::vector<Alert> alerts() const;
  std::size_t active_alarm_count() const;

  Stats stats() const;
  std::vector<SiteStats> site_stats() const;

  /// Everything a query-tier snapshot needs, captured atomically under one
  /// lock acquisition (see QueryPublishState). `top_k` sizes the
  /// precomputed ranking baked into the snapshot.
  QueryPublishState query_publish_state(std::size_t top_k) const;

  /// Collector-side epoch traces (full lifecycle for v3 sites), newest
  /// last. Reads the lock-free ring — safe during ingest.
  std::vector<obs::EpochTrace> traces() const { return trace_ring_.snapshot(); }

  /// Live entries in the connection table (reaped/done ones excluded).
  /// Overload tests assert this shrinks after deadline/idle drops.
  std::size_t connection_count() const;
  /// Delta bytes admitted but not yet merged+released — the shipping-path
  /// RSS proxy the chaos harness asserts stays under the admission budget.
  std::uint64_t inflight_bytes() const;

  // --- federation ------------------------------------------------------------
  /// Install a newer shard map (a reshard). Throws std::invalid_argument
  /// on an empty map or a version at or below the current one — a delayed
  /// push can never roll the collector back onto a stale topology. The new
  /// map takes effect on the next Hello/delta: sites that moved away get
  /// kWrongShard (+ the map) and re-home. Thread-safe.
  void set_shard_map(const ShardMap& map);
  /// Copy of the map currently served/enforced (empty when unsharded).
  ShardMap shard_map() const;

  // --- durability ------------------------------------------------------------
  /// Force a checkpoint now (instead of waiting for checkpoint_every).
  /// Returns false when durability is disabled. Thread-safe.
  bool checkpoint_now();
  /// Generation of the newest durable checkpoint (0 = none yet).
  std::uint64_t checkpoint_generation() const;

  // --- test/tool synchronization -------------------------------------------
  /// Block until `count` deltas have been merged (or timeout). Returns the
  /// condition's truth at exit.
  bool wait_for_deltas(std::uint64_t count, int timeout_ms) const;
  /// Block until `count` Bye messages have arrived (or timeout).
  bool wait_for_byes(std::uint64_t count, int timeout_ms) const;

 private:
  struct Connection;
  /// FrameHandler adapter the reactor calls into; defined in collector.cpp.
  class ReactorSink;

  void accept_loop();
  void serve(std::shared_ptr<Connection> conn);
  /// Handle one decoded frame; returns the ack to send (empty = none).
  /// `version` is the frame's wire version — replies are framed at it.
  /// Takes the transport-agnostic PeerState so the threaded loop and the
  /// reactor drive the identical protocol logic.
  std::string handle_frame(PeerState& peer, MsgType type,
                           std::uint8_t version, const std::string& payload);
  std::string handle_delta(PeerState& peer, std::uint8_t version,
                           const std::string& payload);
  /// serve()/reactor common exit path: mark the peer's site disconnected.
  void note_disconnect(const PeerState& peer);

  /// True when (site, epoch) was already merged. Caller holds state_mutex_.
  /// Root mode consults the pending-gap set: an epoch below the watermark
  /// that fills a recorded gap is NEW, not a duplicate.
  bool already_merged_locked(const SiteStats& site, std::uint64_t epoch) const;
  /// Build a kWrongShard ack carrying the current map (v4 peers only).
  /// Caller holds state_mutex_.
  std::string wrong_shard_ack_locked(const PeerState& peer,
                                     std::uint64_t epoch);
  /// Merge one validated delta into the global state and run detection.
  /// Caller holds state_mutex_. Shared by the live path and journal replay;
  /// `trace` (nullable — replay passes nullptr) receives the merged /
  /// detector-evaluated stamps and the freshness measurement.
  void merge_delta_locked(std::uint64_t site_id, std::uint64_t epoch,
                          std::uint64_t updates,
                          const DistinctCountSketch& sketch,
                          obs::EpochTrace* trace);
  /// Load newest valid checkpoint + replay journals; called from the ctor
  /// when state_dir is configured. Ends by writing a fresh checkpoint so
  /// the recovered state is itself durable and the journal starts clean.
  void recover();
  /// Write checkpoint generation_+1, rotate the journal, prune old
  /// generations. Caller holds state_mutex_.
  void write_checkpoint_locked();
  /// Snapshot the merged state into a CheckpointState (generation unset).
  /// Caller holds state_mutex_. Shared by the durable checkpoint path and
  /// the query-tier publisher.
  CheckpointState build_checkpoint_state_locked() const;

  CollectorConfig config_;
  AdmissionController admission_;

  TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  /// Reactor-mode ingest (config_.use_reactor); null in threaded mode.
  std::unique_ptr<ReactorSink> reactor_sink_;
  std::unique_ptr<Reactor> reactor_;

  /// Connection threads, joined on stop(). Guarded by conn_mutex_.
  mutable std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  /// Everything below is the merged/detection state, guarded by one mutex:
  /// merges are rare (per epoch per site) and queries are cheap, so a
  /// single lock keeps the invariant "detector observed every merge"
  /// trivially true.
  mutable std::mutex state_mutex_;
  mutable std::condition_variable state_cv_;
  TrackingDcs merged_;
  BaselineDetector detector_;
  std::map<std::uint64_t, SiteStats> sites_;
  Stats totals_;

  /// Current shard map (empty = unsharded); replaced only by a strictly
  /// newer version via set_shard_map. Guarded by state_mutex_.
  ShardMap shard_map_;
  /// Root mode: per origin site, epochs below the watermark not merged yet
  /// (recorded when a newer epoch arrives first, erased on gap fill).
  /// Guarded by state_mutex_. Deliberately NOT checkpointed: a root
  /// restart forgets pending gaps and dedups late fills as duplicates, so
  /// operators drain leaves before restarting a root (docs/FEDERATION.md).
  std::map<std::uint64_t, std::set<std::uint64_t>> gap_epochs_;

  /// Durability state, guarded by state_mutex_ (journal appends and
  /// checkpoint writes happen inside the merge critical section — the fsync
  /// cost is the price of "acked implies durable").
  std::unique_ptr<CheckpointStore> store_;
  EpochJournal journal_;
  std::uint64_t generation_ = 0;            ///< Newest durable checkpoint.
  std::uint64_t deltas_since_checkpoint_ = 0;
  /// Per-site watermark at recovery time: duplicates at or below it are
  /// re-shipped pre-crash epochs (counted as post_recovery_duplicates).
  std::map<std::uint64_t, std::uint64_t> recovered_watermarks_;

  /// Last N merged-epoch traces; written by connection threads (wait-free),
  /// read by the ops plane without touching state_mutex_.
  obs::TraceRing trace_ring_;
};

}  // namespace dcs::service
