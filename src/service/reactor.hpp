// Event-driven ingest front end for the collector: one non-blocking
// acceptor plus a small epoll worker pool, replacing the thread-per-
// connection loop that capped concurrent agents at thread-count scale
// (ROADMAP item 2 — the ingest bottleneck on the road to "millions of
// sites").
//
// Shape. Each worker owns an epoll instance, an eventfd for cross-thread
// wakeups, and a private connection table — a connection lives on exactly
// one worker for its whole life, so per-connection state (decoder buffer,
// out-buffer, deadline clocks) is never shared between threads. Worker 0
// additionally owns the listening socket: it drains accept(2) until EAGAIN
// on every listener wakeup and deals new connections round-robin across the
// pool (handing a socket to another worker via its pending queue +
// eventfd).
//
// Frame reassembly. Sockets are non-blocking; a read wakeup drains
// recv(2) until EAGAIN, feeding every chunk into that connection's
// FrameDecoder. The decoder already reassembles frames across arbitrary
// chunk boundaries — one byte per wakeup, a header split mid-field, or
// fifty coalesced frames in one read all produce the same frame sequence —
// so the reactor's state machine is exactly the threaded path's, minus the
// thread.
//
// Replies. Handler replies append to a per-connection out-buffer flushed
// with send_some(); a partial write (peer not draining) arms EPOLLOUT and
// the flush resumes when the socket drains. A peer that stops reading while
// we owe it acks is bounded by kMaxOutBufferBytes and then dropped — the
// reply-side analogue of the receive-side frame cap.
//
// Overload invariants carried over from the threaded path (see
// collector.hpp): the frame deadline starts at the first byte of a partial
// frame and is NOT refreshed by later bytes (slow-loris defense), the idle
// timeout reaps silent connections, and both are swept per epoll tick so a
// peer that never triggers another wakeup still dies on time. A WireError
// from the decoder or the handler tears down only its own connection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/socket.hpp"
#include "service/wire.hpp"

namespace dcs::service {

/// A reply-starved peer (sends frames, never reads acks) may buffer this
/// many un-flushed reply bytes before it is dropped. Acks are ~30 bytes, so
/// this is tens of thousands of outstanding replies — only an abusive or
/// dead peer gets near it.
constexpr std::size_t kMaxOutBufferBytes = 1u << 20;

struct ReactorConfig {
  /// Epoll workers. Worker 0 also runs the acceptor. Must be >= 1.
  int workers = 2;
  /// Epoll wait timeout and deadline/idle sweep granularity; bounds stop()
  /// latency and deadline enforcement slack, not protocol timing.
  int tick_ms = 50;
  /// Same semantics as CollectorConfig::frame_deadline_ms (non-refreshing,
  /// from the first byte of a partial frame). 0 disables.
  int frame_deadline_ms = 5000;
  /// Same semantics as CollectorConfig::idle_timeout_ms. 0 disables.
  int idle_timeout_ms = 15000;
  /// Per-frame payload cap forwarded to each connection's FrameDecoder;
  /// 0 keeps the protocol-wide kMaxPayloadBytes.
  std::uint32_t max_frame_bytes = 0;
};

/// What the reactor calls back into. The collector implements this over the
/// same handle_frame() the threaded path uses — the handler cannot tell
/// which transport delivered a frame, which is what makes the two ingest
/// paths provably equivalent.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// One complete, CRC-valid frame. Returns the reply bytes to queue
  /// (empty = no reply). Throwing WireError drops this peer only.
  virtual std::string on_frame(PeerState& peer, MsgType type,
                               std::uint8_t version,
                               const std::string& payload) = 0;
  /// The connection is going away (peer close, error, deadline, idle reap,
  /// or reactor shutdown). Called exactly once per connection, on the
  /// worker that owned it (or the stopping thread during shutdown).
  virtual void on_disconnect(PeerState& peer) = 0;
  /// Malformed frame or payload (WireError); fires before on_disconnect.
  virtual void on_frame_error() = 0;
  /// Partial frame outlived frame_deadline_ms; fires before on_disconnect.
  virtual void on_deadline_drop() = 0;
  /// No traffic for idle_timeout_ms; fires before on_disconnect.
  virtual void on_idle_reap() = 0;
};

class Reactor {
 public:
  /// The handler must outlive the reactor.
  Reactor(ReactorConfig config, FrameHandler& handler);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spin up the worker pool over an already-listening socket. The caller
  /// retains ownership of the listener (and closes it after stop()); it
  /// must already be non-blocking. Throws std::runtime_error if epoll
  /// setup fails. Idempotent until stop().
  void start(TcpListener& listener);
  /// Drain and join every worker; on_disconnect fires for each connection
  /// still open. The listener is deregistered but left open.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Live connections across all workers.
  std::size_t connection_count() const noexcept {
    return connections_.load(std::memory_order_acquire);
  }

 private:
  struct Conn;
  struct Worker;

  void worker_loop(Worker& worker);
  void accept_ready(Worker& worker);
  void adopt(Worker& worker, TcpSocket socket);
  /// Read-drain + frame dispatch; returns false when the connection must
  /// be dropped.
  bool read_ready(Worker& worker, Conn& conn);
  /// Flush the out-buffer; arms/disarms EPOLLOUT. False = drop.
  bool flush_out(Worker& worker, Conn& conn);
  void sweep_deadlines(Worker& worker);
  void drop(Worker& worker, int fd, Conn& conn);
  void update_interest(Worker& worker, Conn& conn);

  ReactorConfig config_;
  FrameHandler& handler_;
  TcpListener* listener_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> connections_{0};
  /// Round-robin dealing cursor (acceptor-thread only).
  std::size_t next_worker_ = 0;
};

}  // namespace dcs::service
