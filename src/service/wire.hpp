// Wire protocol for sketch shipping (src/service).
//
// The paper's deployment (Fig. 1) is distributed: per-router monitors
// observe flow updates locally; a central detector needs the *global*
// distinct-source counts. Because the DCS is linear, a site never ships raw
// flow updates — it ships its per-epoch sketch delta (a few hundred KiB at
// most, independent of traffic volume) and the collector adds counters.
//
// Framing. Every message travels in one CRC-framed, length-prefixed frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic 0x57534344 ("DCSW"), little-endian
//        4     1  protocol version (kWireVersion)
//        5     1  message type (MsgType)
//        6     4  payload length in bytes (<= kMaxPayloadBytes)
//       10     n  payload (message-specific, see below)
//    10 + n     4  CRC-32 over bytes [4, 10 + n) — version, type,
//                  length and payload; the magic is covered by the
//                  equality check itself
//
// A receiver rejects bad magic, unknown version/type, oversized length and
// CRC mismatch with WireError *before* interpreting any payload byte, so a
// malformed or malicious peer can tear down its own connection but never
// corrupt collector state. Sketch payloads additionally carry the
// common/serialize CRC footer — integrity is checked end to end, not just
// per hop.
//
// Messages (all integers little-endian, encoded via common/serialize):
//   Hello          site -> collector, once per connection. Carries the site
//                  id, the DcsParams fingerprint (mergeability check), the
//                  epoch size and the resume epoch. Acked (epoch = 0).
//   SnapshotDelta  site -> collector. One epoch's sketch delta. Acked with
//                  the epoch number; the site keeps the delta spooled until
//                  the ack arrives, so a connection drop never loses an
//                  epoch silently.
//   Heartbeat      site -> collector, when idle. Liveness + degraded-mode
//                  accounting (spool depth, epochs dropped so far).
//   Ack            collector -> site. Status for a Hello or SnapshotDelta.
//                  Carries the resume watermark (Hello) or the acked epoch
//                  (SnapshotDelta), plus a retry_after_ms hint when the
//                  collector sheds a delta under overload (kRetryLater).
//   Bye            site -> collector. Clean end of stream.
//
// Version history:
//   v1  Hello/SnapshotDelta/Heartbeat/Ack/Bye; Ack = {epoch, status}.
//   v2  Ack gained retry_after_ms and AckStatus::kRetryLater — the overload
//       admission controller's honest NACK (shed, not silently dropped).
//   v3  Epoch lifecycle tracing. SnapshotDelta carries four u64 origin
//       timestamps (seal wall clock, seal agent-steady clock, spool time,
//       ship time) so the collector can measure end-to-end detection
//       freshness; a v3 collector additionally acks Heartbeat frames
//       (epoch = 0) so agents can measure round-trip time from frames
//       already exchanged. The Ack payload is unchanged from v2.
//   v4  Federation (docs/FEDERATION.md). Hello gained role (site agent vs
//       leaf-collector uplink) and map_version (the shard-map version the
//       peer currently holds); Ack gained map_version and map_blob, so a
//       collector can push its current ShardMap to a stale peer inside the
//       ack stream — no side channel, no extra round trip. AckStatus
//       gained kWrongShard: "this site hashes to another leaf under the
//       current map"; the attached map tells the agent where to re-home
//       without losing its spool. On role = leaf connections the delta
//       site_id is the *origin* site, not the Hello site_id — a leaf
//       relays many sites over one multiplexed uplink.
//
// Version negotiation. A receiver accepts any version in
// [kMinWireVersion, kWireVersion] and each frame carries the version its
// payload was encoded at (Frame::version). A peer replies at
// min(kWireVersion, version-the-peer-spoke): a v4 collector answers a v2
// Hello with v2-framed Acks and never acks that connection's Heartbeats;
// a v4 agent that receives a v2-framed Hello ack encodes its deltas as v2
// (no timestamps) and does not wait for Heartbeat acks. v4 payload fields
// (Hello role/map_version, Ack map fields) are appended and version-gated,
// so a v3 peer never sees them and a v4 peer decodes v3 payloads with the
// pre-federation defaults. kWrongShard is only ever sent to v4 peers — a
// downlevel site cannot re-home, so a sharded leaf answers it kRejected.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/serialize.hpp"

namespace dcs::service {

constexpr std::uint32_t kWireMagic = 0x57534344;  // "DCSW"
constexpr std::uint8_t kWireVersion = 4;
/// Oldest version still decoded. v1 is gone: its Ack payload predates the
/// retry_after_ms field and silent-drop semantics the collector relies on.
constexpr std::uint8_t kMinWireVersion = 2;
/// Sketch deltas are ~r*s*65*8 bytes per allocated level (~1.6 MiB at
/// r=3, s=1024, 8 levels); 64 MiB leaves generous headroom while bounding
/// what a garbage length prefix can make a receiver buffer.
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
constexpr std::size_t kFrameHeaderBytes = 10;
constexpr std::size_t kFrameCrcBytes = 4;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kSnapshotDelta = 2,
  kHeartbeat = 3,
  kAck = 4,
  kBye = 5,
};

/// Thrown on malformed frames and payloads. Subtype of SerializeError so
/// transport and payload corruption surface through one catch.
class WireError : public SerializeError {
 public:
  using SerializeError::SerializeError;
};

/// What a connection is (wire v4, Hello::role). Site agents ship their own
/// epochs; a leaf uplink relays deltas for every site its shard owns over
/// one multiplexed connection to the root.
enum class PeerRole : std::uint8_t {
  kSite = 0,
  kLeaf = 1,
};

struct Frame {
  MsgType type = MsgType::kHello;
  /// Version byte the sender framed this payload at; payload decoders that
  /// changed shape across versions (SnapshotDelta) branch on it.
  std::uint8_t version = kWireVersion;
  std::string payload;
};

/// Assemble one frame (header + payload + CRC) ready to send. `version`
/// must be in [kMinWireVersion, kWireVersion]; pass the negotiated peer
/// version when answering a downlevel site.
std::string encode_frame(MsgType type, std::string_view payload,
                         std::uint8_t version = kWireVersion);

/// Incremental frame parser for a TCP byte stream. feed() appends received
/// bytes; next() pops the first complete frame, returns std::nullopt when
/// more bytes are needed, and throws WireError on malformed input (the
/// stream is unrecoverable after a throw — drop the connection).
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t size);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const noexcept { return buffer_.size(); }

  /// Lower the acceptable payload size below the protocol-wide
  /// kMaxPayloadBytes (values above it are clamped). A frame announcing a
  /// larger payload throws WireError from next() *before* any of it is
  /// buffered past the header — the receiver-side memory bound under
  /// oversized-frame abuse.
  void set_max_payload(std::uint32_t cap) noexcept {
    max_payload_ = cap < kMaxPayloadBytes ? cap : kMaxPayloadBytes;
  }
  std::uint32_t max_payload() const noexcept { return max_payload_; }

 private:
  std::string buffer_;
  std::uint32_t max_payload_ = kMaxPayloadBytes;
};

/// Per-connection protocol state shared by both collector ingest paths (the
/// thread-per-connection loop and the epoll reactor): who the peer claims to
/// be and what dialect the connection negotiated at Hello. Both transports
/// hand the same struct to the same frame handler, so the handler cannot
/// tell which path delivered a frame — the invariant the differential
/// equivalence tests rely on.
struct PeerState {
  /// Site id learned from the Hello; 0 until the handshake completes.
  /// On a role = kLeaf connection this is the *leaf id*, not a site id.
  std::uint64_t site_id = 0;
  /// Version negotiated at Hello: min(ours, the site's). Every reply on
  /// this connection is framed at it, and v3-only behaviour (heartbeat
  /// acks) is gated on it so a v2 site's ack stream never desyncs.
  std::uint8_t wire_version = kWireVersion;
  bool hello_ok = false;
  /// Connection role from the v4 Hello (kSite for v2/v3 peers). A kLeaf
  /// peer is another collector's uplink: its deltas carry origin site ids
  /// that differ from the Hello id, and shard-ownership checks don't apply.
  PeerRole role = PeerRole::kSite;
};

// --- message payloads ------------------------------------------------------

enum class AckStatus : std::uint8_t {
  kOk = 0,
  /// The epoch was already merged (a retransmit after reconnect); the site
  /// treats it as shipped.
  kDuplicate = 1,
  /// Parameter fingerprint mismatch or malformed payload; the site cannot
  /// usefully retry.
  kRejected = 2,
  /// Shed by the collector's overload admission control. The epoch was NOT
  /// merged; the site must keep it spooled and re-ship it no sooner than
  /// Ack::retry_after_ms from now. Principled shedding: the loss is
  /// negotiated, never silent.
  kRetryLater = 3,
  /// Wire v4 only. This site hashes to a different leaf under the
  /// collector's current shard map (sent for a Hello or a delta after a
  /// reshard). Nothing was merged; the ack carries the full map in
  /// Ack::map_blob so the agent can re-home — spool intact — without any
  /// out-of-band lookup. Never sent to v2/v3 peers (they get kRejected).
  kWrongShard = 4,
};

struct Hello {
  std::uint64_t site_id = 0;
  /// DcsParams::fingerprint() of the site's sketch parameters; the
  /// collector rejects a mismatch before any counters are merged.
  std::uint64_t params_fingerprint = 0;
  /// Updates per epoch at this site (informational; sites may differ).
  std::uint64_t epoch_updates = 0;
  /// First epoch this connection will ship (> 1 after an agent restart —
  /// the collector counts the gap as dropped epochs).
  std::uint64_t first_epoch = 1;
  /// Epochs this site has dropped on spool overflow so far (degraded-mode
  /// accounting survives reconnects).
  std::uint64_t dropped_epochs = 0;
  /// Wire v4: what this connection is (defaults to a site agent when
  /// decoded from a v2/v3 frame).
  PeerRole role = PeerRole::kSite;
  /// Wire v4: version of the shard map the peer currently holds (0 =
  /// none). When it trails the collector's map the Hello ack carries the
  /// current map in Ack::map_blob.
  std::uint32_t map_version = 0;

  /// Encode at `version`: v2/v3 omit role and map_version.
  std::string encode(std::uint8_t version = kWireVersion) const;
  static Hello decode(const std::string& payload,
                      std::uint8_t version = kWireVersion);
};

struct SnapshotDelta {
  std::uint64_t site_id = 0;
  /// 1-based epoch number, strictly increasing per site.
  std::uint64_t epoch = 0;
  /// Flow updates summarized by this delta (for collector accounting).
  std::uint64_t updates = 0;
  // Epoch origin timestamps (wire v3+; all zero when decoded from a v2
  // frame). Unix stamps are CLOCK_REALTIME nanoseconds so the collector
  // can subtract across processes; seal_steady_ns is the agent's monotonic
  // clock at seal, immune to wall-clock steps on the agent itself.
  std::uint64_t seal_unix_ns = 0;    ///< epoch sealed (serialize complete)
  std::uint64_t seal_steady_ns = 0;  ///< agent steady clock at seal
  std::uint64_t spool_unix_ns = 0;   ///< delta enqueued on the spool
  std::uint64_t ship_unix_ns = 0;    ///< stamped per send attempt
  /// DistinctCountSketch::serialize bytes (self-checksummed, v2 footer).
  std::string sketch_blob;

  /// Encode at `version`: v2 omits the four timestamp fields.
  std::string encode(std::uint8_t version = kWireVersion) const;
  static SnapshotDelta decode(const std::string& payload,
                              std::uint8_t version = kWireVersion);
};

struct Heartbeat {
  std::uint64_t site_id = 0;
  /// Epoch currently being accumulated at the site.
  std::uint64_t current_epoch = 0;
  std::uint64_t spooled_epochs = 0;
  std::uint64_t dropped_epochs = 0;

  std::string encode() const;
  static Heartbeat decode(const std::string& payload);
};

struct Ack {
  /// For a SnapshotDelta ack: the epoch being acknowledged. For a Hello
  /// ack: the collector's resume watermark — the highest epoch already
  /// durably merged for this site (0 = none); the agent prunes spooled
  /// epochs at or below it instead of re-shipping them after a collector
  /// restart (they would only be acked kDuplicate anyway).
  std::uint64_t epoch = 0;
  AckStatus status = AckStatus::kOk;
  /// Only meaningful with kRetryLater: the earliest the site may re-ship
  /// the shed epoch, in milliseconds from receipt. 0 otherwise.
  std::uint32_t retry_after_ms = 0;
  /// Wire v4: the collector's current shard-map version (0 = unsharded).
  /// Lets an agent notice a reshard from any ack without polling.
  std::uint32_t map_version = 0;
  /// Wire v4: ShardMap::encode() bytes, attached when the collector
  /// decides to push the map (a Hello from a peer with a stale
  /// map_version, or any kWrongShard). Empty otherwise — delta acks on the
  /// hot path stay small.
  std::string map_blob;

  /// Encode at `version`: v2/v3 omit map_version and map_blob.
  std::string encode(std::uint8_t version = kWireVersion) const;
  static Ack decode(const std::string& payload,
                    std::uint8_t version = kWireVersion);
};

struct Bye {
  std::uint64_t site_id = 0;

  std::string encode() const;
  static Bye decode(const std::string& payload);
};

}  // namespace dcs::service
