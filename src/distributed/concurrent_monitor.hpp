// Thread-safe ingest for multi-queue packet processors.
//
// A modern deployment of the DDoS monitor sits behind a multi-queue NIC or a
// sharded collector, with several threads delivering flow updates
// concurrently. Because the basic sketch is linear, we avoid a global lock:
// updates are striped by pair hash onto independent (mutex, sketch) stripes —
// the same decomposition ShardedMonitor uses across routers, applied across
// threads — and a query merges the stripes into one sketch under the stripe
// locks. All interleavings produce the same final counters as a serial run
// (update order is irrelevant to a linear structure), which the concurrency
// tests verify against a single-threaded reference.
//
// Two ingest modes:
//   * direct (queue_capacity == 0): update() takes its stripe's sketch lock
//     for every element — lowest latency to visibility, highest lock traffic;
//   * pipelined (queue_capacity > 0): update() appends to a per-stripe
//     bounded batch queue under a cheap queue mutex and the stripe's sketch
//     lock is taken once per full batch, applied via the prefetching
//     DistinctCountSketch::update_batch. flush() (and every snapshot) drains
//     the queues, so queries still observe everything enqueued before them.
// Bulk callers should prefer update_batch(), which partitions a caller-side
// block by stripe and takes each stripe lock exactly once regardless of mode.
//
// Queries are O(sketch size) because of the merge; this is the right
// trade-off for a monitor that queries every few thousand updates. For
// query-every-update workloads, use a single-threaded TrackingDcs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "obs/instruments.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class ConcurrentMonitor {
 public:
  /// `stripes` should be >= the number of writer threads to keep contention
  /// low; it does not affect the merged result. `queue_capacity` selects the
  /// ingest mode: 0 = direct (stripe lock per update), > 0 = pipelined
  /// (per-stripe batch queues of that many updates, stripe lock per batch).
  explicit ConcurrentMonitor(DcsParams params, std::size_t stripes,
                             std::size_t queue_capacity = 0);

  /// Thread-safe. Direct mode: locks exactly one stripe. Pipelined mode:
  /// enqueues under the stripe's queue mutex and applies a full batch at
  /// most once. Deltas are stored as FlowUpdate deltas (±1 stream elements).
  void update(Addr group, Addr member, int delta);

  /// Thread-safe bulk ingest: partition `updates` by stripe without locks,
  /// then apply each stripe's sub-batch under its lock exactly once via the
  /// batched sketch path. Bypasses the pending queues (no reordering hazard:
  /// the sketch is linear).
  void update_batch(std::span<const FlowUpdate> updates);

  /// Drain every stripe's pending queue into its sketch. Called implicitly
  /// by snapshot(); exposed so pipelined producers can bound staleness
  /// without paying for a merge.
  void flush();

  /// Merge all stripes into one sketch. Drains pending queues first, then
  /// acquires every stripe lock (fixed index order, same everywhere, so no
  /// deadlock) before merging: the result is a consistent cut — for every
  /// stripe, exactly the updates applied before one common point.
  DistinctCountSketch snapshot() const;

  /// Snapshot wrapped in tracking state, ready for top-k queries.
  TrackingDcs snapshot_tracking() const { return TrackingDcs(snapshot()); }

  /// Convenience: top-k over a fresh snapshot.
  TopKResult top_k(std::size_t k) const { return snapshot().top_k(k); }

  std::size_t num_stripes() const noexcept { return stripes_.size(); }
  std::size_t queue_capacity() const noexcept { return queue_capacity_; }
  /// Updates enqueued but not yet applied (pipelined mode; 0 in direct mode).
  std::size_t pending_updates() const;
  std::size_t memory_bytes() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;  // guards sketch
    DistinctCountSketch sketch;
    /// Pipelined-mode batch queue; guarded by queue_mutex, bounded by
    /// ConcurrentMonitor::queue_capacity_.
    mutable std::mutex queue_mutex;
    std::vector<FlowUpdate> pending;
    /// dcs_concurrent_updates_total{stripe=...}; the counter itself is
    /// atomic, so it is bumped outside the stripe lock.
    obs::Counter* updates;

    Stripe(const DcsParams& params, std::size_t index)
        : sketch(params),
          updates(&obs::DistributedMetrics::stripe_updates(index)) {}
  };

  /// Apply a ready batch to the stripe's sketch under its lock.
  void apply_batch(Stripe& stripe, std::span<const FlowUpdate> ready) const;
  /// Swap out and apply every stripe's pending queue.
  void drain_queues() const;

  std::vector<std::unique_ptr<Stripe>> stripes_;
  SeededHash route_;
  std::size_t queue_capacity_;
};

}  // namespace dcs
