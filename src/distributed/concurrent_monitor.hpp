// Thread-safe ingest for multi-queue packet processors.
//
// A modern deployment of the DDoS monitor sits behind a multi-queue NIC or a
// sharded collector, with several threads delivering flow updates
// concurrently. Because the basic sketch is linear, we avoid a global lock:
// updates are striped by pair hash onto independent (mutex, sketch) stripes —
// the same decomposition ShardedMonitor uses across routers, applied across
// threads — and a query merges the stripes into one sketch under the stripe
// locks. All interleavings produce the same final counters as a serial run
// (update order is irrelevant to a linear structure), which the concurrency
// tests verify against a single-threaded reference.
//
// Queries are O(sketch size) because of the merge; this is the right
// trade-off for a monitor that queries every few thousand updates. For
// query-every-update workloads, use a single-threaded TrackingDcs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.hpp"
#include "obs/instruments.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class ConcurrentMonitor {
 public:
  /// `stripes` should be >= the number of writer threads to keep contention
  /// low; it does not affect the merged result.
  ConcurrentMonitor(DcsParams params, std::size_t stripes);

  /// Thread-safe. Locks exactly one stripe.
  void update(Addr group, Addr member, int delta);

  /// Merge all stripes into one sketch (thread-safe snapshot).
  DistinctCountSketch snapshot() const;

  /// Snapshot wrapped in tracking state, ready for top-k queries.
  TrackingDcs snapshot_tracking() const { return TrackingDcs(snapshot()); }

  /// Convenience: top-k over a fresh snapshot.
  TopKResult top_k(std::size_t k) const { return snapshot().top_k(k); }

  std::size_t num_stripes() const noexcept { return stripes_.size(); }
  std::size_t memory_bytes() const;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    DistinctCountSketch sketch;
    /// dcs_concurrent_updates_total{stripe=...}; the counter itself is
    /// atomic, so it is bumped outside the stripe lock.
    obs::Counter* updates;

    Stripe(const DcsParams& params, std::size_t index)
        : sketch(params),
          updates(&obs::DistributedMetrics::stripe_updates(index)) {}
  };

  std::vector<std::unique_ptr<Stripe>> stripes_;
  SeededHash route_;
};

}  // namespace dcs
