// Distributed deployment of the Distinct-Count Sketch.
//
// A large ISP observes flow updates at many edge routers (paper Fig. 1, §2:
// "a collection of continuous streams of flow updates from various elements
// in the underlying ISP network"). Because the basic sketch is *linear* in
// the stream — every counter is a signed sum of per-update contributions — a
// collector can add up per-router sketches built with identical parameters
// and seeds and obtain exactly the sketch a single monitor would have built
// over the union stream. No coordination is needed; a pair may even be
// inserted at one router and deleted at another (asymmetric routing).
//
// ShardedMonitor simulates that deployment: per-router basic sketches (cheap
// updates, no tracking overhead at the edge), and a collect() step producing
// a queryable TrackingDcs at the center.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "obs/instruments.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class ShardedMonitor {
 public:
  /// `num_shards` simulated edge routers, all sharing `params` (and seed).
  ShardedMonitor(DcsParams params, std::size_t num_shards);

  /// Route an update to the shard that would observe this flow. Egress-flow
  /// monitoring pins a (source, dest) pair to one edge router; we model the
  /// routing table as a hash of the pair.
  void update(Addr group, Addr member, int delta);

  /// Deliver an update at an explicit router (tests exercise the asymmetric
  /// case where insert and delete arrive at different routers).
  void update_at(std::size_t shard, Addr group, Addr member, int delta);

  /// Collector: merge all router sketches into one network-wide view.
  DistinctCountSketch collect() const;

  /// Convenience: merged sketch wrapped in tracking state, ready to query.
  TrackingDcs collect_tracking() const { return TrackingDcs(collect()); }

  std::size_t num_shards() const noexcept { return shards_.size(); }
  const DistinctCountSketch& shard(std::size_t i) const { return shards_.at(i); }

  /// Total memory across all routers.
  std::size_t memory_bytes() const;

 private:
  std::vector<DistinctCountSketch> shards_;
  /// Per-shard dcs_sharded_updates_total counters, resolved once at
  /// construction so updates never touch the registry lock.
  std::vector<obs::Counter*> shard_counters_;
  SeededHash route_;
};

}  // namespace dcs
