#include "distributed/concurrent_monitor.hpp"

#include <stdexcept>
#include <utility>

namespace dcs {

ConcurrentMonitor::ConcurrentMonitor(DcsParams params, std::size_t stripes,
                                     std::size_t queue_capacity)
    : route_(mix64(params.seed ^ 0x57a1be5cULL)),
      queue_capacity_(queue_capacity) {
  if (stripes == 0)
    throw std::invalid_argument("ConcurrentMonitor: stripes >= 1");
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(params, i));
    if (queue_capacity_ > 0) stripes_.back()->pending.reserve(queue_capacity_);
  }
}

void ConcurrentMonitor::apply_batch(Stripe& stripe,
                                    std::span<const FlowUpdate> ready) const {
  if (ready.empty()) return;
  // Per-stripe telemetry is tallied here, once per batch, so the enqueue
  // fast path pays no atomic RMW per element.
  stripe.updates->inc(ready.size());
  if (obs::recording()) {
    auto& metrics = obs::DistributedMetrics::get();
    metrics.batch_applies.inc();
    metrics.batch_fill.observe(ready.size());
  }
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.sketch.update_batch(ready);
}

void ConcurrentMonitor::update(Addr group, Addr member, int delta) {
  const PairKey key = pack_pair(group, member);
  const std::size_t index = static_cast<std::size_t>(
      reduce_range(route_(key), static_cast<std::uint32_t>(stripes_.size())));
  Stripe& stripe = *stripes_[index];
  if (queue_capacity_ == 0) {
    stripe.updates->inc();
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.sketch.update(group, member, delta);
    return;
  }
  // Pipelined mode: enqueue under the (short, uncontended-by-design) queue
  // mutex; the thread that fills the queue applies the whole batch, taking
  // the sketch lock once per queue_capacity_ updates.
  std::vector<FlowUpdate> ready;
  {
    const std::lock_guard<std::mutex> lock(stripe.queue_mutex);
    stripe.pending.push_back(
        {member, group, static_cast<std::int8_t>(delta)});
    if (stripe.pending.size() < queue_capacity_) return;
    ready.swap(stripe.pending);
    stripe.pending.reserve(queue_capacity_);
  }
  apply_batch(stripe, ready);
}

void ConcurrentMonitor::update_batch(std::span<const FlowUpdate> updates) {
  // Partition by stripe with no locks held, then take each stripe's sketch
  // lock exactly once for its whole sub-batch.
  std::vector<std::vector<FlowUpdate>> parts(stripes_.size());
  const std::size_t expect = updates.size() / stripes_.size() + 1;
  for (auto& part : parts) part.reserve(expect);
  for (const FlowUpdate& u : updates) {
    const PairKey key = pack_pair(u.dest, u.source);
    parts[static_cast<std::size_t>(reduce_range(
             route_(key), static_cast<std::uint32_t>(stripes_.size())))]
        .push_back(u);
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].empty()) apply_batch(*stripes_[i], parts[i]);
  }
}

void ConcurrentMonitor::drain_queues() const {
  if (queue_capacity_ == 0) return;
  for (const auto& stripe : stripes_) {
    std::vector<FlowUpdate> ready;
    {
      const std::lock_guard<std::mutex> lock(stripe->queue_mutex);
      ready.swap(stripe->pending);
      stripe->pending.reserve(queue_capacity_);
    }
    apply_batch(*stripe, ready);
  }
}

void ConcurrentMonitor::flush() { drain_queues(); }

std::size_t ConcurrentMonitor::pending_updates() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe->queue_mutex);
    total += stripe->pending.size();
  }
  return total;
}

DistinctCountSketch ConcurrentMonitor::snapshot() const {
  auto& metrics = obs::DistributedMetrics::get();
  metrics.snapshots.inc();
  obs::ScopedTimer timer(metrics.snapshot_ns);
  drain_queues();
  // Consistent cut: hold every stripe lock (acquired in index order — the
  // only multi-lock path, so no deadlock) while merging, so the result is
  // the exact sum of all stripes at one common point in time.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (const auto& stripe : stripes_) locks.emplace_back(stripe->mutex);
  DistinctCountSketch merged(stripes_.front()->sketch.params());
  for (const auto& stripe : stripes_) merged.merge(stripe->sketch);
  return merged;
}

std::size_t ConcurrentMonitor::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& stripe : stripes_) {
    {
      const std::lock_guard<std::mutex> lock(stripe->mutex);
      bytes += stripe->sketch.memory_bytes();
    }
    const std::lock_guard<std::mutex> lock(stripe->queue_mutex);
    bytes += stripe->pending.capacity() * sizeof(FlowUpdate);
  }
  return bytes;
}

}  // namespace dcs
