#include "distributed/concurrent_monitor.hpp"

#include <stdexcept>

namespace dcs {

ConcurrentMonitor::ConcurrentMonitor(DcsParams params, std::size_t stripes)
    : route_(mix64(params.seed ^ 0x57a1be5cULL)) {
  if (stripes == 0)
    throw std::invalid_argument("ConcurrentMonitor: stripes >= 1");
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i)
    stripes_.push_back(std::make_unique<Stripe>(params, i));
}

void ConcurrentMonitor::update(Addr group, Addr member, int delta) {
  const PairKey key = pack_pair(group, member);
  const std::size_t index = static_cast<std::size_t>(
      reduce_range(route_(key), static_cast<std::uint32_t>(stripes_.size())));
  Stripe& stripe = *stripes_[index];
  stripe.updates->inc();
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.sketch.update(group, member, delta);
}

DistinctCountSketch ConcurrentMonitor::snapshot() const {
  auto& metrics = obs::DistributedMetrics::get();
  metrics.snapshots.inc();
  obs::ScopedTimer timer(metrics.snapshot_ns);
  DistinctCountSketch merged(stripes_.front()->sketch.params());
  for (const auto& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe->mutex);
    merged.merge(stripe->sketch);
  }
  return merged;
}

std::size_t ConcurrentMonitor::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe->mutex);
    bytes += stripe->sketch.memory_bytes();
  }
  return bytes;
}

}  // namespace dcs
