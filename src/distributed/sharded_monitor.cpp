#include "distributed/sharded_monitor.hpp"

#include <stdexcept>

namespace dcs {

ShardedMonitor::ShardedMonitor(DcsParams params, std::size_t num_shards)
    : route_(mix64(params.seed ^ 0x705e77e2ULL)) {
  if (num_shards == 0)
    throw std::invalid_argument("ShardedMonitor: num_shards >= 1");
  shards_.reserve(num_shards);
  shard_counters_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(params);
    shard_counters_.push_back(&obs::DistributedMetrics::shard_updates(i));
  }
}

void ShardedMonitor::update(Addr group, Addr member, int delta) {
  const PairKey key = pack_pair(group, member);
  const std::size_t shard = static_cast<std::size_t>(
      reduce_range(route_(key), static_cast<std::uint32_t>(shards_.size())));
  shard_counters_[shard]->inc();
  shards_[shard].update(group, member, delta);
}

void ShardedMonitor::update_at(std::size_t shard, Addr group, Addr member,
                               int delta) {
  shards_.at(shard).update(group, member, delta);
  shard_counters_[shard]->inc();
}

DistinctCountSketch ShardedMonitor::collect() const {
  obs::ScopedTimer timer(obs::DistributedMetrics::get().collect_ns);
  DistinctCountSketch merged(shards_.front().params());
  for (const DistinctCountSketch& shard : shards_) merged.merge(shard);
  return merged;
}

std::size_t ShardedMonitor::memory_bytes() const {
  std::size_t bytes = 0;
  for (const DistinctCountSketch& shard : shards_) bytes += shard.memory_bytes();
  return bytes;
}

}  // namespace dcs
