// Vectorized dense signature add, dispatched at runtime from CPUID.
//
// The scalar CountSignatureView::add walks the set bits of the key, one
// 64-bit counter increment per bit — O(popcount) work that is ideal for the
// narrow keys unit tests use, but a ~32-iteration serial chain for real
// 64-bit pair keys. The dense kernels below instead touch all 64 bit
// counters as full-width masked vector adds: lanes whose key bit is clear
// add zero, lanes whose bit is set add `delta`. Signed 64-bit integer
// addition is exact and associative here, so the dense result is
// bit-identical to the scalar one — only the instruction count changes.
//
// Build note: the kernels carry `target` attributes instead of compiling the
// whole project with -mavx2/-mavx512f, so the binary still runs on machines
// without the ISA (dense_add resolves to nullptr there and callers keep the
// scalar loop).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define DCS_DENSE_ADD_X86 1
#endif

#include "sketch/count_signature.hpp"

namespace dcs::detail {

namespace {

#ifdef DCS_DENSE_ADD_X86

// AVX-512F: the 64-bit key is consumed one byte at a time as the write mask
// of a masked 512-bit add — 8 load/mask-add/store triples for the whole
// signature body.
__attribute__((target("avx512f"))) void dense_add_avx512(
    std::int64_t* counters, std::uint64_t key, std::int64_t delta) {
  counters[0] += delta;
  const __m512i dv = _mm512_set1_epi64(delta);
  for (int k = 0; k < 8; ++k) {
    const __mmask8 mask = static_cast<__mmask8>(key >> (8 * k));
    std::int64_t* p = counters + 1 + 8 * k;
    const __m512i v = _mm512_loadu_si512(p);
    _mm512_storeu_si512(p, _mm512_mask_add_epi64(v, mask, v, dv));
  }
}

// AVX2 fallback: no mask registers, so each nibble of the key is expanded to
// a 4x64 lane mask by comparing against per-lane bit constants, and the
// masked delta is added — 16 iterations over the signature body.
__attribute__((target("avx2"))) void dense_add_avx2(std::int64_t* counters,
                                                    std::uint64_t key,
                                                    std::int64_t delta) {
  counters[0] += delta;
  const __m256i dv = _mm256_set1_epi64x(delta);
  const __m256i lane_bit = _mm256_set_epi64x(8, 4, 2, 1);
  for (int k = 0; k < 16; ++k) {
    const long long nibble = static_cast<long long>((key >> (4 * k)) & 0xf);
    const __m256i mask = _mm256_cmpeq_epi64(
        _mm256_and_si256(_mm256_set1_epi64x(nibble), lane_bit), lane_bit);
    std::int64_t* p = counters + 1 + 4 * k;
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(p),
        _mm256_add_epi64(v, _mm256_and_si256(dv, mask)));
  }
}

#endif  // DCS_DENSE_ADD_X86

DenseAddFn resolve() noexcept {
#ifdef DCS_DENSE_ADD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return &dense_add_avx512;
  if (__builtin_cpu_supports("avx2")) return &dense_add_avx2;
#endif
  return nullptr;
}

}  // namespace

const DenseAddFn dense_add = resolve();

}  // namespace dcs::detail
