// The Tracking Distinct-Count Sketch (paper §5).
//
// Wraps the basic sketch and *incrementally* maintains, per first-level
// bucket b:
//   * singletons(b)      — the current distinct sample contributed by b: a
//                          map from singleton key to the number of
//                          second-level tables where it is currently alone;
//   * numSingletons(b)   — |singletons(b)| (the map's size);
//   * topDestHeap(b)     — a max-heap over groups (destinations) keyed by
//                          their occurrence frequency in the cumulative
//                          sample ∪_{l >= b} singletons(l).
//
// Each stream update touches r second-level buckets; for each we classify
// the bucket before and after applying the count-signature update and diff
// the two states. This uniform state-before/apply/state-after scheme covers
// every transition of the paper's Fig. 6 — empty→singleton,
// singleton→collision, singleton→empty, collision→singleton, and
// singleton(p)→singleton(p) — for insertions and deletions symmetrically.
//
// TrackTopk (Fig. 7) then answers a top-k query in O(k log k): infer the
// sampling level from the numSingletons counters and read the top k entries
// off that level's heap.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sketch/distinct_count_sketch.hpp"
#include "sketch/indexed_heap.hpp"
#include "sketch/top_k.hpp"

namespace dcs {

class TrackingDcs final : public TopKEstimator {
 public:
  explicit TrackingDcs(DcsParams params = {});

  /// Adopt an existing basic sketch (e.g. the merge of several router-level
  /// monitors) and build the tracking state over it.
  explicit TrackingDcs(const DistinctCountSketch& sketch);

  // --- streaming updates ---------------------------------------------------
  void update(Addr group, Addr member, int delta) override;
  void update_key(PairKey key, int delta);

  /// Batched ingest: per block of DistinctCountSketch::kBatchBlock updates,
  /// precompute the level/bucket hashes and prefetch the touched signature
  /// lines, then run the usual classify/apply/classify maintenance per
  /// update in order. State (sketch counters, singleton maps, heaps) is
  /// identical to calling update() per element; the per-update telemetry
  /// tally is amortized to once per block.
  void update_batch(std::span<const FlowUpdate> updates);

  // --- queries --------------------------------------------------------------
  /// TrackTopk (Fig. 7): O(k log k), no sample reconstruction.
  TopKResult top_k(std::size_t k) const override;

  /// Threshold variant: all groups with estimated frequency >= tau.
  std::vector<TopKEntry> groups_above(std::uint64_t tau) const;

  /// Estimate of the number of distinct net-positive pairs, from the
  /// maintained per-level singleton counters.
  std::uint64_t estimate_distinct_pairs() const;

  /// Point query: estimated distinct-member frequency of one group —
  /// O(log m) (inference-level scan plus an O(1) heap lookup).
  std::uint64_t estimate_frequency(Addr group) const;

  // --- composition -----------------------------------------------------------
  /// Merge another monitor's sketch (identical params/seed) and rebuild the
  /// tracking state from the merged counters.
  void merge(const TrackingDcs& other);

  /// Merge a *basic* sketch delta (e.g. one site's per-epoch snapshot
  /// shipped over the wire by src/service) and rebuild. By linearity the
  /// result is identical to having ingested the delta's update stream
  /// directly, in any order relative to other sites' deltas.
  void merge_sketch(const DistinctCountSketch& delta);

  /// Reconstruct singleton maps and heaps from the raw sketch counters.
  /// Used after merge/deserialize; O(sketch size).
  void rebuild();

  void serialize(BinaryWriter& writer) const;
  static TrackingDcs deserialize(BinaryReader& reader);

  // --- introspection ----------------------------------------------------------
  const DistinctCountSketch& sketch() const noexcept { return sketch_; }
  const DcsParams& params() const noexcept { return sketch_.params(); }

  /// numSingletons(level): distinct pairs currently recoverable at `level`.
  std::uint64_t num_singletons(int level) const;

  /// topDestHeap(level) — exposed for tests and diagnostics.
  const IndexedMaxHeap<Addr>& heap(int level) const {
    return heaps_[static_cast<std::size_t>(level)];
  }

  /// Recompute all tracking state from the raw counters and compare with the
  /// incrementally-maintained state. O(sketch size); test/debug aid.
  bool check_invariants() const;

  std::size_t memory_bytes() const override;
  std::string name() const override { return "dcs-tracking"; }

 private:
  using SingletonMap = std::unordered_map<PairKey, std::uint32_t>;

  /// One table's worth of update: classify before, apply, classify after,
  /// and diff the two states into the incremental tracking structures.
  /// Shared by the per-update and batched ingest paths.
  void apply_tracked(int level, int table, PairKey key, int delta);

  /// `key` became a singleton in one more table of `level`'s bucket.
  void singleton_gained(int level, PairKey key);
  /// `key` stopped being a singleton in one table of `level`'s bucket.
  void singleton_lost(int level, PairKey key);

  /// Compute what the singleton maps should be, straight from the counters.
  std::vector<SingletonMap> recompute_singletons() const;

  /// Find the inference level and cumulative sample size (TrackTopk 1-7).
  std::pair<int, std::uint64_t> inference_level() const;

  /// Collision-correction multiplier (see DcsParams::collision_correction),
  /// computed from the incrementally-maintained occupancy counters; agrees
  /// exactly with DistinctCountSketch::correction_factor on the same state.
  double correction_factor(int level, std::uint64_t sample_size) const;

  DistinctCountSketch sketch_;
  std::vector<SingletonMap> singletons_;        // per level
  std::vector<IndexedMaxHeap<Addr>> heaps_;     // per level (cumulative)
  /// occupancy_[level][table] = non-empty buckets, maintained on
  /// empty <-> non-empty transitions.
  std::vector<std::vector<std::uint32_t>> occupancy_;
};

}  // namespace dcs
