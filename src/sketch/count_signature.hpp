// Count signatures — the per-bucket structure at the heart of the
// Distinct-Count Sketch (paper §3).
//
// A signature is an array of key_bits + 1 signed counters over the (multi)set
// of keys currently hashed into a second-level bucket:
//   counters[0]      — net total number of keys in the bucket;
//   counters[1 + i]  — net number of keys whose bit i is 1.
// Because every counter is a linear function of the stream, insert-then-
// delete leaves the signature exactly as if the item was never seen — this is
// what makes the whole sketch delete-resilient.
//
// Classification (paper's ReturnSingleton, Fig. 4): a bucket is a singleton
// iff total > 0 and every bit counter is either 0 or equal to the total; the
// unique key is then read off bit by bit. Two distinct keys must differ in
// some bit, and with nonnegative per-key net counts that bit's counter falls
// strictly between 0 and the total — so classification is exact for valid
// update streams. Counters outside [0, total] (possible only if a stream
// deletes items it never inserted) are reported as kCollision.
#pragma once

#include <cstdint>
#include <span>

#include "common/bitops.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

namespace detail {
/// Runtime-dispatched dense signature apply: add `delta` to the total counter
/// and to each of the 64 bit counters whose bit is set in `key`, as masked
/// vector adds (AVX-512F: 8 masked 512-bit adds; AVX2: 16 nibble-masked
/// 256-bit adds). Signed 64-bit integer adds, so the result is bit-identical
/// to the scalar loop. Resolved once from CPUID at startup; nullptr on
/// machines without the ISA (callers fall back to the sparse scalar loop,
/// which is also the safe default if an add runs before dynamic init).
using DenseAddFn = void (*)(std::int64_t* counters, std::uint64_t key,
                            std::int64_t delta);
extern const DenseAddFn dense_add;
}  // namespace detail

enum class BucketState : std::uint8_t {
  kEmpty,      // no keys present
  kSingleton,  // exactly one distinct key; its value was recovered
  kCollision,  // >= 2 distinct keys (or an inconsistent signature)
};

struct BucketClass {
  BucketState state = BucketState::kEmpty;
  PairKey key = 0;  // valid iff state == kSingleton

  friend bool operator==(const BucketClass&, const BucketClass&) = default;
};

/// Non-owning view over one bucket's counters (contiguous, length
/// key_bits + 1). The sketch owns the storage; this view implements the
/// update and classification logic so it can be unit-tested in isolation.
class CountSignatureView {
 public:
  CountSignatureView(std::int64_t* counters, int key_bits) noexcept
      : counters_(counters), key_bits_(key_bits) {}

  std::int64_t total() const noexcept { return counters_[0]; }

  std::int64_t bit_count(int i) const noexcept { return counters_[1 + i]; }

  /// Apply a stream update for `key` with weight `delta` (±1, or any signed
  /// weight — the structure is linear).
  void add(PairKey key, std::int64_t delta) noexcept {
    // Full-width keys take the vector path when the CPU has one: a real pair
    // key has ~32 set bits, where a handful of masked vector adds beat a
    // 32-iteration scalar loop severalfold. Narrow keys (small test domains)
    // keep the sparse loop, which also covers machines without the ISA.
    if (key_bits_ == 64 && detail::dense_add != nullptr) {
      detail::dense_add(counters_, key, delta);
      return;
    }
    counters_[0] += delta;
    // Iterate set bits only: expected key population is half the bits, and
    // sparse keys (small test domains) update in O(popcount).
    std::uint64_t bits = key;
    while (bits != 0) {
      const int i = lsb_index(bits);
      counters_[1 + i] += delta;
      bits &= bits - 1;
    }
  }

  /// Classify the bucket and recover the singleton key if there is one.
  BucketClass classify() const noexcept {
    const std::int64_t t = counters_[0];
    if (t < 0) return {BucketState::kCollision, 0};
    if (t == 0) {
      // A truly empty bucket has all-zero counters; anything else means the
      // stream violated the no-spurious-deletes contract.
      for (int i = 0; i < key_bits_; ++i)
        if (counters_[1 + i] != 0) return {BucketState::kCollision, 0};
      return {BucketState::kEmpty, 0};
    }
    PairKey key = 0;
    for (int i = 0; i < key_bits_; ++i) {
      const std::int64_t c = counters_[1 + i];
      if (c == t) {
        key |= (PairKey{1} << i);
      } else if (c != 0) {
        return {BucketState::kCollision, 0};
      }
    }
    return {BucketState::kSingleton, key};
  }

  /// True iff every counter is zero.
  bool all_zero() const noexcept {
    for (int i = 0; i <= key_bits_; ++i)
      if (counters_[i] != 0) return false;
    return true;
  }

  std::span<const std::int64_t> raw() const noexcept {
    return {counters_, static_cast<std::size_t>(key_bits_) + 1};
  }

 private:
  std::int64_t* counters_;
  int key_bits_;
};

}  // namespace dcs
