// Sliding-window distinct-count sketching.
//
// The paper's synopsis summarizes the whole stream (with deletions); many
// deployments also want recency — "destinations contacted by the most
// distinct new sources within the last W updates". Linearity gives an exact
// window construction: keep one sketch per epoch in a ring plus a running
// window sketch; when an epoch leaves the window, *subtract* its sketch.
// The window sketch is then bit-identical to a sketch built over only the
// window's updates (a tested invariant) — no approximation beyond the base
// sketch's own, no timestamps in buckets.
//
// Window semantics ("last W epochs"): the window always covers the last
// `window_epochs` *completed* epochs plus the in-progress partial epoch, so
// even at window_epochs = 1 a query right after an epoch boundary still sees
// one full epoch of history (never an empty window).
//
// Memory is (window_epochs + 2) sketches; choose epoch granularity
// accordingly. Deletions inside the window work as usual; a deletion whose
// insertion has already expired leaves a net-negative pair, whose bucket
// classifies as a collision and is filtered from samples (same degradation
// as any out-of-contract delete, see count_signature.hpp).
#pragma once

#include <cstdint>
#include <deque>

#include "sketch/distinct_count_sketch.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class SlidingWindowSketch {
 public:
  struct Config {
    DcsParams sketch{};
    /// Updates per epoch (window granularity).
    std::uint64_t epoch_updates = 16'384;
    /// Window length in completed epochs; the window covers the current
    /// (partial) epoch plus the last `window_epochs` completed ones.
    std::size_t window_epochs = 8;
  };

  SlidingWindowSketch();  // default Config
  explicit SlidingWindowSketch(Config config);

  void update(Addr group, Addr member, int delta);
  void ingest(const std::vector<FlowUpdate>& updates);

  /// Top-k groups by distinct members seen within the window.
  TopKResult top_k(std::size_t k) const { return window_.top_k(k); }

  /// The window's sketch (usable for any query the basic sketch supports).
  const DistinctCountSketch& window() const noexcept { return window_; }

  std::uint64_t updates_ingested() const noexcept { return ingested_; }
  std::size_t completed_epochs_held() const noexcept { return epochs_.size(); }
  const Config& config() const noexcept { return config_; }
  std::size_t memory_bytes() const;

 private:
  void roll_epoch();

  Config config_;
  DistinctCountSketch window_;         // sum of current epoch + ring
  DistinctCountSketch current_epoch_;  // in-progress epoch only
  std::deque<DistinctCountSketch> epochs_;  // completed epochs, oldest first
  std::uint64_t ingested_ = 0;
};

}  // namespace dcs
