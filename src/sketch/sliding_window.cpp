#include "sketch/sliding_window.hpp"

#include <stdexcept>

namespace dcs {

SlidingWindowSketch::SlidingWindowSketch()
    : SlidingWindowSketch(Config{}) {}

SlidingWindowSketch::SlidingWindowSketch(Config config)
    : config_(config), window_(config.sketch), current_epoch_(config.sketch) {
  if (config.epoch_updates == 0)
    throw std::invalid_argument("SlidingWindowSketch: epoch_updates >= 1");
  if (config.window_epochs == 0)
    throw std::invalid_argument("SlidingWindowSketch: window_epochs >= 1");
}

void SlidingWindowSketch::update(Addr group, Addr member, int delta) {
  window_.update(group, member, delta);
  current_epoch_.update(group, member, delta);
  if (++ingested_ % config_.epoch_updates == 0) roll_epoch();
}

void SlidingWindowSketch::ingest(const std::vector<FlowUpdate>& updates) {
  for (const FlowUpdate& u : updates) update(u.dest, u.source, u.delta);
}

void SlidingWindowSketch::roll_epoch() {
  epochs_.push_back(std::move(current_epoch_));
  current_epoch_ = DistinctCountSketch(config_.sketch);
  // Keep exactly the last `window_epochs` completed epochs. Evicting at
  // `>=` here (the historical off-by-one) held only window_epochs - 1, which
  // degenerated at window_epochs = 1 to a window covering nothing but the
  // in-progress partial epoch.
  if (epochs_.size() > config_.window_epochs) {
    // The oldest epoch leaves the window: subtract its contribution. The
    // window sketch is now exactly the sum of the remaining epochs.
    window_.subtract(epochs_.front());
    epochs_.pop_front();
  }
}

std::size_t SlidingWindowSketch::memory_bytes() const {
  std::size_t bytes = window_.memory_bytes() + current_epoch_.memory_bytes();
  for (const DistinctCountSketch& epoch : epochs_) bytes += epoch.memory_bytes();
  return bytes;
}

}  // namespace dcs
