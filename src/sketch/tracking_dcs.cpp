#include "sketch/tracking_dcs.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "obs/instruments.hpp"

namespace dcs {

TrackingDcs::TrackingDcs(DcsParams params)
    : sketch_(params),
      singletons_(static_cast<std::size_t>(params.max_level) + 1),
      heaps_(static_cast<std::size_t>(params.max_level) + 1),
      occupancy_(static_cast<std::size_t>(params.max_level) + 1,
                 std::vector<std::uint32_t>(
                     static_cast<std::size_t>(params.num_tables), 0)) {}

TrackingDcs::TrackingDcs(const DistinctCountSketch& sketch)
    : sketch_(sketch),
      singletons_(static_cast<std::size_t>(sketch.params().max_level) + 1),
      heaps_(static_cast<std::size_t>(sketch.params().max_level) + 1),
      occupancy_(static_cast<std::size_t>(sketch.params().max_level) + 1,
                 std::vector<std::uint32_t>(
                     static_cast<std::size_t>(sketch.params().num_tables), 0)) {
  rebuild();
}

void TrackingDcs::update(Addr group, Addr member, int delta) {
  update_key(pack_pair(group, member), delta);
}

void TrackingDcs::update_key(PairKey key, int delta) {
  if (params().key_bits < 64 && (key >> params().key_bits) != 0)
    throw std::invalid_argument("TrackingDcs: key does not fit in key_bits");
  if (obs::recording()) obs::TrackingMetrics::get().updates.inc();
  const int level = sketch_.level_of(key);
  for (int j = 0; j < params().num_tables; ++j)
    apply_tracked(level, j, key, delta);
}

void TrackingDcs::apply_tracked(int level, int j, PairKey key, int delta) {
  const std::uint32_t bucket = sketch_.bucket_of(j, key);
  const BucketClass before = sketch_.classify_bucket(level, j, bucket);
  sketch_.apply_to_table(level, j, key, delta);
  const BucketClass after = sketch_.classify_bucket(level, j, bucket);

  const bool was_singleton = before.state == BucketState::kSingleton;
  const bool is_singleton = after.state == BucketState::kSingleton;
  if (was_singleton && (!is_singleton || after.key != before.key))
    singleton_lost(level, before.key);
  if (is_singleton && (!was_singleton || before.key != after.key))
    singleton_gained(level, after.key);

  const bool was_empty = before.state == BucketState::kEmpty;
  const bool is_empty = after.state == BucketState::kEmpty;
  auto& occupancy =
      occupancy_[static_cast<std::size_t>(level)][static_cast<std::size_t>(j)];
  if (was_empty && !is_empty) ++occupancy;
  if (!was_empty && is_empty) --occupancy;
}

void TrackingDcs::update_batch(std::span<const FlowUpdate> updates) {
  constexpr std::size_t kBlock = DistinctCountSketch::kBatchBlock;
  std::array<PairKey, kBlock> keys;
  std::array<int, kBlock> levels;
  for (std::size_t begin = 0; begin < updates.size(); begin += kBlock) {
    const std::size_t block = std::min(kBlock, updates.size() - begin);
    // Pass 1: hashes up front, prefetch every signature the block touches.
    for (std::size_t i = 0; i < block; ++i) {
      const FlowUpdate& u = updates[begin + i];
      const PairKey key = pack_pair(u.dest, u.source);
      if (params().key_bits < 64 && (key >> params().key_bits) != 0)
        throw std::invalid_argument("TrackingDcs: key does not fit in key_bits");
      keys[i] = key;
      levels[i] = sketch_.level_of(key);
      for (int j = 0; j < params().num_tables; ++j)
        sketch_.prefetch_bucket(levels[i], j, key);
    }
    if (obs::recording())
      obs::TrackingMetrics::get().updates.inc(block);
    // Pass 2: the usual classify/apply/classify maintenance, in order (the
    // tracking structures are order-sensitive within a bucket, so the block
    // replays exactly the sequential schedule).
    for (std::size_t i = 0; i < block; ++i)
      for (int j = 0; j < params().num_tables; ++j)
        apply_tracked(levels[i], j, keys[i], updates[begin + i].delta);
  }
}

void TrackingDcs::singleton_gained(int level, PairKey key) {
  auto& map = singletons_[static_cast<std::size_t>(level)];
  if (++map[key] == 1) {
    // New distinct-sample member: bump the group's sample frequency in the
    // cumulative heaps of this level and every level below (Fig. 6, 20-22).
    const Addr group = pair_group(key);
    for (int l = level; l >= 0; --l)
      heaps_[static_cast<std::size_t>(l)].add(group, +1);
    if (obs::recording()) {
      auto& metrics = obs::TrackingMetrics::get();
      metrics.singletons_gained.inc();
      metrics.heap_ops.inc(static_cast<std::uint64_t>(level) + 1);
    }
  }
}

void TrackingDcs::singleton_lost(int level, PairKey key) {
  auto& map = singletons_[static_cast<std::size_t>(level)];
  const auto it = map.find(key);
  if (it == map.end())
    throw std::logic_error("TrackingDcs: losing an untracked singleton");
  if (--it->second == 0) {
    map.erase(it);
    const Addr group = pair_group(key);
    for (int l = level; l >= 0; --l)
      heaps_[static_cast<std::size_t>(l)].add(group, -1);
    if (obs::recording()) {
      auto& metrics = obs::TrackingMetrics::get();
      metrics.singletons_lost.inc();
      metrics.heap_ops.inc(static_cast<std::uint64_t>(level) + 1);
    }
  }
}

std::uint64_t TrackingDcs::num_singletons(int level) const {
  return singletons_[static_cast<std::size_t>(level)].size();
}

std::pair<int, std::uint64_t> TrackingDcs::inference_level() const {
  const std::uint64_t target = params().sample_target();
  std::uint64_t sample_size = 0;
  int level = params().max_level;
  for (; level >= 0; --level) {
    sample_size += num_singletons(level);
    if (sample_size >= target) break;
  }
  return {std::max(level, 0), sample_size};
}

double TrackingDcs::correction_factor(int level,
                                      std::uint64_t sample_size) const {
  if (!params().collision_correction || sample_size == 0) return 1.0;
  // Mirrors DistinctCountSketch::correction_factor term for term so both
  // estimators produce bit-identical results on identical state.
  double population = 0.0;
  for (int l = params().max_level; l >= level; --l) {
    double level_total = 0.0;
    for (int j = 0; j < params().num_tables; ++j)
      level_total += linear_count_estimate(
          occupancy_[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)],
          params().buckets_per_table);
    population += level_total / static_cast<double>(params().num_tables);
  }
  const double factor = population / static_cast<double>(sample_size);
  return factor < 1.0 ? 1.0 : factor;
}

TopKResult TrackingDcs::top_k(std::size_t k) const {
  obs::ScopedTimer timer(obs::TrackingMetrics::get().query_ns);
  const auto [level, sample_size] = inference_level();
  TopKResult result;
  result.inference_level = level;
  result.sample_size = sample_size;
  const double scale =
      std::ldexp(correction_factor(level, sample_size), level);
  const auto entries = heaps_[static_cast<std::size_t>(level)].top_k(k);
  result.entries.reserve(entries.size());
  for (const auto& e : entries)
    result.entries.push_back(
        {e.key, static_cast<std::uint64_t>(
                    std::llround(static_cast<double>(e.priority) * scale))});
  return result;
}

std::vector<TopKEntry> TrackingDcs::groups_above(std::uint64_t tau) const {
  const auto [level, sample_size] = inference_level();
  const double scale =
      std::ldexp(correction_factor(level, sample_size), level);
  const auto& heap = heaps_[static_cast<std::size_t>(level)];
  auto entries = heap.top_k(heap.size());
  std::vector<TopKEntry> out;
  for (const auto& e : entries) {
    const auto estimate = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(e.priority) * scale));
    if (estimate < tau) break;  // entries are descending
    out.push_back({e.key, estimate});
  }
  return out;
}

std::uint64_t TrackingDcs::estimate_distinct_pairs() const {
  const auto [level, sample_size] = inference_level();
  const double scale =
      std::ldexp(correction_factor(level, sample_size), level);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(sample_size) * scale));
}

std::uint64_t TrackingDcs::estimate_frequency(Addr group) const {
  const auto [level, sample_size] = inference_level();
  const double scale =
      std::ldexp(correction_factor(level, sample_size), level);
  const std::int64_t in_sample =
      heaps_[static_cast<std::size_t>(level)].priority(group);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(in_sample) * scale));
}

std::vector<TrackingDcs::SingletonMap> TrackingDcs::recompute_singletons()
    const {
  std::vector<SingletonMap> maps(singletons_.size());
  for (int l = 0; l <= params().max_level; ++l) {
    if (!sketch_.level_allocated(l)) continue;
    for (int j = 0; j < params().num_tables; ++j) {
      for (std::uint32_t b = 0; b < params().buckets_per_table; ++b) {
        const BucketClass cls = sketch_.classify_bucket(l, j, b);
        if (cls.state == BucketState::kSingleton)
          ++maps[static_cast<std::size_t>(l)][cls.key];
      }
    }
  }
  return maps;
}

void TrackingDcs::rebuild() {
  singletons_ = recompute_singletons();
  heaps_.assign(singletons_.size(), {});
  for (int l = 0; l <= params().max_level; ++l)
    for (int j = 0; j < params().num_tables; ++j)
      occupancy_[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)] =
          static_cast<std::uint32_t>(sketch_.occupied_buckets(l, j));
  // heap(l) covers levels >= l: accumulate group frequencies top-down.
  std::unordered_map<Addr, std::int64_t> cumulative;
  for (int l = params().max_level; l >= 0; --l) {
    for (const auto& [key, tables] : singletons_[static_cast<std::size_t>(l)])
      ++cumulative[pair_group(key)];
    auto& heap = heaps_[static_cast<std::size_t>(l)];
    for (const auto& [group, freq] : cumulative) heap.add(group, freq);
  }
}

void TrackingDcs::merge(const TrackingDcs& other) {
  sketch_.merge(other.sketch_);
  rebuild();
}

void TrackingDcs::merge_sketch(const DistinctCountSketch& delta) {
  sketch_.merge(delta);
  rebuild();
}

void TrackingDcs::serialize(BinaryWriter& writer) const {
  // The tracking state is derived; persisting the linear sketch suffices.
  sketch_.serialize(writer);
}

TrackingDcs TrackingDcs::deserialize(BinaryReader& reader) {
  return TrackingDcs(DistinctCountSketch::deserialize(reader));
}

bool TrackingDcs::check_invariants() const {
  const auto expected = recompute_singletons();
  for (std::size_t l = 0; l < singletons_.size(); ++l)
    if (singletons_[l] != expected[l]) return false;

  for (int l = 0; l <= params().max_level; ++l)
    for (int j = 0; j < params().num_tables; ++j)
      if (occupancy_[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)] !=
          sketch_.occupied_buckets(l, j))
        return false;

  // Heaps must hold exactly the cumulative group frequencies.
  std::unordered_map<Addr, std::int64_t> cumulative;
  for (int l = params().max_level; l >= 0; --l) {
    for (const auto& [key, tables] : expected[static_cast<std::size_t>(l)])
      ++cumulative[pair_group(key)];
    const auto& heap = heaps_[static_cast<std::size_t>(l)];
    if (!heap.validate()) return false;
    if (heap.size() != cumulative.size()) return false;
    for (const auto& [group, freq] : cumulative)
      if (heap.priority(group) != freq) return false;
  }
  return true;
}

std::size_t TrackingDcs::memory_bytes() const {
  std::size_t bytes = sketch_.memory_bytes();
  for (const auto& map : singletons_) {
    // unordered_map node overhead approximation: key+count+pointers.
    bytes += map.size() * (sizeof(PairKey) + sizeof(std::uint32_t) + 32);
    bytes += map.bucket_count() * sizeof(void*);
  }
  for (const auto& heap : heaps_) bytes += heap.memory_bytes();
  for (const auto& level : occupancy_)
    bytes += level.capacity() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace dcs
