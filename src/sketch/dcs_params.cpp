#include "sketch/dcs_params.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/hash.hpp"

namespace dcs {

void DcsParams::validate() const {
  if (num_tables < 1) throw std::invalid_argument("DcsParams: num_tables >= 1");
  if (buckets_per_table < 2)
    throw std::invalid_argument("DcsParams: buckets_per_table >= 2");
  if (key_bits < 1 || key_bits > 64)
    throw std::invalid_argument("DcsParams: key_bits in [1, 64]");
  if (max_level < 0 || max_level > 63)
    throw std::invalid_argument("DcsParams: max_level in [0, 63]");
  if (epsilon <= 0.0 || epsilon >= 1.0 / 3.0)
    throw std::invalid_argument("DcsParams: epsilon in (0, 1/3)");
  if (sample_target_fraction < 0.0 || sample_target_fraction > 1.0)
    throw std::invalid_argument("DcsParams: sample_target_fraction in [0, 1]");
}

std::uint64_t DcsParams::sample_target() const noexcept {
  const double s = static_cast<double>(buckets_per_table);
  const double target = sample_target_fraction > 0.0
                            ? sample_target_fraction * s
                            : (1.0 + epsilon) * s / 16.0;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(target)));
}

std::uint64_t DcsParams::fingerprint() const noexcept {
  // Chained splitmix64 over every field; doubles are hashed by bit pattern,
  // which is exact for round-tripped values (we never compare across FP
  // rounding).
  const auto fold = [](std::uint64_t acc, std::uint64_t v) {
    return mix64(acc ^ v);
  };
  std::uint64_t h = 0x44435350ULL;  // "DCSP"
  h = fold(h, static_cast<std::uint64_t>(num_tables));
  h = fold(h, buckets_per_table);
  h = fold(h, static_cast<std::uint64_t>(key_bits));
  h = fold(h, static_cast<std::uint64_t>(max_level));
  std::uint64_t bits = 0;
  static_assert(sizeof(epsilon) == sizeof(bits));
  std::memcpy(&bits, &epsilon, sizeof bits);
  h = fold(h, bits);
  std::memcpy(&bits, &sample_target_fraction, sizeof bits);
  h = fold(h, bits);
  h = fold(h, collision_correction ? 1 : 0);
  h = fold(h, seed);
  return h;
}

DcsParams DcsParams::recommend(double epsilon, double delta,
                               std::uint64_t expected_distinct_pairs,
                               std::uint64_t expected_kth_frequency,
                               std::uint64_t expected_stream_length) {
  if (delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("recommend: delta in (0, 1)");
  if (expected_kth_frequency == 0)
    throw std::invalid_argument("recommend: expected_kth_frequency >= 1");
  DcsParams p;
  p.epsilon = epsilon;
  const double n = std::max<double>(2.0, static_cast<double>(expected_stream_length));
  p.num_tables = std::max(1, static_cast<int>(std::ceil(std::log2(n / delta))));
  const double m_bits = 64.0;
  const double s = 16.0 * std::log((n + m_bits) / delta) *
                   static_cast<double>(expected_distinct_pairs) /
                   (static_cast<double>(expected_kth_frequency) * epsilon * epsilon);
  p.buckets_per_table =
      static_cast<std::uint32_t>(std::min(s, 1.0 * (1u << 30)));
  p.buckets_per_table = std::max(2u, p.buckets_per_table);
  p.validate();
  return p;
}

DcsParams DcsParams::for_memory_budget(std::size_t budget_bytes,
                                       std::uint64_t expected_distinct_pairs) {
  if (expected_distinct_pairs == 0)
    throw std::invalid_argument("for_memory_budget: expected pairs >= 1");
  DcsParams params;
  const int levels =
      static_cast<int>(std::ceil(std::log2(
          static_cast<double>(std::max<std::uint64_t>(2, expected_distinct_pairs))))) +
      1;
  const std::size_t per_bucket_bytes =
      params.signature_width() * sizeof(std::int64_t);
  const std::size_t per_s_bytes = static_cast<std::size_t>(levels) *
                                  static_cast<std::size_t>(params.num_tables) *
                                  per_bucket_bytes;
  std::uint32_t s = 2;
  while (2ull * s * per_s_bytes <= budget_bytes && s < (1u << 24)) s *= 2;
  if (static_cast<std::size_t>(s) * per_s_bytes > budget_bytes)
    throw std::invalid_argument(
        "for_memory_budget: budget too small for any sketch (needs >= ~2 "
        "buckets per table across all levels)");
  params.buckets_per_table = s;
  params.validate();
  return params;
}

}  // namespace dcs
