#include "sketch/distinct_count_sketch.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/instruments.hpp"

namespace dcs {

namespace {
constexpr std::uint32_t kSketchMagic = 0x53434344;  // "DCCS"
// v1: header + params + level bitmap + counters.
// v2: v1 followed by a CRC-32 integrity footer over the whole blob, so
//     truncated or bit-flipped snapshots (on disk or on the wire) are
//     rejected instead of silently corrupting a merge.
constexpr std::uint8_t kSketchVersion = 2;

// Seed-derivation constants: keep the level hash and the bucket family
// independent even though both derive from the same master seed.
constexpr std::uint64_t kLevelSeedSalt = 0x1b873593a4093822ULL;
constexpr std::uint64_t kBucketSeedSalt = 0xcc9e2d51b5297a4dULL;
}  // namespace

DistinctCountSketch::DistinctCountSketch(DcsParams params)
    : params_(params),
      level_hash_(mix64(params.seed ^ kLevelSeedSalt), params.max_level),
      bucket_hashes_(mix64(params.seed ^ kBucketSeedSalt), params.num_tables,
                     params.buckets_per_table),
      levels_(static_cast<std::size_t>(params.max_level) + 1) {
  params_.validate();
}

void DistinctCountSketch::check_key(PairKey key) const {
  if (params_.key_bits < 64 && (key >> params_.key_bits) != 0)
    throw std::invalid_argument(
        "DistinctCountSketch: key does not fit in key_bits");
}

void DistinctCountSketch::ensure_level(int level) {
  auto& storage = levels_[static_cast<std::size_t>(level)];
  if (storage.empty()) {
    storage.assign(params_.counters_per_level(), 0);
    if (obs::recording()) obs::SketchMetrics::get().level_allocations.inc();
  }
}

std::int64_t* DistinctCountSketch::counters_at(int level, int table,
                                               std::uint32_t bucket) {
  auto& storage = levels_[static_cast<std::size_t>(level)];
  const std::size_t width = params_.signature_width();
  const std::size_t index =
      (static_cast<std::size_t>(table) * params_.buckets_per_table + bucket) *
      width;
  return storage.data() + index;
}

const std::int64_t* DistinctCountSketch::counters_at(
    int level, int table, std::uint32_t bucket) const {
  const auto& storage = levels_[static_cast<std::size_t>(level)];
  const std::size_t width = params_.signature_width();
  const std::size_t index =
      (static_cast<std::size_t>(table) * params_.buckets_per_table + bucket) *
      width;
  return storage.data() + index;
}

void DistinctCountSketch::update(Addr group, Addr member, int delta) {
  update_key(pack_pair(group, member), delta);
}

void DistinctCountSketch::update_key(PairKey key, int delta) {
  check_key(key);
  const int level = level_of(key);
  ensure_level(level);
  if (obs::recording()) {
    pending_metrics_.counts +=
        1 + (static_cast<std::uint64_t>(delta < 0) << 32);
    ++pending_metrics_.level_hits[static_cast<std::size_t>(level)];
    if ((pending_metrics_.counts & 0xffffffffULL) >= kMetricsFlushInterval)
      flush_metrics();
  }
  for (int j = 0; j < params_.num_tables; ++j) {
    CountSignatureView sig(counters_at(level, j, bucket_of(j, key)),
                           params_.key_bits);
    sig.add(key, delta);
  }
}

void DistinctCountSketch::update_batch(std::span<const FlowUpdate> updates) {
  if (updates.empty()) return;
  const std::size_t n = updates.size();
  const std::size_t bytes = params_.signature_width() * sizeof(std::int64_t);
  const bool record = obs::recording();

  // Scratch buffers are thread_local so steady-state batches allocate
  // nothing; they grow to the largest span this thread has applied.
  thread_local std::vector<PairKey> keys;
  thread_local std::vector<std::uint64_t> mixed;  // mix64(key), hashed once
  thread_local std::vector<std::uint16_t> levels;
  thread_local std::vector<std::uint32_t> level_counts;
  thread_local std::vector<std::uint32_t> order;
  thread_local std::vector<std::uint32_t> buckets;

  // Pass 1: pack + validate every key and resolve its level before anything
  // is applied (a bad key therefore leaves the sketch untouched for the
  // whole span), allocating levels lazily and tallying the span's telemetry
  // in one go. The level histogram doubles as the counting-sort table for
  // pass 2.
  keys.resize(n);
  mixed.resize(n);
  levels.resize(n);
  level_counts.assign(static_cast<std::size_t>(params_.max_level) + 2, 0);
  std::uint32_t deletes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FlowUpdate& u = updates[i];
    const PairKey key = pack_pair(u.dest, u.source);
    check_key(key);
    keys[i] = key;
    mixed[i] = mix64(key);
    const int level = level_hash_.from_mixed(mixed[i]);
    levels[i] = static_cast<std::uint16_t>(level);
    ++level_counts[static_cast<std::size_t>(level) + 1];
    deletes += u.delta < 0;
  }
  for (std::size_t l = 0; l + 1 < level_counts.size(); ++l) {
    if (level_counts[l + 1] != 0) ensure_level(static_cast<int>(l));
    if (record && level_counts[l + 1] != 0)
      pending_metrics_.level_hits[l] += level_counts[l + 1];
  }
  if (record) {
    pending_metrics_.counts +=
        n + (static_cast<std::uint64_t>(deletes) << 32);
    if ((pending_metrics_.counts & 0xffffffffULL) >= kMetricsFlushInterval)
      flush_metrics();
  }

  // Pass 2: counting-sort the update indices by level. The sketch is linear,
  // so any apply order yields bit-identical final state — and level-major
  // order turns a random walk over every allocated level (megabytes) into a
  // sweep of one ~per-level region at a time, which is what makes the batch
  // path faster than element-at-a-time ingest on sketches larger than cache.
  for (std::size_t l = 1; l < level_counts.size(); ++l)
    level_counts[l] += level_counts[l - 1];
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    order[level_counts[levels[i]]++] = static_cast<std::uint32_t>(i);

  // Pass 3: apply level-major, table-major within a level. Bucket indices
  // for the level group are materialized once (each is two 64-bit mixes, and
  // the prefetch lookahead would otherwise hash every key twice), then the
  // apply runs with a rolling software prefetch kPrefetchAhead buckets ahead
  // — far enough to cover a memory round-trip, close enough that the
  // prefetched lines (a signature spans several cache lines) are still
  // resident when the apply reaches them.
  std::size_t begin = 0;
  while (begin < n) {
    const int level = static_cast<int>(levels[order[begin]]);
    std::size_t end = begin + 1;
    while (end < n && levels[order[end]] == levels[order[begin]]) ++end;
    const std::size_t group = end - begin;
    const std::size_t tables = static_cast<std::size_t>(params_.num_tables);
    buckets.resize(group * tables);
    for (std::size_t j = 0; j < tables; ++j)
      for (std::size_t i = 0; i < group; ++i)
        buckets[j * group + i] = bucket_hashes_.bucket_mixed(
            static_cast<int>(j), mixed[order[begin + i]]);
    for (std::size_t j = 0; j < tables; ++j) {
      const std::uint32_t* row = buckets.data() + j * group;
      for (std::size_t i = 0; i < group; ++i) {
        if (i + kPrefetchAhead < group)
          prefetch_write(
              counters_at(level, static_cast<int>(j), row[i + kPrefetchAhead]),
              bytes);
        const std::uint32_t u = order[begin + i];
        CountSignatureView sig(
            counters_at(level, static_cast<int>(j), row[i]), params_.key_bits);
        sig.add(keys[u], updates[u].delta);
      }
    }
    begin = end;
  }
}

void DistinctCountSketch::flush_metrics() const {
  if (pending_metrics_.counts == 0) return;
  auto& metrics = obs::SketchMetrics::get();
  metrics.updates.inc(pending_metrics_.counts & 0xffffffffULL);
  const std::uint64_t deletes = pending_metrics_.counts >> 32;
  if (deletes > 0) metrics.deletes.inc(deletes);
  for (std::size_t l = 0; l < pending_metrics_.level_hits.size(); ++l) {
    // level_hits(l) folds l > kMaxLevelLabel into the "32+" series.
    if (pending_metrics_.level_hits[l] != 0)
      metrics.level_hits(static_cast<int>(l)).inc(
          pending_metrics_.level_hits[l]);
  }
  pending_metrics_ = {};
}

void DistinctCountSketch::apply_to_table(int level, int table, PairKey key,
                                         int delta) {
  ensure_level(level);
  CountSignatureView sig(counters_at(level, table, bucket_of(table, key)),
                         params_.key_bits);
  sig.add(key, delta);
}

BucketClass DistinctCountSketch::classify_bucket(int level, int table,
                                                 std::uint32_t bucket) const {
  if (!level_allocated(level)) return {BucketState::kEmpty, 0};
  CountSignatureView sig(
      const_cast<std::int64_t*>(counters_at(level, table, bucket)),
      params_.key_bits);
  return sig.classify();
}

std::vector<PairKey> DistinctCountSketch::level_sample(int level) const {
  std::vector<PairKey> sample;
  if (!level_allocated(level)) return sample;
  std::unordered_set<PairKey> seen;
  // Classification tallies are batched locally and flushed once per level so
  // instrumentation adds no atomics to the inner scan.
  std::uint64_t empty = 0, singleton = 0, collision = 0, ghosts = 0;
  for (int j = 0; j < params_.num_tables; ++j) {
    for (std::uint32_t b = 0; b < params_.buckets_per_table; ++b) {
      const BucketClass cls = classify_bucket(level, j, b);
      if (cls.state != BucketState::kSingleton) {
        (cls.state == BucketState::kEmpty ? empty : collision)++;
        continue;
      }
      ++singleton;
      // Defensive re-hash: a recovered key must map back to this very bucket.
      // Valid update streams can never fail this check; streams that delete
      // items they never inserted could fabricate "ghost" singletons.
      if (level_of(cls.key) != level || bucket_of(j, cls.key) != b) {
        ++ghosts;
        continue;
      }
      if (seen.insert(cls.key).second) sample.push_back(cls.key);
    }
  }
  if (obs::recording()) {
    auto& metrics = obs::SketchMetrics::get();
    metrics.query_empty.inc(empty);
    metrics.query_singleton.inc(singleton);
    metrics.query_collision.inc(collision);
    metrics.recovery_failures.inc(ghosts);
  }
  return sample;
}

DistinctCountSketch::DistinctSample DistinctCountSketch::collect_sample() const {
  DistinctSample result;
  const std::uint64_t target = params_.sample_target();
  int level = params_.max_level;
  for (; level >= 0; --level) {
    auto keys = level_sample(level);
    result.keys.insert(result.keys.end(), keys.begin(), keys.end());
    if (result.keys.size() >= target) break;
  }
  // If the stream is small enough that every level was consumed, the sample
  // holds (nearly) all active pairs at sampling probability 1.
  result.inference_level = std::max(level, 0);
  return result;
}

double linear_count_estimate(std::uint64_t occupied, std::uint32_t buckets) {
  if (occupied == 0) return 0.0;
  const double s = static_cast<double>(buckets);
  const double o = occupied >= buckets ? s - 0.5 : static_cast<double>(occupied);
  return std::log(1.0 - o / s) / std::log(1.0 - 1.0 / s);
}

std::vector<TopKEntry> rank_sample_groups(const std::vector<PairKey>& sample,
                                          double scale, std::size_t k) {
  std::unordered_map<Addr, std::uint64_t> counts;
  counts.reserve(sample.size());
  for (const PairKey key : sample) ++counts[pair_group(key)];

  std::vector<TopKEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [group, freq] : counts)
    entries.push_back({group, static_cast<std::uint64_t>(std::llround(
                                  static_cast<double>(freq) * scale))});

  const auto order = [](const TopKEntry& a, const TopKEntry& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate
                                    : a.group < b.group;
  };
  if (k > 0 && k < entries.size()) {
    std::partial_sort(entries.begin(),
                      entries.begin() + static_cast<std::ptrdiff_t>(k),
                      entries.end(), order);
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(), order);
  }
  return entries;
}

std::uint64_t DistinctCountSketch::occupied_buckets(int level,
                                                    int table) const {
  if (!level_allocated(level)) return 0;
  std::uint64_t occupied = 0;
  for (std::uint32_t b = 0; b < params_.buckets_per_table; ++b)
    if (classify_bucket(level, table, b).state != BucketState::kEmpty)
      ++occupied;
  return occupied;
}

double DistinctCountSketch::estimate_level_population(int level) const {
  double total = 0.0;
  for (int j = 0; j < params_.num_tables; ++j)
    total += linear_count_estimate(occupied_buckets(level, j),
                                   params_.buckets_per_table);
  return total / static_cast<double>(params_.num_tables);
}

double DistinctCountSketch::correction_factor(
    int level, std::uint64_t sample_size) const {
  if (!params_.collision_correction || sample_size == 0) return 1.0;
  double population = 0.0;
  for (int l = params_.max_level; l >= level; --l)
    population += estimate_level_population(l);
  const double factor = population / static_cast<double>(sample_size);
  return factor < 1.0 ? 1.0 : factor;
}

TopKResult DistinctCountSketch::top_k(std::size_t k) const {
  flush_metrics();  // query-time snapshots see every update so far
  obs::ScopedTimer timer(obs::SketchMetrics::get().query_ns);
  const DistinctSample sample = collect_sample();
  TopKResult result;
  result.inference_level = sample.inference_level;
  result.sample_size = sample.keys.size();
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  result.entries = rank_sample_groups(sample.keys, scale, k);
  return result;
}

std::vector<TopKEntry> DistinctCountSketch::groups_above(
    std::uint64_t tau) const {
  flush_metrics();  // query-time snapshots see every update so far
  obs::ScopedTimer timer(obs::SketchMetrics::get().query_ns);
  const DistinctSample sample = collect_sample();
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  auto entries = rank_sample_groups(sample.keys, scale, 0);
  const auto cut = std::find_if(entries.begin(), entries.end(),
                                [tau](const TopKEntry& e) {
                                  return e.estimate < tau;
                                });
  entries.erase(cut, entries.end());
  return entries;
}

std::uint64_t DistinctCountSketch::estimate_distinct_pairs() const {
  flush_metrics();  // query-time snapshots see every update so far
  obs::ScopedTimer timer(obs::SketchMetrics::get().query_ns);
  const DistinctSample sample = collect_sample();
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(sample.keys.size()) * scale));
}

std::uint64_t DistinctCountSketch::estimate_frequency(Addr group) const {
  flush_metrics();  // query-time snapshots see every update so far
  obs::ScopedTimer timer(obs::SketchMetrics::get().query_ns);
  const DistinctSample sample = collect_sample();
  std::uint64_t in_sample = 0;
  for (const PairKey key : sample.keys)
    if (pair_group(key) == group) ++in_sample;
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(in_sample) * scale));
}

void DistinctCountSketch::merge(const DistinctCountSketch& other) {
  if (!(params_ == other.params_))
    throw std::invalid_argument(
        "DistinctCountSketch::merge: parameter/seed mismatch");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto& src = other.levels_[l];
    if (src.empty()) continue;
    auto& dst = levels_[l];
    if (dst.empty()) {
      dst = src;
    } else {
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
    }
  }
}

void DistinctCountSketch::subtract(const DistinctCountSketch& other) {
  if (!(params_ == other.params_))
    throw std::invalid_argument(
        "DistinctCountSketch::subtract: parameter/seed mismatch");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto& src = other.levels_[l];
    if (src.empty()) continue;
    auto& dst = levels_[l];
    if (dst.empty()) dst.assign(params_.counters_per_level(), 0);
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] -= src[i];
  }
}

void DistinctCountSketch::serialize(BinaryWriter& writer) const {
  writer.crc_reset();  // footer covers the header too
  write_header(writer, kSketchMagic, kSketchVersion);
  writer.i32(params_.num_tables);
  writer.u32(params_.buckets_per_table);
  writer.i32(params_.key_bits);
  writer.i32(params_.max_level);
  writer.f64(params_.epsilon);
  writer.f64(params_.sample_target_fraction);
  writer.u8(params_.collision_correction ? 1 : 0);
  writer.u64(params_.seed);
  std::uint64_t allocated = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l)
    if (!levels_[l].empty()) allocated |= (1ULL << l);
  writer.u64(allocated);
  for (const auto& level : levels_)
    if (!level.empty()) writer.pod_vector(level);
  write_crc_footer(writer);
}

DistinctCountSketch DistinctCountSketch::deserialize(BinaryReader& reader) {
  reader.crc_reset();
  const std::uint8_t version = read_header(reader, kSketchMagic, kSketchVersion);
  DcsParams params;
  params.num_tables = reader.i32();
  params.buckets_per_table = reader.u32();
  params.key_bits = reader.i32();
  params.max_level = reader.i32();
  params.epsilon = reader.f64();
  params.sample_target_fraction = reader.f64();
  params.collision_correction = reader.u8() != 0;
  params.seed = reader.u64();
  params.validate();
  DistinctCountSketch sketch(params);
  const std::uint64_t allocated = reader.u64();
  for (std::size_t l = 0; l < sketch.levels_.size(); ++l) {
    if ((allocated & (1ULL << l)) == 0) continue;
    sketch.levels_[l] = reader.pod_vector<std::int64_t>();
    if (sketch.levels_[l].size() != params.counters_per_level())
      throw SerializeError("DistinctCountSketch: level size mismatch");
  }
  // v1 blobs predate the integrity footer; everything newer must verify.
  if (version >= 2) read_crc_footer(reader);
  return sketch;
}

bool operator==(const DistinctCountSketch& a, const DistinctCountSketch& b) {
  if (!(a.params_ == b.params_)) return false;
  const auto all_zero = [](const std::vector<std::int64_t>& v) {
    return std::all_of(v.begin(), v.end(), [](std::int64_t c) { return c == 0; });
  };
  for (std::size_t l = 0; l < a.levels_.size(); ++l) {
    const auto& la = a.levels_[l];
    const auto& lb = b.levels_[l];
    if (la.empty() && lb.empty()) continue;
    if (la.empty()) {
      if (!all_zero(lb)) return false;
    } else if (lb.empty()) {
      if (!all_zero(la)) return false;
    } else if (la != lb) {
      return false;
    }
  }
  return true;
}

int DistinctCountSketch::allocated_levels() const noexcept {
  int count = 0;
  for (const auto& level : levels_)
    if (!level.empty()) ++count;
  return count;
}

std::size_t DistinctCountSketch::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& level : levels_)
    bytes += level.capacity() * sizeof(std::int64_t);
  return bytes;
}

bool DistinctCountSketch::validate() const {
  for (int l = 0; l <= params_.max_level; ++l) {
    if (!level_allocated(l)) continue;
    for (int j = 0; j < params_.num_tables; ++j) {
      for (std::uint32_t b = 0; b < params_.buckets_per_table; ++b) {
        const std::int64_t* c = counters_at(l, j, b);
        const std::int64_t total = c[0];
        if (total < 0) return false;
        for (int i = 1; i <= params_.key_bits; ++i)
          if (c[i] < 0 || c[i] > total) return false;
      }
    }
  }
  return true;
}

}  // namespace dcs
