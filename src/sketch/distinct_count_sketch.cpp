#include "sketch/distinct_count_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/instruments.hpp"

namespace dcs {

namespace {
constexpr std::uint32_t kSketchMagic = 0x53434344;  // "DCCS"
constexpr std::uint8_t kSketchVersion = 1;

// Seed-derivation constants: keep the level hash and the bucket family
// independent even though both derive from the same master seed.
constexpr std::uint64_t kLevelSeedSalt = 0x1b873593a4093822ULL;
constexpr std::uint64_t kBucketSeedSalt = 0xcc9e2d51b5297a4dULL;
}  // namespace

DistinctCountSketch::DistinctCountSketch(DcsParams params)
    : params_(params),
      level_hash_(mix64(params.seed ^ kLevelSeedSalt), params.max_level),
      bucket_hashes_(mix64(params.seed ^ kBucketSeedSalt), params.num_tables,
                     params.buckets_per_table),
      levels_(static_cast<std::size_t>(params.max_level) + 1) {
  params_.validate();
}

void DistinctCountSketch::check_key(PairKey key) const {
  if (params_.key_bits < 64 && (key >> params_.key_bits) != 0)
    throw std::invalid_argument(
        "DistinctCountSketch: key does not fit in key_bits");
}

void DistinctCountSketch::ensure_level(int level) {
  auto& storage = levels_[static_cast<std::size_t>(level)];
  if (storage.empty()) {
    storage.assign(params_.counters_per_level(), 0);
    if (obs::recording()) obs::SketchMetrics::get().level_allocations.inc();
  }
}

std::int64_t* DistinctCountSketch::counters_at(int level, int table,
                                               std::uint32_t bucket) {
  auto& storage = levels_[static_cast<std::size_t>(level)];
  const std::size_t width = params_.signature_width();
  const std::size_t index =
      (static_cast<std::size_t>(table) * params_.buckets_per_table + bucket) *
      width;
  return storage.data() + index;
}

const std::int64_t* DistinctCountSketch::counters_at(
    int level, int table, std::uint32_t bucket) const {
  const auto& storage = levels_[static_cast<std::size_t>(level)];
  const std::size_t width = params_.signature_width();
  const std::size_t index =
      (static_cast<std::size_t>(table) * params_.buckets_per_table + bucket) *
      width;
  return storage.data() + index;
}

void DistinctCountSketch::update(Addr group, Addr member, int delta) {
  update_key(pack_pair(group, member), delta);
}

void DistinctCountSketch::update_key(PairKey key, int delta) {
  check_key(key);
  const int level = level_of(key);
  ensure_level(level);
  if (obs::recording()) {
    ++pending_metrics_.updates;
    if (delta < 0) ++pending_metrics_.deletes;
    ++pending_metrics_.level_hits[static_cast<std::size_t>(
        level > obs::SketchMetrics::kMaxLevelLabel
            ? obs::SketchMetrics::kMaxLevelLabel
            : level)];
    if (pending_metrics_.updates >= kMetricsFlushInterval) flush_metrics();
  }
  for (int j = 0; j < params_.num_tables; ++j) {
    CountSignatureView sig(counters_at(level, j, bucket_of(j, key)),
                           params_.key_bits);
    sig.add(key, delta);
  }
}

void DistinctCountSketch::flush_metrics() const {
  if (pending_metrics_.updates == 0) return;
  auto& metrics = obs::SketchMetrics::get();
  metrics.updates.inc(pending_metrics_.updates);
  if (pending_metrics_.deletes > 0)
    metrics.deletes.inc(pending_metrics_.deletes);
  for (std::size_t l = 0; l < pending_metrics_.level_hits.size(); ++l) {
    if (pending_metrics_.level_hits[l] != 0)
      metrics.level_hits(static_cast<int>(l)).inc(
          pending_metrics_.level_hits[l]);
  }
  pending_metrics_ = {};
}

void DistinctCountSketch::apply_to_table(int level, int table, PairKey key,
                                         int delta) {
  ensure_level(level);
  CountSignatureView sig(counters_at(level, table, bucket_of(table, key)),
                         params_.key_bits);
  sig.add(key, delta);
}

BucketClass DistinctCountSketch::classify_bucket(int level, int table,
                                                 std::uint32_t bucket) const {
  if (!level_allocated(level)) return {BucketState::kEmpty, 0};
  CountSignatureView sig(
      const_cast<std::int64_t*>(counters_at(level, table, bucket)),
      params_.key_bits);
  return sig.classify();
}

std::vector<PairKey> DistinctCountSketch::level_sample(int level) const {
  std::vector<PairKey> sample;
  if (!level_allocated(level)) return sample;
  std::unordered_set<PairKey> seen;
  // Classification tallies are batched locally and flushed once per level so
  // instrumentation adds no atomics to the inner scan.
  std::uint64_t empty = 0, singleton = 0, collision = 0, ghosts = 0;
  for (int j = 0; j < params_.num_tables; ++j) {
    for (std::uint32_t b = 0; b < params_.buckets_per_table; ++b) {
      const BucketClass cls = classify_bucket(level, j, b);
      if (cls.state != BucketState::kSingleton) {
        (cls.state == BucketState::kEmpty ? empty : collision)++;
        continue;
      }
      ++singleton;
      // Defensive re-hash: a recovered key must map back to this very bucket.
      // Valid update streams can never fail this check; streams that delete
      // items they never inserted could fabricate "ghost" singletons.
      if (level_of(cls.key) != level || bucket_of(j, cls.key) != b) {
        ++ghosts;
        continue;
      }
      if (seen.insert(cls.key).second) sample.push_back(cls.key);
    }
  }
  if (obs::recording()) {
    auto& metrics = obs::SketchMetrics::get();
    metrics.query_empty.inc(empty);
    metrics.query_singleton.inc(singleton);
    metrics.query_collision.inc(collision);
    metrics.recovery_failures.inc(ghosts);
  }
  return sample;
}

DistinctCountSketch::DistinctSample DistinctCountSketch::collect_sample() const {
  DistinctSample result;
  const std::uint64_t target = params_.sample_target();
  int level = params_.max_level;
  for (; level >= 0; --level) {
    auto keys = level_sample(level);
    result.keys.insert(result.keys.end(), keys.begin(), keys.end());
    if (result.keys.size() >= target) break;
  }
  // If the stream is small enough that every level was consumed, the sample
  // holds (nearly) all active pairs at sampling probability 1.
  result.inference_level = std::max(level, 0);
  return result;
}

double linear_count_estimate(std::uint64_t occupied, std::uint32_t buckets) {
  if (occupied == 0) return 0.0;
  const double s = static_cast<double>(buckets);
  const double o = occupied >= buckets ? s - 0.5 : static_cast<double>(occupied);
  return std::log(1.0 - o / s) / std::log(1.0 - 1.0 / s);
}

std::vector<TopKEntry> rank_sample_groups(const std::vector<PairKey>& sample,
                                          double scale, std::size_t k) {
  std::unordered_map<Addr, std::uint64_t> counts;
  counts.reserve(sample.size());
  for (const PairKey key : sample) ++counts[pair_group(key)];

  std::vector<TopKEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [group, freq] : counts)
    entries.push_back({group, static_cast<std::uint64_t>(std::llround(
                                  static_cast<double>(freq) * scale))});

  const auto order = [](const TopKEntry& a, const TopKEntry& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate
                                    : a.group < b.group;
  };
  if (k > 0 && k < entries.size()) {
    std::partial_sort(entries.begin(),
                      entries.begin() + static_cast<std::ptrdiff_t>(k),
                      entries.end(), order);
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(), order);
  }
  return entries;
}

std::uint64_t DistinctCountSketch::occupied_buckets(int level,
                                                    int table) const {
  if (!level_allocated(level)) return 0;
  std::uint64_t occupied = 0;
  for (std::uint32_t b = 0; b < params_.buckets_per_table; ++b)
    if (classify_bucket(level, table, b).state != BucketState::kEmpty)
      ++occupied;
  return occupied;
}

double DistinctCountSketch::estimate_level_population(int level) const {
  double total = 0.0;
  for (int j = 0; j < params_.num_tables; ++j)
    total += linear_count_estimate(occupied_buckets(level, j),
                                   params_.buckets_per_table);
  return total / static_cast<double>(params_.num_tables);
}

double DistinctCountSketch::correction_factor(
    int level, std::uint64_t sample_size) const {
  if (!params_.collision_correction || sample_size == 0) return 1.0;
  double population = 0.0;
  for (int l = params_.max_level; l >= level; --l)
    population += estimate_level_population(l);
  const double factor = population / static_cast<double>(sample_size);
  return factor < 1.0 ? 1.0 : factor;
}

TopKResult DistinctCountSketch::top_k(std::size_t k) const {
  flush_metrics();  // query-time snapshots see every update so far
  obs::ScopedTimer timer(obs::SketchMetrics::get().query_ns);
  const DistinctSample sample = collect_sample();
  TopKResult result;
  result.inference_level = sample.inference_level;
  result.sample_size = sample.keys.size();
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  result.entries = rank_sample_groups(sample.keys, scale, k);
  return result;
}

std::vector<TopKEntry> DistinctCountSketch::groups_above(
    std::uint64_t tau) const {
  flush_metrics();
  const DistinctSample sample = collect_sample();
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  auto entries = rank_sample_groups(sample.keys, scale, 0);
  const auto cut = std::find_if(entries.begin(), entries.end(),
                                [tau](const TopKEntry& e) {
                                  return e.estimate < tau;
                                });
  entries.erase(cut, entries.end());
  return entries;
}

std::uint64_t DistinctCountSketch::estimate_distinct_pairs() const {
  const DistinctSample sample = collect_sample();
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(sample.keys.size()) * scale));
}

std::uint64_t DistinctCountSketch::estimate_frequency(Addr group) const {
  const DistinctSample sample = collect_sample();
  std::uint64_t in_sample = 0;
  for (const PairKey key : sample.keys)
    if (pair_group(key) == group) ++in_sample;
  const double scale =
      std::ldexp(correction_factor(sample.inference_level, sample.keys.size()),
                 sample.inference_level);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(in_sample) * scale));
}

void DistinctCountSketch::merge(const DistinctCountSketch& other) {
  if (!(params_ == other.params_))
    throw std::invalid_argument(
        "DistinctCountSketch::merge: parameter/seed mismatch");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto& src = other.levels_[l];
    if (src.empty()) continue;
    auto& dst = levels_[l];
    if (dst.empty()) {
      dst = src;
    } else {
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
    }
  }
}

void DistinctCountSketch::subtract(const DistinctCountSketch& other) {
  if (!(params_ == other.params_))
    throw std::invalid_argument(
        "DistinctCountSketch::subtract: parameter/seed mismatch");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto& src = other.levels_[l];
    if (src.empty()) continue;
    auto& dst = levels_[l];
    if (dst.empty()) dst.assign(params_.counters_per_level(), 0);
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] -= src[i];
  }
}

void DistinctCountSketch::serialize(BinaryWriter& writer) const {
  write_header(writer, kSketchMagic, kSketchVersion);
  writer.i32(params_.num_tables);
  writer.u32(params_.buckets_per_table);
  writer.i32(params_.key_bits);
  writer.i32(params_.max_level);
  writer.f64(params_.epsilon);
  writer.f64(params_.sample_target_fraction);
  writer.u8(params_.collision_correction ? 1 : 0);
  writer.u64(params_.seed);
  std::uint64_t allocated = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l)
    if (!levels_[l].empty()) allocated |= (1ULL << l);
  writer.u64(allocated);
  for (const auto& level : levels_)
    if (!level.empty()) writer.pod_vector(level);
}

DistinctCountSketch DistinctCountSketch::deserialize(BinaryReader& reader) {
  read_header(reader, kSketchMagic, kSketchVersion);
  DcsParams params;
  params.num_tables = reader.i32();
  params.buckets_per_table = reader.u32();
  params.key_bits = reader.i32();
  params.max_level = reader.i32();
  params.epsilon = reader.f64();
  params.sample_target_fraction = reader.f64();
  params.collision_correction = reader.u8() != 0;
  params.seed = reader.u64();
  params.validate();
  DistinctCountSketch sketch(params);
  const std::uint64_t allocated = reader.u64();
  for (std::size_t l = 0; l < sketch.levels_.size(); ++l) {
    if ((allocated & (1ULL << l)) == 0) continue;
    sketch.levels_[l] = reader.pod_vector<std::int64_t>();
    if (sketch.levels_[l].size() != params.counters_per_level())
      throw SerializeError("DistinctCountSketch: level size mismatch");
  }
  return sketch;
}

bool operator==(const DistinctCountSketch& a, const DistinctCountSketch& b) {
  if (!(a.params_ == b.params_)) return false;
  const auto all_zero = [](const std::vector<std::int64_t>& v) {
    return std::all_of(v.begin(), v.end(), [](std::int64_t c) { return c == 0; });
  };
  for (std::size_t l = 0; l < a.levels_.size(); ++l) {
    const auto& la = a.levels_[l];
    const auto& lb = b.levels_[l];
    if (la.empty() && lb.empty()) continue;
    if (la.empty()) {
      if (!all_zero(lb)) return false;
    } else if (lb.empty()) {
      if (!all_zero(la)) return false;
    } else if (la != lb) {
      return false;
    }
  }
  return true;
}

int DistinctCountSketch::allocated_levels() const noexcept {
  int count = 0;
  for (const auto& level : levels_)
    if (!level.empty()) ++count;
  return count;
}

std::size_t DistinctCountSketch::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& level : levels_)
    bytes += level.capacity() * sizeof(std::int64_t);
  return bytes;
}

bool DistinctCountSketch::validate() const {
  for (int l = 0; l <= params_.max_level; ++l) {
    if (!level_allocated(l)) continue;
    for (int j = 0; j < params_.num_tables; ++j) {
      for (std::uint32_t b = 0; b < params_.buckets_per_table; ++b) {
        const std::int64_t* c = counters_at(l, j, b);
        const std::int64_t total = c[0];
        if (total < 0) return false;
        for (int i = 1; i <= params_.key_bits; ++i)
          if (c[i] < 0 || c[i] > total) return false;
      }
    }
  }
  return true;
}

}  // namespace dcs
