// Indexed binary max-heap over (key, priority) pairs.
//
// Backs the per-level topDestHeap structures of the Tracking Distinct-Count
// Sketch (paper §5): destinations keyed by their occurrence frequency in the
// maintained distinct sample. Beyond a plain priority queue it supports
//   * add(key, delta): create / adjust / erase-on-zero in O(log n);
//   * priority lookups in O(1) expected;
//   * non-destructive top_k in O(k log k) via a heap-order frontier walk,
//     replacing the paper's destructive deleteMax loop.
// Ordering is deterministic: priority descending, then key ascending — the
// same total order the BaseTopk estimator uses, so both estimators return
// byte-identical answers on identical sketch state (a tested invariant).
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace dcs {

template <typename Key>
class IndexedMaxHeap {
 public:
  struct Entry {
    Key key{};
    std::int64_t priority = 0;
  };

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  /// Current priority of `key`, or 0 if absent.
  std::int64_t priority(const Key& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : heap_[it->second].priority;
  }

  bool contains(const Key& key) const { return index_.count(key) != 0; }

  /// Adjust `key`'s priority by `delta`. A key reaching priority 0 is erased;
  /// a new key is created at priority `delta` (which must then be > 0).
  void add(const Key& key, std::int64_t delta) {
    if (delta == 0) return;
    const auto it = index_.find(key);
    if (it == index_.end()) {
      if (delta < 0)
        throw std::logic_error("IndexedMaxHeap: negative priority for new key");
      heap_.push_back({key, delta});
      index_[key] = heap_.size() - 1;
      sift_up(heap_.size() - 1);
      return;
    }
    const std::size_t pos = it->second;
    const std::int64_t updated = heap_[pos].priority + delta;
    if (updated < 0)
      throw std::logic_error("IndexedMaxHeap: priority dropped below zero");
    if (updated == 0) {
      erase_at(pos);
      return;
    }
    heap_[pos].priority = updated;
    if (delta > 0)
      sift_up(pos);
    else
      sift_down(pos);
  }

  /// Remove `key` entirely (no-op if absent).
  void erase(const Key& key) {
    const auto it = index_.find(key);
    if (it != index_.end()) erase_at(it->second);
  }

  /// Maximum entry. Precondition: !empty().
  const Entry& top() const {
    assert(!heap_.empty());
    return heap_.front();
  }

  /// The k largest entries in descending order, without modifying the heap.
  /// Runs a best-first walk over the implicit heap tree: O(k log k).
  std::vector<Entry> top_k(std::size_t k) const {
    std::vector<Entry> out;
    if (heap_.empty() || k == 0) return out;
    auto cmp = [this](std::size_t a, std::size_t b) {
      return less(heap_[a], heap_[b]);
    };
    std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(cmp)>
        frontier(cmp);
    frontier.push(0);
    while (!frontier.empty() && out.size() < k) {
      const std::size_t pos = frontier.top();
      frontier.pop();
      out.push_back(heap_[pos]);
      const std::size_t left = 2 * pos + 1;
      const std::size_t right = left + 1;
      if (left < heap_.size()) frontier.push(left);
      if (right < heap_.size()) frontier.push(right);
    }
    return out;
  }

  /// Verify the heap property and the position index; used by tests.
  bool validate() const {
    if (index_.size() != heap_.size()) return false;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const auto it = index_.find(heap_[i].key);
      if (it == index_.end() || it->second != i) return false;
      if (heap_[i].priority <= 0) return false;
      if (i > 0 && less(heap_[parent(i)], heap_[i])) return false;
    }
    return true;
  }

  std::size_t memory_bytes() const noexcept {
    return heap_.capacity() * sizeof(Entry) +
           index_.size() * (sizeof(Key) + sizeof(std::size_t) + 16);
  }

 private:
  // Strict-weak "a precedes-not b" for max-heap: true when a < b in heap
  // order (priority asc, then key desc).
  static bool less(const Entry& a, const Entry& b) noexcept {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.key > b.key;
  }

  static std::size_t parent(std::size_t i) noexcept { return (i - 1) / 2; }

  void sift_up(std::size_t pos) {
    while (pos > 0 && less(heap_[parent(pos)], heap_[pos])) {
      swap_entries(pos, parent(pos));
      pos = parent(pos);
    }
  }

  void sift_down(std::size_t pos) {
    for (;;) {
      std::size_t largest = pos;
      const std::size_t left = 2 * pos + 1;
      const std::size_t right = left + 1;
      if (left < heap_.size() && less(heap_[largest], heap_[left]))
        largest = left;
      if (right < heap_.size() && less(heap_[largest], heap_[right]))
        largest = right;
      if (largest == pos) return;
      swap_entries(pos, largest);
      pos = largest;
    }
  }

  void erase_at(std::size_t pos) {
    index_.erase(heap_[pos].key);
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
      heap_[pos] = heap_[last];
      index_[heap_[pos].key] = pos;
      heap_.pop_back();
      // The moved entry may need to go either way.
      sift_down(pos);
      sift_up(pos);
    } else {
      heap_.pop_back();
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    index_[heap_[a].key] = a;
    index_[heap_[b].key] = b;
  }

  std::vector<Entry> heap_;
  std::unordered_map<Key, std::size_t> index_;
};

}  // namespace dcs
