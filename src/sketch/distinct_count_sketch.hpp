// The basic Distinct-Count Sketch (paper §3–§4).
//
// Structure: a first-level geometric hash h with Pr[h(key) = l] = 2^-(l+1)
// partitions the key domain across levels; each level holds r independent
// second-level hash tables of s buckets; each bucket holds a count signature
// (see count_signature.hpp). The sketch is *linear* in the update stream:
// every counter is a signed sum of ±1 contributions, so deletions exactly
// cancel insertions and two sketches with identical parameters merge by
// adding counters — which is how multiple router-level monitors combine into
// one network-wide view (src/distributed).
//
// Query (BaseTopk, Fig. 3): walk levels top-down collecting singleton keys —
// a *distinct sample* of the active (net-positive) pairs — until the sample
// reaches the target size; the k most frequent groups in the sample, scaled
// by 2^inference_level, estimate the top-k distinct-member frequencies.
//
// Note on the paper's pseudocode: Fig. 3 decrements b once more before
// scaling by 2^b, which under-scales by 2 relative to the paper's own
// analysis (E[u_b] = U/2^b for the sample collected from levels >= b). We
// scale by 2^l for the lowest level l actually included (see DESIGN.md);
// unit tests verify unbiasedness.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/serialize.hpp"
#include "sketch/count_signature.hpp"
#include "sketch/dcs_params.hpp"
#include "sketch/top_k.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class DistinctCountSketch final : public TopKEstimator {
 public:
  explicit DistinctCountSketch(DcsParams params = {});

  // --- streaming updates -------------------------------------------------
  /// Process one flow update; for DDoS tracking group = destination and
  /// member = source.
  void update(Addr group, Addr member, int delta) override;

  /// Process an update for an already-packed key. Throws if the key does not
  /// fit in params().key_bits.
  void update_key(PairKey key, int delta);

  /// Batched ingest: validate the whole span and precompute every level
  /// hash up front, then apply level-major (counting-sorted) with the
  /// touched count-signature lines software-prefetched ahead of the applies,
  /// amortizing the telemetry tallies to once per span. The sketch is
  /// linear, so reordering is sound and the final state is bit-identical to
  /// calling update() once per element in order (tested via operator==).
  /// A key that does not fit key_bits throws before anything is applied,
  /// leaving the sketch unchanged for the entire span.
  void update_batch(std::span<const FlowUpdate> updates);

  /// Block size used by order-preserving batch consumers (TrackingDcs):
  /// hashes for this many updates are computed and prefetched before any is
  /// applied.
  static constexpr std::size_t kBatchBlock = 64;
  /// Rolling prefetch distance inside a block, in (update, table) targets:
  /// target i + kPrefetchAhead is prefetched while target i is applied. Deep
  /// enough to hide a memory round-trip behind several signature applies,
  /// shallow enough that prefetched lines (a signature spans multiple cache
  /// lines) are not evicted before use.
  static constexpr std::size_t kPrefetchAhead = 8;

  // --- queries -----------------------------------------------------------
  /// BaseTopk (Fig. 3): approximate top-k groups by distinct-member count.
  TopKResult top_k(std::size_t k) const override;

  /// Threshold variant (paper footnote 3): every group whose estimated
  /// frequency is >= tau, descending.
  std::vector<TopKEntry> groups_above(std::uint64_t tau) const;

  /// FM-style estimate of the total number of distinct net-positive pairs.
  std::uint64_t estimate_distinct_pairs() const;

  /// Point query: estimated distinct-member frequency of one group.
  std::uint64_t estimate_frequency(Addr group) const;

  /// A distinct sample of active pairs plus the level it was inferred at
  /// (sampling probability 2^-inference_level per pair).
  struct DistinctSample {
    std::vector<PairKey> keys;
    int inference_level = 0;
  };
  DistinctSample collect_sample() const;

  /// GetdSample (Fig. 4): all recoverable singleton keys at one level.
  std::vector<PairKey> level_sample(int level) const;

  /// Number of non-empty second-level buckets at (level, table); the input
  /// to linear-counting collision correction.
  std::uint64_t occupied_buckets(int level, int table) const;

  /// Linear-counting estimate of the number of distinct keys hashed into
  /// `level`, from bucket occupancy averaged over the r tables. Sees through
  /// collisions that singleton recovery misses.
  double estimate_level_population(int level) const;

  /// Multiplier applied to sample-derived estimates when
  /// params().collision_correction is set: (Σ_{l >= level} n̂_l) / sample,
  /// clamped to >= 1. Returns 1 when correction is disabled or the sample is
  /// empty.
  double correction_factor(int level, std::uint64_t sample_size) const;

  // --- structural access (used by TrackingDcs and tests) ------------------
  int level_of(PairKey key) const noexcept { return level_hash_(key); }

  std::uint32_t bucket_of(int table, PairKey key) const noexcept {
    return bucket_hashes_.bucket(table, key);
  }

  /// Classify one second-level bucket (empty / singleton / collision).
  /// An unallocated level classifies as empty.
  BucketClass classify_bucket(int level, int table, std::uint32_t bucket) const;

  /// Apply `delta` for `key` to a single second-level table's signature,
  /// allocating the level lazily. TrackingDcs interleaves this with pre/post
  /// classification to maintain its incremental state.
  void apply_to_table(int level, int table, PairKey key, int delta);

  /// Prefetch the count-signature lines `key` touches at (level, table);
  /// a no-op for unallocated levels. The batched tracking ingest resolves a
  /// block's hashes first and prefetches here so the classify/apply reads
  /// that follow overlap their memory latency.
  void prefetch_bucket(int level, int table, PairKey key) const {
    if (!level_allocated(level)) return;
    prefetch_write(counters_at(level, table, bucket_of(table, key)),
                   params_.signature_width() * sizeof(std::int64_t));
  }

  // --- composition / persistence ------------------------------------------
  /// Add `other`'s counters into this sketch. Both sketches must have been
  /// built with identical parameters (including seed); throws otherwise.
  void merge(const DistinctCountSketch& other);

  /// Subtract `other`'s counters (linearity: the result is the sketch of the
  /// difference stream). Subtracting an earlier snapshot of the same stream
  /// yields the sketch of everything that arrived since — top-k over the
  /// difference finds the destinations with the most NEW distinct sources
  /// (epoch-based heavy-change detection, after Krishnamurthy et al.).
  /// Caveat: if pairs present in `other` were since deleted, the difference
  /// has net-negative pairs; such buckets classify as collisions (and ghost
  /// singletons are filtered by the recovery re-hash check), so use against
  /// a snapshot of the same monotonically-growing stream for exact semantics.
  void subtract(const DistinctCountSketch& other);

  void serialize(BinaryWriter& writer) const;
  static DistinctCountSketch deserialize(BinaryReader& reader);

  /// True iff params and all counters match (unallocated levels compare
  /// equal to all-zero levels).
  friend bool operator==(const DistinctCountSketch& a,
                         const DistinctCountSketch& b);

  // --- introspection -------------------------------------------------------
  const DcsParams& params() const noexcept { return params_; }
  bool level_allocated(int level) const noexcept {
    return !levels_[static_cast<std::size_t>(level)].empty();
  }
  int allocated_levels() const noexcept;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "dcs-basic"; }

  /// Scan all allocated buckets for signatures that no valid update stream
  /// can produce (negative totals, bit counts outside [0, total]); returns
  /// true when clean. O(size of sketch) — a debugging aid, not a query.
  bool validate() const;

 private:
  std::int64_t* counters_at(int level, int table, std::uint32_t bucket);
  const std::int64_t* counters_at(int level, int table,
                                  std::uint32_t bucket) const;
  void ensure_level(int level);
  void check_key(PairKey key) const;
  void flush_metrics() const;

  /// Update-path telemetry tallied locally (plain increments) and flushed
  /// to the global registry every kMetricsFlushInterval updates and at
  /// query time, keeping the per-update overhead inside the 5% budget
  /// (bench/obs_overhead). Counts may lag the registry by one batch
  /// between flushes. Mutable: queries flush from const paths.
  /// `counts` packs the update tally (low 32 bits) and delete tally (high
  /// 32 bits) so the per-update hot path pays one branchless add; the
  /// level histogram has one slot per sketch level (max_level <= 63) so no
  /// clamp is needed until flush time, where SketchMetrics::level_hits()
  /// folds deep levels into its "32+" label.
  struct PendingMetrics {
    std::uint64_t counts = 0;
    std::array<std::uint32_t, 64> level_hits{};
  };
  static constexpr std::uint32_t kMetricsFlushInterval = 1024;

  DcsParams params_;
  LevelHash level_hash_;
  BucketHashFamily bucket_hashes_;
  /// levels_[l] is either empty (never touched) or a flat array of
  /// r * s * (key_bits + 1) counters.
  std::vector<std::vector<std::int64_t>> levels_;
  mutable PendingMetrics pending_metrics_;
};

/// Shared by BaseTopk and the threshold query: count group occurrences in a
/// distinct sample and return entries with counts multiplied by `scale`
/// (2^level, times the collision-correction factor when enabled), ordered by
/// estimate descending then group ascending. `k == 0` means "all groups".
std::vector<TopKEntry> rank_sample_groups(const std::vector<PairKey>& sample,
                                          double scale, std::size_t k);

/// Linear-counting ("probabilistic counting with a bitmap") estimate of how
/// many distinct keys landed in a hash table of `buckets` buckets given that
/// `occupied` of them are non-empty: n̂ = ln(1 - o/s) / ln(1 - 1/s). A
/// saturated table (o == s) is clamped to o = s - 1/2.
double linear_count_estimate(std::uint64_t occupied, std::uint32_t buckets);

}  // namespace dcs
