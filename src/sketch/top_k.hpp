// Result types and the estimator interface shared by the sketches and the
// exact baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/flow_update.hpp"

namespace dcs {

/// One (group, estimated distinct-member frequency) answer entry.
/// For DDoS tracking the group is a destination address and the frequency is
/// its estimated number of distinct half-open sources.
struct TopKEntry {
  Addr group = 0;
  std::uint64_t estimate = 0;

  friend bool operator==(const TopKEntry&, const TopKEntry&) = default;
};

/// Full answer of a top-k query, including estimator diagnostics.
struct TopKResult {
  std::vector<TopKEntry> entries;  // descending by estimate, ties by group id
  /// First-level bucket index the distinct sample was inferred at; estimates
  /// are sample frequencies scaled by 2^inference_level.
  int inference_level = 0;
  /// Size of the distinct sample the answer was computed from.
  std::uint64_t sample_size = 0;
};

/// Common interface over exact and approximate trackers, so detection code
/// and benchmarks can swap implementations.
class TopKEstimator {
 public:
  virtual ~TopKEstimator() = default;

  /// Process one stream update: `delta` = +1 or -1.
  virtual void update(Addr group, Addr member, int delta) = 0;

  /// Current (approximate) top-k groups by distinct-member frequency.
  virtual TopKResult top_k(std::size_t k) const = 0;

  /// Bytes of heap memory currently held by the tracker's state.
  virtual std::size_t memory_bytes() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace dcs
