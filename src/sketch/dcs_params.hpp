// Configuration of a Distinct-Count Sketch (basic or tracking).
//
// Notation maps to the paper as: num_tables = r, buckets_per_table = s,
// key_bits = log(m^2) (64 for packed 32-bit address pairs), max_level bounds
// the first-level geometric hash, and epsilon enters the estimator's
// distinct-sample stopping rule (target sample size (1+ε)·s/16, Fig. 3/7).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcs {

struct DcsParams {
  /// Number of independent second-level hash tables per first-level bucket
  /// (the paper's r; default from §6.1).
  int num_tables = 3;
  /// Buckets per second-level hash table (the paper's s; default from §6.1).
  std::uint32_t buckets_per_table = 128;
  /// Bits in a stream key. 64 for (source, dest) pairs of IPv4 addresses;
  /// smaller domains (tests) may use fewer. Count signatures then carry
  /// key_bits + 1 counters.
  int key_bits = 64;
  /// Highest first-level bucket index (levels 0..max_level). The level hash
  /// folds deeper levels into max_level; with 64-bit hashing the default 63
  /// loses nothing.
  int max_level = 63;
  /// Relative-accuracy knob ε < 1/3 from TRACKAPPROXTOPK; only the
  /// distinct-sample stopping threshold depends on it at query time.
  double epsilon = 0.25;
  /// Distinct-sample stopping target as a fraction of s; 0 selects the
  /// paper's literal rule (1+ε)·s/16.
  ///
  /// Default 1.0: descend until the cumulative sample reaches ~s keys, which
  /// places the expected load of the stopping level at s/2 — exactly the
  /// recoverability bound of the paper's Lemma 4.1 — and yields a sample an
  /// order of magnitude larger than the (1+ε)·s/16 constant of the paper's
  /// pseudocode, at the cost of a few percent recovery loss on the boundary
  /// level. bench/ablation_stopping quantifies the trade-off (see DESIGN.md).
  double sample_target_fraction = 1.0;
  /// Collision-corrected estimation. At the default stopping rule the
  /// boundary level carries a load of up to ~s pairs, and a few percent of
  /// them collide in all r tables and drop out of the distinct sample,
  /// biasing every estimate ~5-10% low. With correction enabled, each
  /// level's true population is estimated from its bucket *occupancy* via
  /// linear counting (n̂ = ln(1-o/s)/ln(1-1/s), averaged over the r tables)
  /// and estimates are rescaled by (Σ n̂) / |sample|. Estimates stop being
  /// exact multiples of 2^level; exactness on tiny streams is preserved to
  /// within rounding. Off by default for faithfulness to the paper.
  bool collision_correction = false;
  /// Master seed for all hash functions. Sketches are mergeable iff their
  /// params (including seed) are identical.
  std::uint64_t seed = 0;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;

  /// Counters per second-level bucket: one total + key_bits bit-location
  /// counts (the paper's 2·log m + 1).
  std::size_t signature_width() const noexcept {
    return static_cast<std::size_t>(key_bits) + 1;
  }

  /// Counters in one first-level bucket's full second-level structure.
  std::size_t counters_per_level() const noexcept {
    return static_cast<std::size_t>(num_tables) * buckets_per_table *
           signature_width();
  }

  std::size_t level_bytes() const noexcept {
    return counters_per_level() * sizeof(std::int64_t);
  }

  /// Distinct-sample size the estimators aim for before inferring the
  /// sampling level (Fig. 3 step 3 / Fig. 7 step 4).
  std::uint64_t sample_target() const noexcept;

  /// Order-sensitive 64-bit digest of every field (including the seed).
  /// Two sketches are mergeable iff their params are identical, so remote
  /// peers exchange this fingerprint in their handshake and reject a
  /// mismatch before any counters cross the wire (src/service).
  std::uint64_t fingerprint() const noexcept;

  /// Conservative parameter choice implementing Theorems 4.4 / 5.1 literally:
  /// r = Θ(log(n/δ)), s = Θ(U·log((n+log m)/δ) / (f_k·ε²)). The constants in
  /// the paper's analysis are loose; §6.1's empirical defaults (r=3, s=128)
  /// are far smaller and work well in practice.
  static DcsParams recommend(double epsilon, double delta,
                             std::uint64_t expected_distinct_pairs,
                             std::uint64_t expected_kth_frequency,
                             std::uint64_t expected_stream_length);

  /// Practical sizing: the largest power-of-two s (at r = 3) whose sketch
  /// fits the given memory budget, assuming ~log2(expected_distinct_pairs)+1
  /// allocated levels. Deployments usually start from a budget, not from
  /// ε/δ; accuracy then follows from s (see bench/ablation_rs).
  static DcsParams for_memory_budget(std::size_t budget_bytes,
                                     std::uint64_t expected_distinct_pairs);

  friend bool operator==(const DcsParams&, const DcsParams&) = default;
};

}  // namespace dcs
