// Flow-update trace files.
//
// Binary format (magic "DCST", version 1): header, update count, then packed
// 9-byte records. A CSV form ("source,dest,delta" with a header row) is also
// provided for interoperability with external tooling (e.g. plotting or
// replaying NetFlow-derived data).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stream/flow_update.hpp"

namespace dcs {

void write_trace(std::ostream& out, const std::vector<FlowUpdate>& updates);
std::vector<FlowUpdate> read_trace(std::istream& in);

void write_trace_file(const std::string& path,
                      const std::vector<FlowUpdate>& updates);
std::vector<FlowUpdate> read_trace_file(const std::string& path);

void write_trace_csv(std::ostream& out, const std::vector<FlowUpdate>& updates);
std::vector<FlowUpdate> read_trace_csv(std::istream& in);

}  // namespace dcs
