// Synthetic flow-update workloads.
//
// ZipfWorkload reproduces the paper's §6.1 generator exactly: U distinct
// source-destination pairs spread over d distinct destinations, with the
// number of distinct sources per destination following a Zipfian distribution
// with skew z. On top of the paper's insert-only stream we can add *churn*
// (repeated insert/delete of the same pair, net +1) and *noise* (pairs that
// are inserted and then fully deleted, net 0), which exercises the sketches'
// delete-resilience — the property the paper argues distinguishes DDoS
// attacks from flash crowds.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

struct ZipfWorkloadConfig {
  /// Total number of distinct (source, dest) pairs with positive net
  /// frequency (the paper's U). Default scaled down from the paper's 8e6.
  std::uint64_t u_pairs = 1'000'000;
  /// Number of distinct destinations (the paper's d).
  std::uint32_t num_destinations = 50'000;
  /// Zipf skew z of distinct-source counts across destinations.
  double skew = 1.5;
  /// Every pair is additionally inserted and deleted `churn` extra times
  /// (net contribution unchanged). 0 reproduces the paper's pure-insert case.
  std::uint32_t churn = 0;
  /// Number of *noise* pairs inserted and then fully deleted (net 0).
  std::uint64_t noise_pairs = 0;
  /// Shuffle the emitted update stream (the paper's streams arrive in
  /// arbitrary network order).
  bool shuffle = true;
  std::uint64_t seed = 1;
};

/// A destination and its exact distinct-source frequency.
struct DestFrequency {
  Addr dest = 0;
  std::uint64_t frequency = 0;

  friend bool operator==(const DestFrequency&, const DestFrequency&) = default;
};

class ZipfWorkload {
 public:
  explicit ZipfWorkload(const ZipfWorkloadConfig& config);

  /// The full update stream (materialized).
  const std::vector<FlowUpdate>& updates() const noexcept { return updates_; }

  /// Ground truth: exact distinct-source frequency per destination,
  /// descending by frequency (ties broken by destination id for determinism).
  const std::vector<DestFrequency>& true_frequencies() const noexcept {
    return truth_;
  }

  /// Ground-truth top-k (prefix of true_frequencies()).
  std::vector<DestFrequency> true_top_k(std::size_t k) const;

  /// Actual number of distinct net-positive pairs generated (== config U).
  std::uint64_t u_pairs() const noexcept { return u_pairs_; }

  const ZipfWorkloadConfig& config() const noexcept { return config_; }

 private:
  ZipfWorkloadConfig config_;
  std::vector<FlowUpdate> updates_;
  std::vector<DestFrequency> truth_;
  std::uint64_t u_pairs_ = 0;
};

/// Split a total of `total` into `parts` nonnegative integers proportional to
/// Zipf(skew), summing exactly to `total` (largest-remainder apportionment).
/// Exposed for testing.
std::vector<std::uint64_t> zipf_apportion(std::uint64_t total, std::size_t parts,
                                          double skew);

/// 32-bit bijective mixer (xor-shift / odd-multiply rounds). Used to derive
/// guaranteed-distinct synthetic source addresses; exposed for testing.
std::uint32_t bijective32(std::uint32_t x) noexcept;

}  // namespace dcs
