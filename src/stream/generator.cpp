#include "stream/generator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/zipf.hpp"

namespace dcs {

std::uint32_t bijective32(std::uint32_t x) noexcept {
  // Each step is invertible on 32 bits (odd multiplier / xor-shift), so the
  // whole map is a permutation of [2^32].
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

std::vector<std::uint64_t> zipf_apportion(std::uint64_t total, std::size_t parts,
                                          double skew) {
  if (parts == 0) throw std::invalid_argument("zipf_apportion: parts == 0");
  ZipfDistribution zipf(parts, skew);
  std::vector<std::uint64_t> counts(parts);
  std::vector<std::pair<double, std::size_t>> remainders(parts);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    const double exact = zipf.pmf(i) * static_cast<double>(total);
    counts[i] = static_cast<std::uint64_t>(exact);
    assigned += counts[i];
    remainders[i] = {exact - static_cast<double>(counts[i]), i};
  }
  // Hand out the leftover units to the parts with the largest fractional
  // remainders (classic largest-remainder apportionment).
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::uint64_t leftover = total - assigned;
  for (std::size_t i = 0; leftover > 0; i = (i + 1) % parts, --leftover)
    ++counts[remainders[i].second];
  return counts;
}

ZipfWorkload::ZipfWorkload(const ZipfWorkloadConfig& config) : config_(config) {
  if (config.u_pairs == 0)
    throw std::invalid_argument("ZipfWorkload: u_pairs must be >= 1");
  if (config.num_destinations == 0)
    throw std::invalid_argument("ZipfWorkload: num_destinations must be >= 1");

  Xoshiro256 rng(config.seed);

  // Distinct-source counts per destination rank.
  const auto counts = zipf_apportion(config.u_pairs, config.num_destinations,
                                     config.skew);

  // Destination ids: arbitrary-looking but deterministic 32-bit values, so the
  // sketch hash functions see realistic (non-sequential) inputs. bijective32
  // guarantees all ids are distinct.
  const auto dest_salt = static_cast<std::uint32_t>(mix64(config.seed) >> 32);
  std::vector<Addr> dest_ids(config.num_destinations);
  for (std::uint32_t i = 0; i < config.num_destinations; ++i)
    dest_ids[i] = bijective32(i ^ dest_salt);

  truth_.reserve(config.num_destinations);
  std::uint64_t total_updates =
      config.u_pairs * (1 + 2ull * config.churn) + 2 * config.noise_pairs;
  updates_.reserve(total_updates);

  // Sources for destination rank i are bijective32(src_salt_i ^ j) for
  // j = 0..counts[i)-1 — distinct within a destination by construction.
  for (std::uint32_t i = 0; i < config.num_destinations; ++i) {
    if (counts[i] == 0) continue;
    const Addr dest = dest_ids[i];
    const auto src_salt =
        static_cast<std::uint32_t>(mix64(config.seed ^ (0xabcdULL + i)));
    for (std::uint64_t j = 0; j < counts[i]; ++j) {
      const Addr source = bijective32(src_salt ^ static_cast<std::uint32_t>(j));
      updates_.push_back({source, dest, +1});
      for (std::uint32_t c = 0; c < config.churn; ++c) {
        updates_.push_back({source, dest, +1});
        updates_.push_back({source, dest, -1});
      }
    }
    truth_.push_back({dest, counts[i]});
    u_pairs_ += counts[i];
  }

  // Noise pairs: net-zero insert/delete of pairs aimed at a disjoint block of
  // destination ids (high bit flipped relative to real ids cannot be
  // guaranteed disjoint, so reuse real destinations — net-zero pairs must not
  // affect frequencies regardless of which destination they target, which is
  // exactly the property under test).
  for (std::uint64_t p = 0; p < config.noise_pairs; ++p) {
    const Addr dest = dest_ids[rng.bounded(config.num_destinations)];
    // Noise sources live in a distinct space from real sources for this
    // destination with overwhelming probability; even on collision the
    // insert+delete pair is net-zero, so ground truth is unaffected only if
    // the source is fresh. Use a separate bijection domain offset by 2^31
    // positions to keep them fresh deterministically.
    const auto noise_salt =
        static_cast<std::uint32_t>(mix64(config.seed ^ 0xfeedULL));
    const Addr source =
        bijective32(noise_salt ^ static_cast<std::uint32_t>(0x80000000ULL + p));
    updates_.push_back({source, dest, +1});
    updates_.push_back({source, dest, -1});
  }

  if (config.shuffle) {
    // Fisher-Yates with the workload RNG. Note: shuffling may place a
    // deletion before its insertion; the sketch counters are signed and
    // linear, so the end state is identical (and tests rely on this).
    for (std::size_t i = updates_.size(); i > 1; --i)
      std::swap(updates_[i - 1], updates_[rng.bounded(i)]);
  }

  std::sort(truth_.begin(), truth_.end(), [](const auto& a, const auto& b) {
    return a.frequency != b.frequency ? a.frequency > b.frequency
                                      : a.dest < b.dest;
  });
}

std::vector<DestFrequency> ZipfWorkload::true_top_k(std::size_t k) const {
  const std::size_t n = std::min(k, truth_.size());
  return {truth_.begin(), truth_.begin() + static_cast<std::ptrdiff_t>(n)};
}

}  // namespace dcs
