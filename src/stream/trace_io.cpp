#include "stream/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/serialize.hpp"

namespace dcs {

namespace {
constexpr std::uint32_t kTraceMagic = 0x54534344;  // "DCST"
constexpr std::uint8_t kTraceVersion = 1;
}  // namespace

void write_trace(std::ostream& out, const std::vector<FlowUpdate>& updates) {
  BinaryWriter w(out);
  write_header(w, kTraceMagic, kTraceVersion);
  w.u64(updates.size());
  for (const FlowUpdate& u : updates) {
    w.u32(u.source);
    w.u32(u.dest);
    w.u8(static_cast<std::uint8_t>(u.delta));
  }
}

std::vector<FlowUpdate> read_trace(std::istream& in) {
  BinaryReader r(in);
  read_header(r, kTraceMagic, kTraceVersion);
  const std::uint64_t n = r.u64();
  std::vector<FlowUpdate> updates;
  updates.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    FlowUpdate u;
    u.source = r.u32();
    u.dest = r.u32();
    u.delta = static_cast<std::int8_t>(r.u8());
    if (u.delta != 1 && u.delta != -1)
      throw SerializeError("trace: delta must be +1 or -1");
    updates.push_back(u);
  }
  return updates;
}

void write_trace_file(const std::string& path,
                      const std::vector<FlowUpdate>& updates) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializeError("cannot open for writing: " + path);
  write_trace(out, updates);
}

std::vector<FlowUpdate> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("cannot open for reading: " + path);
  return read_trace(in);
}

void write_trace_csv(std::ostream& out, const std::vector<FlowUpdate>& updates) {
  out << "source,dest,delta\n";
  for (const FlowUpdate& u : updates)
    out << u.source << ',' << u.dest << ',' << static_cast<int>(u.delta) << '\n';
}

std::vector<FlowUpdate> read_trace_csv(std::istream& in) {
  std::vector<FlowUpdate> updates;
  std::string line;
  if (!std::getline(in, line)) return updates;  // header (or empty)
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    FlowUpdate u;
    if (!std::getline(row, field, ',')) throw SerializeError("csv: bad row");
    u.source = static_cast<Addr>(std::stoul(field));
    if (!std::getline(row, field, ',')) throw SerializeError("csv: bad row");
    u.dest = static_cast<Addr>(std::stoul(field));
    if (!std::getline(row, field, ',')) throw SerializeError("csv: bad row");
    const int delta = std::stoi(field);
    if (delta != 1 && delta != -1) throw SerializeError("csv: delta must be ±1");
    u.delta = static_cast<std::int8_t>(delta);
    updates.push_back(u);
  }
  return updates;
}

}  // namespace dcs
