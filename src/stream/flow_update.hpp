// The abstract stream element consumed by every synopsis in this library.
//
// A flow update is the paper's triple (source, dest, ±1): the net change in
// the frequency of a potentially-malicious (source, dest) flow. In the
// SYN-flood application a SYN packet contributes +1 and the ACK completing
// the handshake contributes -1, so the net stream counts half-open
// connections only.
//
// The sketches themselves are agnostic to which endpoint plays which role:
// they aggregate by a 32-bit `group` key (the entity being ranked) over
// distinct 32-bit `member` keys (the entities being counted). For DDoS
// detection group = destination, member = source; for superspreader / port-
// scan detection the roles are swapped.
#pragma once

#include <cstdint>

namespace dcs {

/// IPv4-sized identifier. The paper's domain [m] with m = 2^32.
using Addr = std::uint32_t;

/// Packed (group, member) pair — the paper's domain [m^2] via concatenation.
using PairKey = std::uint64_t;

inline PairKey pack_pair(Addr group, Addr member) noexcept {
  return (static_cast<PairKey>(group) << 32) | member;
}

inline Addr pair_group(PairKey key) noexcept {
  return static_cast<Addr>(key >> 32);
}

inline Addr pair_member(PairKey key) noexcept {
  return static_cast<Addr>(key & 0xffffffffULL);
}

/// One stream element. `delta` is +1 (insertion) or -1 (deletion).
struct FlowUpdate {
  Addr source = 0;
  Addr dest = 0;
  std::int8_t delta = +1;

  friend bool operator==(const FlowUpdate&, const FlowUpdate&) = default;
};

static_assert(sizeof(FlowUpdate) <= 12, "FlowUpdate should stay compact");

}  // namespace dcs
