#include "baselines/sample_and_hold.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcs {

SampleAndHold::SampleAndHold(std::uint32_t sample_one_in,
                             std::size_t max_entries, std::uint64_t seed)
    : sample_one_in_(sample_one_in),
      max_entries_(max_entries),
      sample_hash_(mix64(seed ^ 0x5a4e48ULL)) {
  if (sample_one_in == 0)
    throw std::invalid_argument("SampleAndHold: sample_one_in >= 1");
  if (max_entries == 0)
    throw std::invalid_argument("SampleAndHold: max_entries >= 1");
}

void SampleAndHold::observe(Addr source, Addr dest) {
  const PairKey key = pack_pair(source, dest);
  ++packets_seen_;
  const auto it = held_.find(key);
  if (it != held_.end()) {
    ++it->second;  // held: count exactly
    return;
  }
  if (held_.size() >= max_entries_) return;  // table full
  // Sampling decision is per packet; hash the (flow, packet index) so
  // repeated packets of one flow get independent coin flips.
  const std::uint64_t coin = sample_hash_(key ^ mix64(packets_seen_));
  if (coin % sample_one_in_ == 0) held_.emplace(key, 1);
}

std::vector<SampleAndHold::HeldFlow> SampleAndHold::top_flows(
    std::size_t k) const {
  std::vector<HeldFlow> flows;
  flows.reserve(held_.size());
  for (const auto& [key, packets] : held_)
    flows.push_back({pair_group(key), pair_member(key), packets});
  std::sort(flows.begin(), flows.end(), [](const auto& a, const auto& b) {
    return a.packets != b.packets ? a.packets > b.packets
                                  : pack_pair(a.source, a.dest) <
                                        pack_pair(b.source, b.dest);
  });
  if (k < flows.size()) flows.resize(k);
  return flows;
}

std::vector<TopKEntry> SampleAndHold::top_destinations(std::size_t k) const {
  std::unordered_map<Addr, std::uint64_t> per_dest;
  for (const auto& [key, packets] : held_) per_dest[pair_member(key)] += packets;
  std::vector<TopKEntry> entries;
  entries.reserve(per_dest.size());
  for (const auto& [dest, packets] : per_dest) entries.push_back({dest, packets});
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate
                                    : a.group < b.group;
  });
  if (k < entries.size()) entries.resize(k);
  return entries;
}

void SampleAndHold::reset() {
  held_.clear();
  packets_seen_ = 0;
}

std::size_t SampleAndHold::memory_bytes() const {
  return sizeof(*this) +
         held_.size() * (sizeof(PairKey) + sizeof(std::uint64_t) + 16) +
         held_.bucket_count() * sizeof(void*);
}

}  // namespace dcs
