#include "baselines/count_min.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dcs {

CountMinSketch::CountMinSketch(int depth, std::uint32_t width,
                               std::uint64_t seed)
    : depth_(depth),
      width_(width),
      counters_(static_cast<std::size_t>(depth) * width, 0),
      hashes_(mix64(seed ^ 0xc0076d1eULL), depth, width) {
  if (depth < 1) throw std::invalid_argument("CountMinSketch: depth >= 1");
  if (width < 2) throw std::invalid_argument("CountMinSketch: width >= 2");
}

void CountMinSketch::add(std::uint64_t key, std::int64_t delta) {
  for (int row = 0; row < depth_; ++row)
    counters_[static_cast<std::size_t>(row) * width_ + hashes_.bucket(row, key)] +=
        delta;
}

std::int64_t CountMinSketch::estimate(std::uint64_t key) const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int row = 0; row < depth_; ++row)
    best = std::min(best, counters_[static_cast<std::size_t>(row) * width_ +
                                    hashes_.bucket(row, key)]);
  return best;
}

VolumeHeavyHitters::VolumeHeavyHitters(int depth, std::uint32_t width,
                                       std::uint64_t seed)
    : cms_(depth, width, seed) {}

void VolumeHeavyHitters::update(Addr group, Addr member, int delta) {
  (void)member;  // volume tracking is blind to who sent the packets
  cms_.add(group, delta);
  const std::int64_t estimate = std::max<std::int64_t>(0, cms_.estimate(group));
  const std::int64_t current = heavy_.priority(group);
  if (estimate != current && (current > 0 || estimate > 0))
    heavy_.add(group, estimate - current);
  if (heavy_.size() > kMaxHeavy) {
    // Evict the lightest half of the candidate set.
    auto ordered = heavy_.top_k(heavy_.size());
    for (std::size_t i = ordered.size() / 2; i < ordered.size(); ++i)
      heavy_.erase(ordered[i].key);
  }
}

TopKResult VolumeHeavyHitters::top_k(std::size_t k) const {
  TopKResult result;
  result.sample_size = heavy_.size();
  for (const auto& entry : heavy_.top_k(k))
    result.entries.push_back(
        {entry.key, static_cast<std::uint64_t>(entry.priority)});
  return result;
}

std::size_t VolumeHeavyHitters::memory_bytes() const {
  return sizeof(*this) + cms_.memory_bytes() + heavy_.memory_bytes();
}

}  // namespace dcs
