// Flajolet-Martin PCSA distinct counter (the 1985 structure the paper's
// first-level hash generalizes). Insert-only: kept as a baseline to quantify
// what the Distinct-Count Sketch adds (deletions + key recovery).
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace dcs {

class FmPcsa {
 public:
  /// `num_maps` independent bitmaps, each tracking the LSB-rank distribution
  /// of hashed inputs; the estimate averages their highest fully-set prefix.
  explicit FmPcsa(int num_maps = 64, std::uint64_t seed = 0);

  void add(std::uint64_t key);

  /// Estimated number of distinct keys added.
  double estimate() const;

  int num_maps() const noexcept { return static_cast<int>(bitmaps_.size()); }

 private:
  std::vector<std::uint64_t> bitmaps_;
  SeededHash select_;  // picks the bitmap
  SeededHash rank_;    // supplies the geometric rank
};

}  // namespace dcs
