// Exact distinct-member frequency tracker.
//
// The "brute force" scheme the paper's §6.1 space analysis compares against:
// per-pair net counts plus per-group distinct counts. Serves as (a) ground
// truth for all accuracy experiments and (b) the memory yardstick the
// sketches are an order of magnitude (and more) below.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sketch/top_k.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class ExactTracker final : public TopKEstimator {
 public:
  void update(Addr group, Addr member, int delta) override;

  /// Exact top-k groups, descending by frequency then ascending by id.
  TopKResult top_k(std::size_t k) const override;

  /// Exact frequency of one group (0 if unseen).
  std::uint64_t frequency(Addr group) const;

  /// All groups with frequency >= tau, descending.
  std::vector<TopKEntry> groups_above(std::uint64_t tau) const;

  /// Number of distinct net-positive pairs currently active (the paper's U).
  std::uint64_t distinct_pairs() const noexcept { return pair_counts_.size(); }

  std::size_t memory_bytes() const override;

  /// The paper's §6.1 accounting for the brute-force scheme: 4 bytes source +
  /// 4 bytes destination + 4 bytes count per distinct active pair.
  static std::size_t paper_accounting_bytes(std::uint64_t distinct_pairs) {
    return static_cast<std::size_t>(distinct_pairs) * 12;
  }

  std::string name() const override { return "exact"; }

 private:
  std::vector<TopKEntry> sorted_groups(std::size_t k) const;

  /// Net occurrence count per active pair; erased when it returns to zero.
  /// Counts may be transiently negative (a shuffled stream can deliver a
  /// deletion before its insertion); frequency counts only net-positive pairs.
  std::unordered_map<PairKey, std::int64_t> pair_counts_;
  std::unordered_map<Addr, std::uint64_t> group_freq_;
};

}  // namespace dcs
