#include "baselines/count_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcs {

CountSketch::CountSketch(int depth, std::uint32_t width, std::uint64_t seed)
    : depth_(depth),
      width_(width),
      seed_(seed),
      buckets_(mix64(seed ^ 0xc5b0c4e7ULL), depth, width),
      signs_(mix64(seed ^ 0x51619a3bULL), depth, 2),
      counters_(static_cast<std::size_t>(depth) * width, 0.0) {
  if (depth < 1) throw std::invalid_argument("CountSketch: depth >= 1");
  if (width < 2) throw std::invalid_argument("CountSketch: width >= 2");
}

void CountSketch::add(std::uint64_t key, std::int64_t delta) {
  for (int row = 0; row < depth_; ++row) {
    const double sign = signs_.bucket(row, key) == 0 ? 1.0 : -1.0;
    counters_[static_cast<std::size_t>(row) * width_ +
              buckets_.bucket(row, key)] += sign * static_cast<double>(delta);
  }
}

std::int64_t CountSketch::estimate(std::uint64_t key) const {
  std::vector<double> rows(static_cast<std::size_t>(depth_));
  for (int row = 0; row < depth_; ++row) {
    const double sign = signs_.bucket(row, key) == 0 ? 1.0 : -1.0;
    rows[static_cast<std::size_t>(row)] =
        sign * counters_[static_cast<std::size_t>(row) * width_ +
                         buckets_.bucket(row, key)];
  }
  std::nth_element(rows.begin(), rows.begin() + depth_ / 2, rows.end());
  return static_cast<std::int64_t>(std::llround(rows[static_cast<std::size_t>(depth_) / 2]));
}

bool CountSketch::compatible(const CountSketch& other) const noexcept {
  return depth_ == other.depth_ && width_ == other.width_ &&
         seed_ == other.seed_;
}

void CountSketch::combine(double alpha, const CountSketch& other, double beta) {
  if (!compatible(other))
    throw std::invalid_argument("CountSketch::combine: layout mismatch");
  for (std::size_t i = 0; i < counters_.size(); ++i)
    counters_[i] = alpha * counters_[i] + beta * other.counters_[i];
}

double CountSketch::energy() const {
  double total = 0.0;
  for (const double c : counters_) total += c * c;
  return total / static_cast<double>(depth_);
}

KarySketchChange::KarySketchChange() : KarySketchChange(Config{}) {}

KarySketchChange::KarySketchChange(Config config)
    : config_(config),
      current_(config.depth, config.width, config.seed),
      forecast_(config.depth, config.width, config.seed),
      difference_(config.depth, config.width, config.seed) {
  if (config.alpha <= 0.0 || config.alpha > 1.0)
    throw std::invalid_argument("KarySketchChange: alpha in (0, 1]");
  if (config.threshold <= 0.0)
    throw std::invalid_argument("KarySketchChange: threshold > 0");
}

void KarySketchChange::add(std::uint64_t key, std::int64_t delta) {
  current_.add(key, delta);
}

bool KarySketchChange::close_epoch() {
  const bool had_forecast = epochs_ > 0;
  if (had_forecast) {
    // difference = observed - forecast (both are linear sketches).
    difference_ = current_;
    difference_.combine(1.0, forecast_, -1.0);
    difference_energy_ = difference_.energy();
  }
  // forecast' = (1-alpha) * forecast + alpha * observed; the first epoch
  // seeds the forecast directly.
  if (epochs_ == 0)
    forecast_ = current_;
  else
    forecast_.combine(1.0 - config_.alpha, current_, config_.alpha);
  current_ = CountSketch(config_.depth, config_.width, config_.seed);
  ++epochs_;
  return had_forecast;
}

double KarySketchChange::change_score(std::uint64_t key) const {
  if (epochs_ < 2 || difference_energy_ <= 0.0) return 0.0;
  return static_cast<double>(difference_.estimate(key)) /
         std::sqrt(difference_energy_);
}

std::size_t KarySketchChange::memory_bytes() const {
  return current_.memory_bytes() + forecast_.memory_bytes() +
         difference_.memory_bytes();
}

}  // namespace dcs
