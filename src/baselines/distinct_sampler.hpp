// Gibbons-style distinct sampling (VLDB 2001) — the insert-only precursor of
// the Distinct-Count Sketch's sampling behaviour.
//
// Maintains a uniform sample over the *distinct* keys of the stream via a
// level-based coordinated hash: a key is in the sample at level t iff
// level_hash(key) >= t. When the sample overflows its budget the level is
// raised and existing members are subsampled. Deletions are NOT supported —
// exactly the limitation (paper §1, §3) the Distinct-Count Sketch removes —
// and the deletion ablation benchmark quantifies the resulting error on
// flash-crowd workloads.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.hpp"
#include "sketch/top_k.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class DistinctSampler final : public TopKEstimator {
 public:
  /// Keep at most `capacity` distinct keys in the sample.
  explicit DistinctSampler(std::size_t capacity = 1024, std::uint64_t seed = 0);

  /// delta must be +1: this baseline cannot process deletions and throws on
  /// delta <= 0 (std::invalid_argument) to make misuse loud.
  void update(Addr group, Addr member, int delta) override;

  TopKResult top_k(std::size_t k) const override;

  /// Estimated number of distinct keys seen.
  std::uint64_t estimate_distinct_pairs() const {
    return static_cast<std::uint64_t>(sample_.size()) << level_;
  }

  int level() const noexcept { return level_; }
  std::size_t sample_size() const noexcept { return sample_.size(); }
  std::size_t memory_bytes() const override;
  std::string name() const override { return "distinct-sampler"; }

 private:
  void subsample();

  std::size_t capacity_;
  LevelHash level_hash_;
  int level_ = 0;
  std::unordered_set<PairKey> sample_;
};

}  // namespace dcs
