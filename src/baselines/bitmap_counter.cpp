#include "baselines/bitmap_counter.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace dcs {

DirectBitmap::DirectBitmap(std::uint32_t bits, std::uint64_t seed)
    : bits_(bits),
      hash_(mix64(seed ^ 0xb17b17ULL)),
      words_((bits + 63) / 64, 0) {
  if (bits < 64 || (bits & (bits - 1)) != 0)
    throw std::invalid_argument("DirectBitmap: bits must be a power of two >= 64");
}

void DirectBitmap::add(std::uint64_t key) {
  const std::uint32_t bit = reduce_range(hash_(key), bits_);
  std::uint64_t& word = words_[bit >> 6];
  const std::uint64_t mask = 1ULL << (bit & 63);
  if ((word & mask) == 0) {
    word |= mask;
    ++set_;
  }
}

double DirectBitmap::estimate() const {
  if (set_ == 0) return 0.0;
  const double b = static_cast<double>(bits_);
  // Saturated bitmaps are clamped one short, as with any linear counter.
  const double zeros =
      set_ >= bits_ ? 0.5 : static_cast<double>(bits_ - set_);
  return b * std::log(b / zeros);
}

VirtualBitmap::VirtualBitmap(std::uint32_t bits, std::uint32_t sampling,
                             std::uint64_t seed)
    : sampling_(sampling),
      slice_hash_(mix64(seed ^ 0x51f7edULL)),
      physical_(bits, seed ^ 0x77) {
  if (sampling == 0) throw std::invalid_argument("VirtualBitmap: sampling >= 1");
}

void VirtualBitmap::add(std::uint64_t key) {
  // Only keys hashing into slice 0 touch the physical bitmap.
  if (slice_hash_(key) % sampling_ != 0) return;
  physical_.add(mix64(key));
}

double VirtualBitmap::estimate() const {
  return physical_.estimate() * static_cast<double>(sampling_);
}

}  // namespace dcs
