// HyperLogLog distinct counter. A modern insert-only cardinality baseline;
// contrasted against the Distinct-Count Sketch in the deletion ablation (it
// cannot forget completed handshakes, so it conflates flash crowds with
// attacks).
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace dcs {

class HyperLogLog {
 public:
  /// 2^precision registers; precision in [4, 18].
  explicit HyperLogLog(int precision = 12, std::uint64_t seed = 0);

  void add(std::uint64_t key);

  /// Estimated distinct count, with small-range (linear counting) and
  /// large-range corrections.
  double estimate() const;

  /// Registers merge by max: the union of two streams.
  void merge(const HyperLogLog& other);

  int precision() const noexcept { return precision_; }
  std::size_t memory_bytes() const noexcept {
    return registers_.size() * sizeof(std::uint8_t);
  }

 private:
  int precision_;
  std::vector<std::uint8_t> registers_;
  SeededHash hash_;
};

}  // namespace dcs
