#include "baselines/space_saving.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcs {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SpaceSaving: capacity >= 1");
  entries_.reserve(capacity);
}

void SpaceSaving::add(Addr key) {
  ++total_;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++entries_[it->second].count;
    return;
  }
  if (entries_.size() < capacity_) {
    index_[key] = entries_.size();
    entries_.push_back({key, 1, 0});
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count + 1 with
  // that count recorded as its maximum overestimate (Metwally's rule).
  const auto min_it = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.count < b.count; });
  index_.erase(min_it->key);
  const std::uint64_t inherited = min_it->count;
  *min_it = {key, inherited + 1, inherited};
  index_[key] = static_cast<std::size_t>(min_it - entries_.begin());
}

std::vector<SpaceSaving::Counter> SpaceSaving::top_k(std::size_t k) const {
  std::vector<Counter> counters;
  counters.reserve(entries_.size());
  for (const Entry& entry : entries_)
    counters.push_back({entry.key, entry.count, entry.overestimate});
  std::sort(counters.begin(), counters.end(),
            [](const Counter& a, const Counter& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  if (k < counters.size()) counters.resize(k);
  return counters;
}

bool SpaceSaving::is_guaranteed(Addr key) const {
  const auto it = index_.find(key);
  return it != index_.end() && entries_[it->second].overestimate == 0;
}

std::size_t SpaceSaving::memory_bytes() const {
  return sizeof(*this) + entries_.capacity() * sizeof(Entry) +
         index_.size() * (sizeof(Addr) + sizeof(std::size_t) + 16);
}

}  // namespace dcs
