// Count-Min sketch plus a volume heavy-hitter tracker.
//
// Stands in for the "large flow" detection line of work (Estan & Varghese,
// SIGCOMM 2002) the paper argues is NOT a robust DDoS indicator: it ranks
// destinations by traffic *volume*, so a SYN flood of single-packet half-open
// flows from spoofed sources looks no different from a flash crowd of
// legitimate sessions — and a low-volume attack may not surface at all. The
// detection benchmarks make this failure mode measurable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "sketch/indexed_heap.hpp"
#include "sketch/top_k.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

/// Plain Count-Min sketch over 64-bit keys with conservative point queries.
class CountMinSketch {
 public:
  CountMinSketch(int depth = 4, std::uint32_t width = 2048,
                 std::uint64_t seed = 0);

  void add(std::uint64_t key, std::int64_t delta);

  /// Point estimate: min over rows (an overestimate w.h.p.).
  std::int64_t estimate(std::uint64_t key) const;

  int depth() const noexcept { return depth_; }
  std::uint32_t width() const noexcept { return width_; }
  std::size_t memory_bytes() const noexcept {
    return counters_.size() * sizeof(std::int64_t);
  }

 private:
  int depth_;
  std::uint32_t width_;
  std::vector<std::int64_t> counters_;
  BucketHashFamily hashes_;
};

/// Volume-based heavy-hitter tracker: ranks groups (destinations) by total
/// packet count estimated through a Count-Min sketch. Implements the same
/// TopKEstimator interface as the distinct-count trackers so detection code
/// can compare them head-to-head.
class VolumeHeavyHitters final : public TopKEstimator {
 public:
  VolumeHeavyHitters(int depth = 4, std::uint32_t width = 2048,
                     std::uint64_t seed = 0);

  void update(Addr group, Addr member, int delta) override;
  TopKResult top_k(std::size_t k) const override;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "volume-cms"; }

 private:
  CountMinSketch cms_;
  /// Exact per-group volumes for groups currently believed heavy; bounded by
  /// periodically evicting the lightest entries.
  IndexedMaxHeap<Addr> heavy_;
  static constexpr std::size_t kMaxHeavy = 4096;
};

}  // namespace dcs
