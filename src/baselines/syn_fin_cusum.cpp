#include "baselines/syn_fin_cusum.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcs {

SynFinCusum::SynFinCusum(double allowance, double alarm_threshold)
    : allowance_(allowance), alarm_threshold_(alarm_threshold) {
  if (allowance < 0.0) throw std::invalid_argument("SynFinCusum: allowance >= 0");
  if (alarm_threshold <= 0.0)
    throw std::invalid_argument("SynFinCusum: alarm_threshold > 0");
}

bool SynFinCusum::observe(std::uint64_t syn_count, std::uint64_t fin_count) {
  // Normalized difference; the +1 keeps quiet intervals well-defined.
  const double fins = static_cast<double>(fin_count) + 1.0;
  const double x =
      (static_cast<double>(syn_count) - static_cast<double>(fin_count)) / fins;
  statistic_ = std::max(0.0, statistic_ + x - allowance_);
  history_.push_back(statistic_);
  return in_alarm();
}

}  // namespace dcs
