#include "baselines/distinct_sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "sketch/distinct_count_sketch.hpp"

namespace dcs {

DistinctSampler::DistinctSampler(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), level_hash_(mix64(seed ^ 0xd157a9c7ULL), 63) {
  if (capacity < 1) throw std::invalid_argument("DistinctSampler: capacity >= 1");
}

void DistinctSampler::update(Addr group, Addr member, int delta) {
  if (delta <= 0)
    throw std::invalid_argument(
        "DistinctSampler: deletions are not supported by insert-only "
        "distinct sampling");
  const PairKey key = pack_pair(group, member);
  if (level_hash_(key) < level_) return;  // not sampled at the current level
  sample_.insert(key);
  while (sample_.size() > capacity_) subsample();
}

void DistinctSampler::subsample() {
  ++level_;
  for (auto it = sample_.begin(); it != sample_.end();) {
    if (level_hash_(*it) < level_)
      it = sample_.erase(it);
    else
      ++it;
  }
}

TopKResult DistinctSampler::top_k(std::size_t k) const {
  const std::vector<PairKey> keys(sample_.begin(), sample_.end());
  TopKResult result;
  result.inference_level = level_;
  result.sample_size = keys.size();
  result.entries = rank_sample_groups(keys, std::ldexp(1.0, level_), k);
  return result;
}

std::size_t DistinctSampler::memory_bytes() const {
  return sizeof(*this) + sample_.size() * (sizeof(PairKey) + 16) +
         sample_.bucket_count() * sizeof(void*);
}

}  // namespace dcs
