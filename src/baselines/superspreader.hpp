// One-level-filter superspreader detector, after Venkataraman et al.
// (NDSS 2005): report *sources* that contact more than `threshold` distinct
// destinations.
//
// The paper positions its top-k problem against this threshold formulation
// (§1): superspreader detection needs a user-supplied k/threshold on distinct
// connections, while the Distinct-Count Sketch ranks the top-k outright.
// We include the filter so the port-scan example can contrast both answers.
//
// Mechanism: a coordinated hash samples each distinct (source, dest) pair
// with probability 1/rate; sampled pairs are deduplicated and counted per
// source; sources reaching threshold/rate sampled pairs are reported.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class SuperspreaderFilter {
 public:
  /// Detect sources contacting >= `threshold` distinct destinations, keeping
  /// roughly a 1/rate fraction of distinct pairs.
  SuperspreaderFilter(std::uint64_t threshold, std::uint64_t rate = 16,
                      std::uint64_t seed = 0);

  /// Insert-only (the published filter has no deletion support).
  void add(Addr source, Addr dest);

  /// Sources whose *estimated* distinct-destination count reaches the
  /// threshold, with the estimates (sampled count * rate).
  struct Superspreader {
    Addr source = 0;
    std::uint64_t estimated_destinations = 0;
  };
  std::vector<Superspreader> superspreaders() const;

  std::uint64_t threshold() const noexcept { return threshold_; }
  std::size_t memory_bytes() const;

 private:
  std::uint64_t threshold_;
  std::uint64_t rate_;
  SeededHash sample_hash_;
  std::unordered_set<PairKey> sampled_pairs_;
  std::unordered_map<Addr, std::uint64_t> per_source_;
};

}  // namespace dcs
