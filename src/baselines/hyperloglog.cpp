#include "baselines/hyperloglog.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace dcs {

HyperLogLog::HyperLogLog(int precision, std::uint64_t seed)
    : precision_(precision),
      registers_(std::size_t{1} << precision, 0),
      hash_(mix64(seed ^ 0x4c6f674cULL)) {
  if (precision < 4 || precision > 18)
    throw std::invalid_argument("HyperLogLog: precision in [4, 18]");
}

void HyperLogLog::add(std::uint64_t key) {
  const std::uint64_t h = hash_(key);
  const std::uint64_t index = h >> (64 - precision_);
  const std::uint64_t rest = h << precision_;
  // Rank = position of the leftmost 1 bit of the remaining bits, 1-based.
  const int rank =
      rest == 0 ? (64 - precision_ + 1) : (std::countl_zero(rest) + 1);
  auto& reg = registers_[index];
  if (rank > reg) reg = static_cast<std::uint8_t>(rank);
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  const double alpha =
      m <= 16 ? 0.673 : m <= 32 ? 0.697 : m <= 64 ? 0.709
                                        : 0.7213 / (1.0 + 1.079 / m);
  double sum = 0.0;
  int zeros = 0;
  for (const std::uint8_t reg : registers_) {
    sum += std::pow(2.0, -static_cast<double>(reg));
    if (reg == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (precision_ != other.precision_)
    throw std::invalid_argument("HyperLogLog::merge: precision mismatch");
  for (std::size_t i = 0; i < registers_.size(); ++i)
    registers_[i] = std::max(registers_[i], other.registers_[i]);
}

}  // namespace dcs
