// CountSketch (Charikar-Chen-Farach-Colton) and k-ary sketch change
// detection, after Krishnamurthy, Sen, Zhang & Chen ("Sketch-based change
// detection", IMC 2003) — cited in the paper's §1 as the sketch approach to
// detecting significant changes in massive streams.
//
// CountSketch estimates signed per-key update volume with median-of-rows
// unbiased estimates. KarySketchChange keeps one sketch per epoch, forecasts
// the current epoch from an EWMA of past sketches (sketches are linear, so
// the forecast is itself a sketch), and flags keys whose observed-minus-
// forecast difference is large relative to the total change energy.
//
// Like every volume-domain method, it detects *traffic* changes, not
// distinct-source changes — the comparison experiments show it flags flash
// crowds as eagerly as attacks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace dcs {

class CountSketch {
 public:
  CountSketch(int depth = 5, std::uint32_t width = 1024,
              std::uint64_t seed = 0);

  void add(std::uint64_t key, std::int64_t delta);

  /// Median-of-rows unbiased estimate of the key's net update sum.
  std::int64_t estimate(std::uint64_t key) const;

  /// Linear combination: this = alpha * this + beta * other (used for EWMA
  /// forecasting). Requires identical (depth, width, seed).
  void combine(double alpha, const CountSketch& other, double beta);

  /// Second moment of the sketch contents (mean over rows of the row's sum
  /// of squared counters) — the "energy" used to normalize change scores.
  double energy() const;

  int depth() const noexcept { return depth_; }
  std::uint32_t width() const noexcept { return width_; }
  bool compatible(const CountSketch& other) const noexcept;
  std::size_t memory_bytes() const noexcept {
    return counters_.size() * sizeof(double);
  }

 private:
  int depth_;
  std::uint32_t width_;
  std::uint64_t seed_;
  BucketHashFamily buckets_;
  BucketHashFamily signs_;  // range 2: maps to ±1
  /// double counters so EWMA combinations stay exact in the linear algebra.
  std::vector<double> counters_;
};

/// Epoch-based change detector over key volumes.
class KarySketchChange {
 public:
  struct Config {
    int depth = 5;
    std::uint32_t width = 1024;
    std::uint64_t seed = 0;
    /// EWMA smoothing for the forecast sketch.
    double alpha = 0.4;
    /// Flag keys whose (observed - forecast) exceeds
    /// threshold * sqrt(energy of the difference sketch). A key responsible
    /// for ALL of the epoch's change scores ~1.0, so the threshold is a
    /// fraction: 0.5 means "holds at least half of the total change".
    double threshold = 0.5;
  };

  KarySketchChange();  // default Config
  explicit KarySketchChange(Config config);

  /// Add volume for a key within the current epoch.
  void add(std::uint64_t key, std::int64_t delta = 1);

  /// Close the epoch: returns true once a forecast exists (i.e. from the
  /// second epoch on). After closing, query change scores for candidate keys.
  bool close_epoch();

  /// Change score of a key for the epoch just closed:
  /// (observed - forecast) / sqrt(difference energy). Scores above
  /// config.threshold are "significant changes".
  double change_score(std::uint64_t key) const;

  bool is_significant_change(std::uint64_t key) const {
    return change_score(key) > config_.threshold;
  }

  std::uint64_t epochs_closed() const noexcept { return epochs_; }
  std::size_t memory_bytes() const;

 private:
  Config config_;
  CountSketch current_;
  CountSketch forecast_;
  CountSketch difference_;  // last closed epoch minus its forecast
  double difference_energy_ = 0.0;
  std::uint64_t epochs_ = 0;
};

}  // namespace dcs
