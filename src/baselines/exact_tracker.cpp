#include "baselines/exact_tracker.hpp"

#include <algorithm>

namespace dcs {

void ExactTracker::update(Addr group, Addr member, int delta) {
  const PairKey key = pack_pair(group, member);
  auto [it, inserted] = pair_counts_.try_emplace(key, 0);
  const std::int64_t before = it->second;
  const std::int64_t after = before + delta;

  if (before <= 0 && after > 0) {
    ++group_freq_[group];
  } else if (before > 0 && after <= 0) {
    auto git = group_freq_.find(group);
    if (--git->second == 0) group_freq_.erase(git);
  }

  if (after == 0) {
    pair_counts_.erase(it);
  } else {
    it->second = after;
  }
}

std::vector<TopKEntry> ExactTracker::sorted_groups(std::size_t k) const {
  std::vector<TopKEntry> entries;
  entries.reserve(group_freq_.size());
  for (const auto& [group, freq] : group_freq_) entries.push_back({group, freq});
  const auto order = [](const TopKEntry& a, const TopKEntry& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate
                                    : a.group < b.group;
  };
  if (k > 0 && k < entries.size()) {
    std::partial_sort(entries.begin(),
                      entries.begin() + static_cast<std::ptrdiff_t>(k),
                      entries.end(), order);
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(), order);
  }
  return entries;
}

TopKResult ExactTracker::top_k(std::size_t k) const {
  TopKResult result;
  result.entries = sorted_groups(k);
  result.inference_level = 0;
  result.sample_size = pair_counts_.size();
  return result;
}

std::uint64_t ExactTracker::frequency(Addr group) const {
  const auto it = group_freq_.find(group);
  return it == group_freq_.end() ? 0 : it->second;
}

std::vector<TopKEntry> ExactTracker::groups_above(std::uint64_t tau) const {
  auto entries = sorted_groups(0);
  const auto cut =
      std::find_if(entries.begin(), entries.end(),
                   [tau](const TopKEntry& e) { return e.estimate < tau; });
  entries.erase(cut, entries.end());
  return entries;
}

std::size_t ExactTracker::memory_bytes() const {
  // Approximate live heap usage of the two hash maps (node-based buckets).
  constexpr std::size_t kNodeOverhead = 16;  // next pointer + allocator slack
  std::size_t bytes = sizeof(*this);
  bytes += pair_counts_.size() *
           (sizeof(PairKey) + sizeof(std::int64_t) + kNodeOverhead);
  bytes += pair_counts_.bucket_count() * sizeof(void*);
  bytes += group_freq_.size() *
           (sizeof(Addr) + sizeof(std::uint64_t) + kNodeOverhead);
  bytes += group_freq_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace dcs
