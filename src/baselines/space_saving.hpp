// SpaceSaving (Metwally, Agrawal & El Abbadi, 2005): deterministic top-k by
// *occurrence count* in bounded space.
//
// Included as the strongest member of the volume-ranking family the paper
// contrasts against: it tracks packet (or update) counts exactly within its
// capacity guarantees, but — like every frequency-moment method — counts
// packets, not distinct sources, and cannot process deletions. The
// comparison benchmarks use it as the "best possible volume ranker".
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "sketch/top_k.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class SpaceSaving {
 public:
  /// Track at most `capacity` keys; any key's count error is bounded by the
  /// minimum tracked count (<= N / capacity).
  explicit SpaceSaving(std::size_t capacity = 1024);

  /// Count one occurrence of `key` (insert-only).
  void add(Addr key);

  /// Top-k keys by estimated count, with the per-key maximum overestimate.
  struct Counter {
    Addr key = 0;
    std::uint64_t count = 0;
    std::uint64_t overestimate = 0;  // error bound for this key
  };
  std::vector<Counter> top_k(std::size_t k) const;

  /// True iff `key`'s count is guaranteed (error bound zero).
  bool is_guaranteed(Addr key) const;

  std::uint64_t total_count() const noexcept { return total_; }
  std::size_t tracked() const noexcept { return index_.size(); }
  std::size_t memory_bytes() const;

 private:
  // Stream-Summary style structure: buckets of equal count in ascending
  // order; each bucket holds its keys. Simplified to a sorted list of
  // (count, keys) suitable for the capacities used here.
  struct Entry {
    Addr key;
    std::uint64_t count;
    std::uint64_t overestimate;
  };

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  /// Entries kept unordered; min is found by scan on eviction. For the
  /// capacities used in monitoring (<= a few thousand) the scan is cheap and
  /// the structure stays simple; callers needing O(log n) evictions can wrap
  /// counts in IndexedMaxHeap.
  std::vector<Entry> entries_;
  std::unordered_map<Addr, std::size_t> index_;  // key -> entries_ position
};

}  // namespace dcs
