// Bitmap distinct counters, after Estan, Varghese & Fisk ("Bitmap algorithms
// for counting active flows on high-speed links", IMC 2003) — the per-flow /
// per-source memory approach the paper's introduction classifies as
// non-scalable for network-wide monitoring (a bitmap per monitored entity).
//
//   * DirectBitmap   — one bit per hash bucket; exact-ish for small counts,
//                      saturates beyond ~b·ln(b).
//   * VirtualBitmap  — samples a fraction of the hash space into a small
//                      physical bitmap; tuned for a target count range.
//
// Both are insert-only and per-destination: tracking every destination in an
// ISP needs one per address, which is exactly the scalability wall the
// Distinct-Count Sketch removes. The space-comparison benchmark quantifies
// this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace dcs {

class DirectBitmap {
 public:
  /// `bits` must be a power of two.
  explicit DirectBitmap(std::uint32_t bits = 4096, std::uint64_t seed = 0);

  void add(std::uint64_t key);

  /// Linear-counting estimate of distinct keys added.
  double estimate() const;

  std::uint32_t bits() const noexcept { return bits_; }
  std::uint32_t set_bits() const noexcept { return set_; }
  bool saturated() const noexcept { return set_ == bits_; }
  std::size_t memory_bytes() const noexcept { return words_.size() * 8; }

 private:
  std::uint32_t bits_;
  std::uint32_t set_ = 0;
  SeededHash hash_;
  std::vector<std::uint64_t> words_;
};

class VirtualBitmap {
 public:
  /// Physical bitmap of `bits` bits covering a 1/`sampling` slice of the
  /// hash space: estimates up to ~sampling * bits * ln(bits) distinct keys.
  VirtualBitmap(std::uint32_t bits = 4096, std::uint32_t sampling = 16,
                std::uint64_t seed = 0);

  void add(std::uint64_t key);
  double estimate() const;

  std::size_t memory_bytes() const noexcept { return physical_.memory_bytes(); }

 private:
  std::uint32_t sampling_;
  SeededHash slice_hash_;
  DirectBitmap physical_;
};

}  // namespace dcs
