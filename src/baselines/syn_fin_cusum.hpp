// SYN-FIN difference detector with nonparametric CUSUM, after Wang, Zhang &
// Shin (INFOCOM 2002).
//
// Operates on per-interval aggregate counts at a single router: under normal
// operation every SYN is eventually matched by a FIN/RST, so the normalized
// difference (SYN - FIN) / FIN hovers near a small constant; a flood drives
// it up persistently. The CUSUM statistic accumulates the excess over an
// allowance `a` and alarms when it crosses `h`.
//
// The paper cites this detector as complementary: it is cheap but purely
// local (first/last-mile) and cannot name victims — which is exactly what the
// Distinct-Count Sketch adds. The detection example runs both side by side.
#pragma once

#include <cstdint>
#include <vector>

namespace dcs {

class SynFinCusum {
 public:
  /// `allowance` (a): tolerated per-interval normalized excess.
  /// `alarm_threshold` (h): cumulative excess that triggers the alarm.
  SynFinCusum(double allowance = 0.15, double alarm_threshold = 2.0);

  /// Feed one observation interval's aggregate SYN and FIN/RST counts.
  /// Returns true if the detector is in alarm after this interval.
  bool observe(std::uint64_t syn_count, std::uint64_t fin_count);

  bool in_alarm() const noexcept { return statistic_ > alarm_threshold_; }
  double statistic() const noexcept { return statistic_; }

  /// Reset after an alarm has been handled.
  void reset() noexcept { statistic_ = 0.0; }

  /// History of the statistic, one entry per observed interval.
  const std::vector<double>& history() const noexcept { return history_; }

 private:
  double allowance_;
  double alarm_threshold_;
  double statistic_ = 0.0;
  std::vector<double> history_;
};

}  // namespace dcs
