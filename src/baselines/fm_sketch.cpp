#include "baselines/fm_sketch.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace dcs {

namespace {
/// Flajolet-Martin's magic bias constant (phi).
constexpr double kPhi = 0.77351;
}  // namespace

FmPcsa::FmPcsa(int num_maps, std::uint64_t seed)
    : bitmaps_(static_cast<std::size_t>(num_maps), 0),
      select_(mix64(seed ^ 0x5eedf00dULL)),
      rank_(mix64(seed ^ 0xbadc0ffeULL)) {
  if (num_maps < 1) throw std::invalid_argument("FmPcsa: num_maps >= 1");
}

void FmPcsa::add(std::uint64_t key) {
  const auto map_index =
      reduce_range(select_(key), static_cast<std::uint32_t>(bitmaps_.size()));
  const std::uint64_t h = rank_(key);
  const int rank = (h == 0) ? 63 : lsb_index(h);
  bitmaps_[map_index] |= (1ULL << rank);
}

double FmPcsa::estimate() const {
  double total_rank = 0.0;
  for (const std::uint64_t bitmap : bitmaps_) {
    // Position of the lowest zero bit = length of the fully-set prefix.
    const int r = lsb_index(~bitmap);
    total_rank += static_cast<double>(r);
  }
  const double mean_rank = total_rank / static_cast<double>(bitmaps_.size());
  return static_cast<double>(bitmaps_.size()) * std::pow(2.0, mean_rank) / kPhi;
}

}  // namespace dcs
