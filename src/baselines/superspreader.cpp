#include "baselines/superspreader.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcs {

SuperspreaderFilter::SuperspreaderFilter(std::uint64_t threshold,
                                         std::uint64_t rate,
                                         std::uint64_t seed)
    : threshold_(threshold),
      rate_(rate),
      sample_hash_(mix64(seed ^ 0x5b9e4d2fULL)) {
  if (threshold == 0)
    throw std::invalid_argument("SuperspreaderFilter: threshold >= 1");
  if (rate == 0) throw std::invalid_argument("SuperspreaderFilter: rate >= 1");
}

void SuperspreaderFilter::add(Addr source, Addr dest) {
  const PairKey key = pack_pair(source, dest);
  // Coordinated sampling: the decision depends only on the pair, so repeated
  // packets of one flow never inflate the per-source count.
  if (sample_hash_(key) % rate_ != 0) return;
  if (sampled_pairs_.insert(key).second) ++per_source_[source];
}

std::vector<SuperspreaderFilter::Superspreader>
SuperspreaderFilter::superspreaders() const {
  std::vector<Superspreader> result;
  for (const auto& [source, sampled] : per_source_) {
    const std::uint64_t estimate = sampled * rate_;
    if (estimate >= threshold_) result.push_back({source, estimate});
  }
  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    return a.estimated_destinations != b.estimated_destinations
               ? a.estimated_destinations > b.estimated_destinations
               : a.source < b.source;
  });
  return result;
}

std::size_t SuperspreaderFilter::memory_bytes() const {
  return sizeof(*this) + sampled_pairs_.size() * (sizeof(PairKey) + 16) +
         per_source_.size() * (sizeof(Addr) + sizeof(std::uint64_t) + 16);
}

}  // namespace dcs
