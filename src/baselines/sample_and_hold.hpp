// Sample-and-hold heavy-hitter detection, after Estan & Varghese
// (SIGCOMM 2002) — the "large flow" identification technique the paper's
// introduction argues is not a robust DDoS signal.
//
// Each packet of an untracked flow is sampled with probability p; once
// sampled, the flow is *held*: every subsequent packet increments an exact
// counter. Large flows are caught early and counted almost exactly; mice are
// mostly never tracked. The paper's critique stands: half-open attack flows
// carry one packet each and are never "large", so a SYN flood is invisible
// here — the detection benchmarks make that measurable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "sketch/top_k.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

class SampleAndHold {
 public:
  /// `sample_one_in`: sampling rate 1/sample_one_in per untracked packet.
  /// `max_entries`: flow-table budget; when full, new flows are not admitted
  /// (the original paper suggests periodic resets; we expose reset()).
  SampleAndHold(std::uint32_t sample_one_in = 100,
                std::size_t max_entries = 4096, std::uint64_t seed = 0);

  /// Observe one packet of flow (source, dest).
  void observe(Addr source, Addr dest);

  /// Flows by held packet count, descending.
  struct HeldFlow {
    Addr source = 0;
    Addr dest = 0;
    std::uint64_t packets = 0;
  };
  std::vector<HeldFlow> top_flows(std::size_t k) const;

  /// Aggregate held packet counts per destination, descending — the
  /// destination-level "large traffic" view.
  std::vector<TopKEntry> top_destinations(std::size_t k) const;

  void reset();

  std::size_t tracked_flows() const noexcept { return held_.size(); }
  std::size_t memory_bytes() const;

 private:
  std::uint32_t sample_one_in_;
  std::size_t max_entries_;
  SeededHash sample_hash_;
  std::uint64_t packets_seen_ = 0;
  std::unordered_map<PairKey, std::uint64_t> held_;
};

}  // namespace dcs
