// Collector-side snapshot publisher: the write half of the query tier.
//
// A background thread captures the collector's merged state through a
// provider callback (one state-lock acquisition per publish — the only
// contention the query tier ever puts on ingest) and publishes it as an
// immutable generation-numbered snapshot file (see snapshot.hpp). Readers
// never talk to the collector; their staleness is bounded by the publish
// interval plus one watch poll.
//
// Failure model: a failed publish is counted (dcs_query_publish_errors_
// total) and retried at the next tick; the previous generation keeps
// serving. Generation numbers always move forward, above every file
// already present in the directory, so a restarted publisher never reuses
// a name a watcher may have mapped.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "query/snapshot.hpp"
#include "service/collector.hpp"

namespace dcs::query {

struct SnapshotPublisherConfig {
  std::string publish_dir;
  /// Milliseconds between publishes — the query tier's staleness bound.
  int publish_every_ms = 1000;
  /// Generations retained for time-travel queries.
  std::uint64_t retain = 8;
  /// k of the precomputed top-k baked into every snapshot.
  std::size_t top_k = 10;
};

class SnapshotPublisher {
 public:
  /// Captures one QueryPublishState per publish; normally bound to
  /// Collector::query_publish_state. A std::function (not a Collector&)
  /// so tests and benches can publish synthetic states.
  using Provider = std::function<service::QueryPublishState(std::size_t)>;

  SnapshotPublisher(SnapshotPublisherConfig config, Provider provider);
  ~SnapshotPublisher();

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Publish one generation immediately, then every publish_every_ms on a
  /// background thread until stop().
  void start();
  void stop();

  /// Synchronous publish (also used by the timer thread). Returns the
  /// generation written, or 0 when the publish failed (counted; the next
  /// tick retries).
  std::uint64_t publish_now();

  /// Newest generation this publisher wrote (0 = none yet).
  std::uint64_t generation() const;

  const SnapshotStore& store() const noexcept { return store_; }

 private:
  void publish_loop();

  SnapshotPublisherConfig config_;
  Provider provider_;
  SnapshotStore store_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace dcs::query
