#include "query/engine.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dcs::query {

QueryEngine::QueryEngine(QueryEngineConfig config)
    : config_(std::move(config)), store_(config_.publish_dir) {}

std::size_t QueryEngine::refresh() {
  const std::vector<std::uint64_t> on_disk = store_.generations();

  // Which generations are new? (Pointer reads only under the lock.)
  std::vector<std::uint64_t> to_load;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::uint64_t generation : on_disk)
      if (loaded_.find(generation) == loaded_.end())
        to_load.push_back(generation);
  }

  // Decode + rebuild outside the lock: this is the expensive part
  // (O(sketch size) per generation) and must not stall readers.
  std::vector<std::shared_ptr<const LoadedSnapshot>> fresh;
  for (const std::uint64_t generation : to_load) {
    obs::ScopedTimer timer(obs::QueryMetrics::get().load_ns);
    auto snapshot = store_.load(generation);
    if (!snapshot) {
      // Torn (publisher mid-rename is impossible — rename is atomic — so
      // this is a corrupt or vanished file): count and fall back to
      // whatever else is valid.
      if (obs::recording()) obs::QueryMetrics::get().reload_errors.inc();
      continue;
    }
    fresh.push_back(std::make_shared<const LoadedSnapshot>(
        std::move(*snapshot)));
    if (obs::recording()) obs::QueryMetrics::get().reloads.inc();
  }

  std::size_t mapped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& loaded : fresh) {
      loaded_[loaded->snapshot.generation] = std::move(loaded);
      ++mapped;
    }
    // Unmap generations pruned from disk (readers holding a shared_ptr
    // keep theirs alive; cache entries age out by LRU).
    for (auto it = loaded_.begin(); it != loaded_.end();) {
      const bool present =
          std::find(on_disk.begin(), on_disk.end(), it->first) !=
          on_disk.end();
      it = present ? std::next(it) : loaded_.erase(it);
    }
    if (obs::recording()) {
      auto& metrics = obs::QueryMetrics::get();
      metrics.loaded_generations.set(
          static_cast<std::int64_t>(loaded_.size()));
      if (!loaded_.empty()) {
        const std::uint64_t published =
            loaded_.rbegin()->second->snapshot.published_unix_ns;
        const std::uint64_t now = obs::unix_now_ns();
        metrics.stale_generation.set(static_cast<std::int64_t>(
            now > published ? (now - published) / 1'000'000 : 0));
      }
    }
  }
  return mapped;
}

std::shared_ptr<const LoadedSnapshot> QueryEngine::newest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (loaded_.empty()) return nullptr;
  return loaded_.rbegin()->second;
}

std::shared_ptr<const LoadedSnapshot> QueryEngine::at_generation(
    std::uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = loaded_.find(generation);
  return it == loaded_.end() ? nullptr : it->second;
}

std::shared_ptr<const LoadedSnapshot> QueryEngine::at_epoch_at_most(
    std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<const LoadedSnapshot> best;
  for (const auto& [generation, loaded] : loaded_)
    if (loaded->snapshot.epoch_watermark <= epoch) best = loaded;
  return best;
}

std::vector<std::uint64_t> QueryEngine::loaded_generations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(loaded_.size());
  for (const auto& [generation, loaded] : loaded_) out.push_back(generation);
  return out;
}

std::string QueryEngine::cached(std::uint64_t generation,
                                const std::string& key,
                                const std::function<std::string()>& render) {
  const std::string full_key = std::to_string(generation) + ":" + key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_index_.find(full_key);
    if (it != cache_index_.end()) {
      // Move to front (most recently used).
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      if (obs::recording()) obs::QueryMetrics::get().cache_hits.inc();
      return it->second->second;
    }
  }
  if (obs::recording()) obs::QueryMetrics::get().cache_misses.inc();
  // Render outside the lock — answers must not serialize behind each
  // other. Two racing misses both render; last insert wins, both bodies
  // are identical (same immutable snapshot, deterministic renderer).
  std::string body = render();
  cache_put(full_key, body);
  return body;
}

void QueryEngine::cache_put(const std::string& full_key,
                            const std::string& body) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_index_.find(full_key);
  if (it != cache_index_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.emplace_front(full_key, body);
  cache_index_[full_key] = cache_lru_.begin();
  while (cache_lru_.size() > config_.cache_entries) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

std::size_t QueryEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_lru_.size();
}

}  // namespace dcs::query
