// Immutable query snapshots: the unit of exchange between the collector's
// snapshot publisher and the dcs_query_server read tier.
//
// A snapshot is the PR-4 checkpoint container (merged sketch + per-site
// watermarks + detector blob) wrapped in a query manifest: generation id,
// publish timestamp, epoch watermark, detection outputs (alert log, active
// alarm count) and precomputed answers (top-k, distinct-pair estimate) that
// exist only in collector memory and therefore never reach the durable
// checkpoint. Because the Distinct-Count Sketch is linear, rebuilding
// TrackingDcs over the embedded sketch reproduces the collector's tracking
// state exactly — a snapshot is a self-contained, bit-exact query substrate
// for the merged stream at its watermark (Ganguly et al., ICDCS 2007, §5).
//
//   publish-dir/
//     query-<G>.dcsq   generation G, written atomically (temp + fsync +
//                      rename + dir fsync), versioned header + CRC-32
//                      footer. The newest `retain` generations are kept
//                      for time-travel queries; older ones are pruned.
//
// The publish/watch protocol is rename-based and lock-free: the publisher
// only ever renames complete files into place, the watcher only ever opens
// files whose CRC verifies, falling back a generation on a torn or corrupt
// newest file. Reader and writer never coordinate beyond the directory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "detection/alert_types.hpp"
#include "service/checkpoint.hpp"
#include "sketch/top_k.hpp"

namespace dcs::query {

/// One published snapshot: manifest + embedded checkpoint container.
struct QuerySnapshot {
  std::uint64_t generation = 0;
  /// Wall-clock publish stamp; the staleness gauge and the time-travel
  /// responses report it.
  std::uint64_t published_unix_ns = 0;
  /// Highest epoch merged across all sites when the snapshot was cut.
  std::uint64_t epoch_watermark = 0;
  std::uint64_t deltas_merged = 0;
  std::uint64_t active_alarms = 0;
  /// Collector-computed estimate at publish time (equals a tracking
  /// rebuild's answer by linearity; stored so /distinct_pairs needs no
  /// sketch walk).
  std::uint64_t distinct_pairs = 0;
  /// Full alert event log at publish time.
  std::vector<Alert> alerts;
  /// Precomputed top-k at the publisher's k — the hot dashboard answer.
  TopKResult top_k;
  /// The durable container: merged sketch, site watermarks, totals,
  /// detector blob. checkpoint.generation mirrors `generation`.
  service::CheckpointState checkpoint;
};

/// Directory of generation-numbered snapshot files, shared by publisher
/// (write/prune) and query server (list/load). Stateless beyond the path —
/// every call re-reads the directory, which is what makes the watch
/// protocol coordination-free.
class SnapshotStore {
 public:
  /// Creates `dir` (and parents) if missing. `retain` generations are kept
  /// by prune_retained (must be >= 1).
  explicit SnapshotStore(std::string dir, std::uint64_t retain = 8);

  const std::string& dir() const noexcept { return dir_; }
  std::uint64_t retain() const noexcept { return retain_; }
  std::string path(std::uint64_t generation) const;

  /// Serialize/parse one snapshot. decode throws SerializeError on any
  /// malformed input (bad magic/version, truncation, CRC mismatch,
  /// trailing bytes) and never partially applies.
  static std::string encode(const QuerySnapshot& snapshot);
  static QuerySnapshot decode(const std::string& bytes);

  /// Atomically publish `snapshot.generation`; returns bytes written.
  /// Throws SerializeError on I/O failure.
  std::uint64_t write(const QuerySnapshot& snapshot) const;

  /// Generations present on disk (by file name), ascending.
  std::vector<std::uint64_t> generations() const;
  std::uint64_t max_generation() const;

  /// Load one generation; std::nullopt when missing, torn, or corrupt
  /// (the file-name generation must match the payload's).
  std::optional<QuerySnapshot> load(std::uint64_t generation) const;

  /// Newest generation that decodes cleanly, walking back over corrupt
  /// ones (each skip counted into `corrupt_skipped` when non-null).
  std::optional<QuerySnapshot> load_latest(
      std::uint64_t* corrupt_skipped = nullptr) const;

  /// Keep the newest `retain()` generation numbers at or below
  /// `newest_generation`; delete older snapshot files.
  void prune_retained(std::uint64_t newest_generation) const;

 private:
  std::string dir_;
  std::uint64_t retain_;
};

}  // namespace dcs::query
