#include "query/publisher.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace dcs::query {

SnapshotPublisher::SnapshotPublisher(SnapshotPublisherConfig config,
                                     Provider provider)
    : config_(std::move(config)),
      provider_(std::move(provider)),
      store_(config_.publish_dir, config_.retain) {
  // Resume numbering above anything already on disk (publisher restart):
  // a watcher may have mapped those generations, so names never recur.
  generation_ = store_.max_generation();
}

SnapshotPublisher::~SnapshotPublisher() { stop(); }

void SnapshotPublisher::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  publish_now();
  thread_ = std::thread([this] { publish_loop(); });
}

void SnapshotPublisher::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t SnapshotPublisher::publish_now() {
  try {
    service::QueryPublishState state = provider_(config_.top_k);

    QuerySnapshot snapshot;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Above every file present — even one a crashed publisher left
      // corrupt — so a fallback never reuses a mapped name.
      snapshot.generation =
          std::max(generation_, store_.max_generation()) + 1;
    }
    snapshot.published_unix_ns = obs::unix_now_ns();
    snapshot.epoch_watermark = state.epoch_watermark;
    snapshot.deltas_merged = state.deltas_merged;
    snapshot.active_alarms = state.active_alarms;
    snapshot.distinct_pairs = state.distinct_pairs;
    snapshot.alerts = std::move(state.alerts);
    snapshot.top_k = std::move(state.top_k);
    snapshot.checkpoint = std::move(state.checkpoint);
    snapshot.checkpoint.generation = snapshot.generation;

    const std::uint64_t bytes = store_.write(snapshot);
    store_.prune_retained(snapshot.generation);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      generation_ = snapshot.generation;
    }
    if (obs::recording()) {
      auto& metrics = obs::QueryMetrics::get();
      metrics.published_generations.inc();
      metrics.published_bytes.inc(bytes);
    }
    return snapshot.generation;
  } catch (const std::exception&) {
    if (obs::recording()) obs::QueryMetrics::get().publish_errors.inc();
    return 0;
  }
}

void SnapshotPublisher::publish_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    cv_.wait_for(lock, std::chrono::milliseconds(config_.publish_every_ms),
                 [this] { return !running_; });
    if (!running_) return;
    lock.unlock();
    publish_now();
    lock.lock();
  }
}

}  // namespace dcs::query
