#include "query/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "common/serialize.hpp"

namespace dcs::query {

namespace {

// "DCSQ" little-endian: distinct from the checkpoint container's "DCCK" so
// a snapshot can never be mistaken for a durable checkpoint (or vice
// versa) even when a directory is misconfigured.
constexpr std::uint32_t kSnapshotMagic = 0x51534344;
constexpr std::uint8_t kSnapshotVersion = 1;
constexpr const char* kSnapshotPrefix = "query-";
constexpr const char* kSnapshotSuffix = ".dcsq";

std::string generation_name(std::uint64_t generation) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s%08llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(generation), kSnapshotSuffix);
  return buffer;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string dir, std::uint64_t retain)
    : dir_(std::move(dir)), retain_(retain) {
  if (retain_ == 0)
    throw std::invalid_argument("SnapshotStore: retain must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_))
    throw std::runtime_error("SnapshotStore: cannot create directory " + dir_);
}

std::string SnapshotStore::path(std::uint64_t generation) const {
  return dir_ + "/" + generation_name(generation);
}

std::string SnapshotStore::encode(const QuerySnapshot& snapshot) {
  // The checkpoint container carries its own header + CRC footer; embed it
  // as a length-prefixed blob so the outer footer's running CRC covers the
  // whole file without being reset by the inner serializer.
  const std::string checkpoint_blob =
      service::CheckpointStore::encode(snapshot.checkpoint);

  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  writer.crc_reset();
  write_header(writer, kSnapshotMagic, kSnapshotVersion);
  writer.u64(snapshot.generation);
  writer.u64(snapshot.published_unix_ns);
  writer.u64(snapshot.epoch_watermark);
  writer.u64(snapshot.deltas_merged);
  writer.u64(snapshot.active_alarms);
  writer.u64(snapshot.distinct_pairs);
  writer.u64(snapshot.alerts.size());
  for (const Alert& alert : snapshot.alerts) {
    writer.u8(static_cast<std::uint8_t>(alert.kind));
    writer.u32(alert.subject);
    writer.u64(alert.estimated_frequency);
    writer.f64(alert.baseline);
    writer.u64(alert.stream_position);
    writer.u64(alert.epoch);
    writer.f64(alert.threshold);
  }
  writer.u64(snapshot.top_k.entries.size());
  for (const TopKEntry& entry : snapshot.top_k.entries) {
    writer.u32(entry.group);
    writer.u64(entry.estimate);
  }
  writer.i32(snapshot.top_k.inference_level);
  writer.u64(snapshot.top_k.sample_size);
  writer.str(checkpoint_blob);
  write_crc_footer(writer);
  return std::move(out).str();
}

QuerySnapshot SnapshotStore::decode(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(in);
  reader.crc_reset();
  read_header(reader, kSnapshotMagic, kSnapshotVersion);
  QuerySnapshot snapshot;
  snapshot.generation = reader.u64();
  snapshot.published_unix_ns = reader.u64();
  snapshot.epoch_watermark = reader.u64();
  snapshot.deltas_merged = reader.u64();
  snapshot.active_alarms = reader.u64();
  snapshot.distinct_pairs = reader.u64();
  const std::uint64_t alert_count = reader.u64();
  // Guard before allocating: a corrupt count must fail cleanly, not OOM.
  if (alert_count > bytes.size())
    throw SerializeError("QuerySnapshot: absurd alert count");
  snapshot.alerts.reserve(alert_count);
  for (std::uint64_t i = 0; i < alert_count; ++i) {
    Alert alert;
    const std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(Alert::Kind::kCleared))
      throw SerializeError("QuerySnapshot: bad alert kind");
    alert.kind = static_cast<Alert::Kind>(kind);
    alert.subject = reader.u32();
    alert.estimated_frequency = reader.u64();
    alert.baseline = reader.f64();
    alert.stream_position = reader.u64();
    alert.epoch = reader.u64();
    alert.threshold = reader.f64();
    snapshot.alerts.push_back(alert);
  }
  const std::uint64_t entry_count = reader.u64();
  if (entry_count > bytes.size())
    throw SerializeError("QuerySnapshot: absurd top-k count");
  snapshot.top_k.entries.reserve(entry_count);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    TopKEntry entry;
    entry.group = reader.u32();
    entry.estimate = reader.u64();
    snapshot.top_k.entries.push_back(entry);
  }
  snapshot.top_k.inference_level = reader.i32();
  snapshot.top_k.sample_size = reader.u64();
  const std::string checkpoint_blob = reader.str();
  // Verify the container footer BEFORE decoding the nested checkpoint, so
  // a bit flip anywhere is caught by exactly one check and nothing corrupt
  // is ever handed to the inner deserializer.
  read_crc_footer(reader);
  if (in.peek() != std::char_traits<char>::eof())
    throw SerializeError("QuerySnapshot: trailing bytes");

  snapshot.checkpoint = service::CheckpointStore::decode(checkpoint_blob);
  return snapshot;
}

std::uint64_t SnapshotStore::write(const QuerySnapshot& snapshot) const {
  const std::string bytes = encode(snapshot);
  atomic_write_file(path(snapshot.generation), bytes);
  return bytes.size();
}

std::vector<std::uint64_t> SnapshotStore::generations() const {
  std::vector<std::uint64_t> found;
  const std::string prefix = kSnapshotPrefix;
  const std::string suffix = kSnapshotSuffix;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    found.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::uint64_t SnapshotStore::max_generation() const {
  const auto all = generations();
  return all.empty() ? 0 : all.back();
}

std::optional<QuerySnapshot> SnapshotStore::load(
    std::uint64_t generation) const {
  const auto bytes = read_file_bytes(path(generation));
  if (!bytes) return std::nullopt;
  try {
    QuerySnapshot snapshot = decode(*bytes);
    // The file name is untrusted input too: the payload must agree.
    if (snapshot.generation != generation) return std::nullopt;
    return snapshot;
  } catch (const SerializeError&) {
    return std::nullopt;
  }
}

std::optional<QuerySnapshot> SnapshotStore::load_latest(
    std::uint64_t* corrupt_skipped) const {
  if (corrupt_skipped) *corrupt_skipped = 0;
  const auto all = generations();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (auto snapshot = load(*it)) return snapshot;
    if (corrupt_skipped) ++*corrupt_skipped;
  }
  return std::nullopt;
}

void SnapshotStore::prune_retained(std::uint64_t newest_generation) const {
  if (newest_generation < retain_) return;
  const std::uint64_t keep_from = newest_generation - retain_ + 1;
  for (const std::uint64_t generation : generations())
    if (generation < keep_from) std::remove(path(generation).c_str());
}

}  // namespace dcs::query
