// The query tier's HTTP surface: snapshot-backed JSON routes plus the
// generation watcher that keeps the engine current.
//
// Routes (all GET, all JSON):
//   /topk[?k=N]         precomputed ranking (k <= published k served from
//                       the manifest; larger k recomputed from tracking)
//   /frequency?key=K    distinct-member frequency of one group (key is
//                       decimal or 0x-prefixed hex)
//   /distinct_pairs     distinct net-positive pair estimate
//   /alerts             full alert event log at the watermark
//   /sites              per-site watermark census
//   /generations        mapped generations + watermarks (time-travel index)
//   /healthz            liveness + newest generation summary
//   /metrics[.json]     the process's own telemetry registry
//
// Time travel: every snapshot route accepts ?generation=G (exact retained
// generation) or ?epoch<=E (newest generation whose watermark is <= E).
// An unresolvable selector answers 404 — the generation was pruned or
// never existed, a condition the client must see, not be silently
// upgraded past.
//
// Answers are rendered deterministically from immutable snapshots and
// cached keyed by (generation, route+query): byte-identical responses
// until a new generation replaces the key.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/http_export.hpp"
#include "query/engine.hpp"

namespace dcs::query {

struct QueryServerConfig {
  std::string publish_dir;
  /// Directory-watch poll interval; adds to the publish interval in the
  /// worst-case staleness bound.
  int watch_every_ms = 200;
  std::size_t cache_entries = 256;
  obs::HttpServerConfig http;
};

class QueryServer {
 public:
  explicit QueryServer(QueryServerConfig config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Load whatever the publish directory already holds, register routes,
  /// bind, and start the watcher. Throws std::runtime_error when the bind
  /// fails.
  void start();
  void stop();

  std::uint16_t port() const noexcept { return http_.port(); }
  QueryEngine& engine() noexcept { return engine_; }

  /// One watcher pass (also called by the watch thread); exposed so tests
  /// and the smoke driver can force a refresh deterministically.
  void refresh() { engine_.refresh(); }

 private:
  void register_routes();
  void watch_loop();
  /// Resolve the snapshot a request addresses (newest, ?generation=, or
  /// ?epoch<=). Returns nullptr and fills `error` when unresolvable.
  std::shared_ptr<const LoadedSnapshot> resolve(
      const obs::HttpRequest& request, obs::HttpResponse* error);

  QueryServerConfig config_;
  QueryEngine engine_;
  obs::HttpServer http_;
  std::thread watch_thread_;
  std::atomic<bool> watching_{false};
};

}  // namespace dcs::query
