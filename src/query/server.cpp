#include "query/server.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "detection/alert_log.hpp"
#include "obs/export.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace dcs::query {

namespace {

std::string hex_group(Addr group) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%08x", group);
  return buffer;
}

obs::HttpResponse json_response(std::string body) {
  obs::HttpResponse response;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

obs::HttpResponse json_error(int status, const std::string& detail) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\": \"" + detail + "\"}\n";
  return response;
}

/// Parse a non-negative integer query value (decimal or 0x-prefixed hex).
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

/// Shared manifest prefix of every snapshot answer: which generation, at
/// which watermark, published when.
std::string manifest_fields(const QuerySnapshot& snapshot) {
  return "\"generation\": " + std::to_string(snapshot.generation) +
         ",\n  \"epoch_watermark\": " +
         std::to_string(snapshot.epoch_watermark) +
         ",\n  \"published_unix_ns\": " +
         std::to_string(snapshot.published_unix_ns);
}

std::string render_topk(const LoadedSnapshot& loaded, std::size_t k) {
  // The published ranking covers k values up to the publisher's k as a
  // prefix (the order is a deterministic total order, so top-j is the
  // first j rows of top-k). Larger k recomputes from the rebuilt
  // tracking state — identical to the collector's answer by linearity.
  TopKResult result;
  if (k <= loaded.snapshot.top_k.entries.size()) {
    result = loaded.snapshot.top_k;
    result.entries.resize(k);
  } else {
    result = loaded.tracking.top_k(k);
  }
  std::string out = "{\n  " + manifest_fields(loaded.snapshot) + ",\n";
  out += "  \"k\": " + std::to_string(k) + ",\n";
  out += "  \"inference_level\": " + std::to_string(result.inference_level) +
         ",\n";
  out += "  \"sample_size\": " + std::to_string(result.sample_size) + ",\n";
  out += "  \"entries\": [";
  bool first = true;
  for (const TopKEntry& entry : result.entries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"group\": \"" + hex_group(entry.group) +
           "\", \"estimate\": " + std::to_string(entry.estimate) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string render_frequency(const LoadedSnapshot& loaded, Addr key) {
  return "{\n  " + manifest_fields(loaded.snapshot) + ",\n  \"key\": \"" +
         hex_group(key) + "\",\n  \"estimate\": " +
         std::to_string(loaded.tracking.estimate_frequency(key)) + "\n}\n";
}

std::string render_distinct_pairs(const LoadedSnapshot& loaded) {
  return "{\n  " + manifest_fields(loaded.snapshot) +
         ",\n  \"deltas_merged\": " +
         std::to_string(loaded.snapshot.deltas_merged) +
         ",\n  \"distinct_pairs\": " +
         std::to_string(loaded.snapshot.distinct_pairs) + "\n}\n";
}

std::string render_alerts(const LoadedSnapshot& loaded) {
  return "{\n  " + manifest_fields(loaded.snapshot) +
         ",\n  \"active_alarms\": " +
         std::to_string(loaded.snapshot.active_alarms) +
         ",\n  \"alerts\": " + alerts_to_json(loaded.snapshot.alerts) + "}\n";
}

std::string render_sites(const LoadedSnapshot& loaded) {
  std::string out = "{\n  " + manifest_fields(loaded.snapshot) +
                    ",\n  \"sites\": [";
  bool first = true;
  for (const service::SiteWatermark& site : loaded.snapshot.checkpoint.sites) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"site_id\": " + std::to_string(site.site_id) +
           ", \"last_epoch\": " + std::to_string(site.last_epoch) +
           ", \"epochs_merged\": " + std::to_string(site.epochs_merged) +
           ", \"updates_merged\": " + std::to_string(site.updates_merged) +
           ", \"dropped_epochs\": " + std::to_string(site.dropped_epochs) +
           ", \"duplicate_deltas\": " +
           std::to_string(site.duplicate_deltas) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace

QueryServer::QueryServer(QueryServerConfig config)
    : config_(std::move(config)),
      engine_(QueryEngineConfig{config_.publish_dir, config_.cache_entries}),
      http_(config_.http) {}

QueryServer::~QueryServer() { stop(); }

void QueryServer::start() {
  if (watching_.load()) return;
  engine_.refresh();  // serve whatever is already published, immediately
  register_routes();
  http_.start();
  watching_.store(true, std::memory_order_relaxed);
  watch_thread_ = std::thread([this] { watch_loop(); });
}

void QueryServer::stop() {
  if (watching_.exchange(false)) {
    if (watch_thread_.joinable()) watch_thread_.join();
  }
  http_.stop();
}

void QueryServer::watch_loop() {
  while (watching_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.watch_every_ms));
    if (!watching_.load(std::memory_order_relaxed)) return;
    engine_.refresh();
  }
}

std::shared_ptr<const LoadedSnapshot> QueryServer::resolve(
    const obs::HttpRequest& request, obs::HttpResponse* error) {
  // ?generation=G and ?epoch<=E ("epoch<" is the parsed key of the
  // literal epoch<=E form) select a retained generation; bare requests
  // read the newest. An unresolvable selector is the client's signal that
  // the generation aged out of retention — 404, never a silent upgrade.
  if (const std::string* text = request.param("generation")) {
    std::uint64_t generation = 0;
    if (!parse_u64(*text, &generation)) {
      *error = json_error(400, "bad generation: " + *text);
      return nullptr;
    }
    auto loaded = engine_.at_generation(generation);
    if (!loaded)
      *error = json_error(404, "generation not retained: " + *text);
    return loaded;
  }
  if (const std::string* text = request.param("epoch<")) {
    std::uint64_t epoch = 0;
    if (!parse_u64(*text, &epoch)) {
      *error = json_error(400, "bad epoch bound: " + *text);
      return nullptr;
    }
    auto loaded = engine_.at_epoch_at_most(epoch);
    if (!loaded)
      *error = json_error(404, "no retained generation at epoch<=" + *text);
    return loaded;
  }
  auto loaded = engine_.newest();
  if (!loaded) *error = json_error(404, "no snapshot published yet");
  return loaded;
}

void QueryServer::register_routes() {
  // Each snapshot route: resolve the addressed generation, then serve the
  // deterministic rendering through the (generation, route+query) cache.
  const auto cached_route = [this](const obs::HttpRequest& request,
                                   const std::function<std::string(
                                       const LoadedSnapshot&)>& render)
      -> obs::HttpResponse {
    if (obs::recording()) obs::QueryMetrics::get().requests.inc();
    obs::HttpResponse error;
    const auto loaded = resolve(request, &error);
    if (!loaded) return error;
    const std::string key = request.target + "?" + request.query_string;
    return json_response(engine_.cached(
        loaded->snapshot.generation, key,
        [&] { return render(*loaded); }));
  };

  http_.route("/topk", [this, cached_route](const obs::HttpRequest& request)
                           -> obs::HttpResponse {
    std::uint64_t k = 0;
    if (const std::string* text = request.param("k")) {
      if (!parse_u64(*text, &k) || k == 0)
        return json_error(400, "bad k: " + *text);
    }
    return cached_route(request, [k](const LoadedSnapshot& loaded) {
      const std::size_t effective =
          k == 0 ? loaded.snapshot.top_k.entries.size()
                 : static_cast<std::size_t>(k);
      return render_topk(loaded, effective);
    });
  });

  http_.route("/frequency",
              [this, cached_route](const obs::HttpRequest& request)
                  -> obs::HttpResponse {
                const std::string* text = request.param("key");
                if (!text) return json_error(400, "missing key parameter");
                std::uint64_t key = 0;
                if (!parse_u64(*text, &key) ||
                    key > 0xffffffffULL)
                  return json_error(400, "bad key: " + *text);
                return cached_route(
                    request, [key](const LoadedSnapshot& loaded) {
                      return render_frequency(loaded,
                                              static_cast<Addr>(key));
                    });
              });

  http_.route("/distinct_pairs",
              [cached_route](const obs::HttpRequest& request) {
                return cached_route(request, [](const LoadedSnapshot& l) {
                  return render_distinct_pairs(l);
                });
              });

  http_.route("/alerts", [cached_route](const obs::HttpRequest& request) {
    return cached_route(
        request, [](const LoadedSnapshot& l) { return render_alerts(l); });
  });

  http_.route("/sites", [cached_route](const obs::HttpRequest& request) {
    return cached_route(
        request, [](const LoadedSnapshot& l) { return render_sites(l); });
  });

  http_.route("/generations", [this]() -> obs::HttpResponse {
    if (obs::recording()) obs::QueryMetrics::get().requests.inc();
    std::string out = "{\n  \"generations\": [";
    bool first = true;
    for (const std::uint64_t generation : engine_.loaded_generations()) {
      const auto loaded = engine_.at_generation(generation);
      if (!loaded) continue;
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"generation\": " + std::to_string(generation) +
             ", \"epoch_watermark\": " +
             std::to_string(loaded->snapshot.epoch_watermark) +
             ", \"published_unix_ns\": " +
             std::to_string(loaded->snapshot.published_unix_ns) + "}";
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return json_response(std::move(out));
  });

  http_.route("/healthz", [this]() -> obs::HttpResponse {
    const auto loaded = engine_.newest();
    std::string out = "{\n  \"status\": \"ok\",\n";
    if (loaded) {
      out += "  " + manifest_fields(loaded->snapshot) + ",\n";
      const std::uint64_t now = obs::unix_now_ns();
      const std::uint64_t published = loaded->snapshot.published_unix_ns;
      out += "  \"staleness_ms\": " +
             std::to_string(now > published ? (now - published) / 1'000'000
                                            : 0) +
             ",\n";
    } else {
      out += "  \"generation\": 0,\n";
    }
    out += "  \"loaded_generations\": " +
           std::to_string(engine_.loaded_generations().size()) + "\n}\n";
    return json_response(std::move(out));
  });

  http_.route("/metrics", [] {
    obs::HttpResponse response;
    response.body = obs::to_prometheus(obs::Registry::global().snapshot());
    return response;
  });
  http_.route("/metrics.json", [] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = obs::to_json(obs::Registry::global().snapshot());
    return response;
  });
}

}  // namespace dcs::query
