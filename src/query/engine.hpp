// Query engine: immutable in-memory snapshots + a generation-keyed
// response cache. The read half of the query tier, below the HTTP layer.
//
// refresh() scans the publish directory and maps any generation it has not
// seen into a LoadedSnapshot: the decoded manifest plus a TrackingDcs
// rebuilt over the embedded sketch (O(sketch size), once per generation —
// by linearity the rebuilt tracking state is bit-identical to the
// collector's at the published watermark, so every answer computed from it
// equals the collector's answer exactly). Generations pruned from disk are
// unmapped; in-flight readers holding the shared_ptr keep theirs alive
// until they finish.
//
// Concurrency: the generation map and cache sit behind a plain mutex, held
// only for pointer copies and cache bookkeeping — never while decoding a
// snapshot or computing an answer. Readers work off const shared_ptr
// snapshots, so any number of them proceed without contending with each
// other or with refresh() beyond those short critical sections.
//
// The response cache is keyed (generation, route+query): a new publish
// invalidates exactly once — by changing the key — and an LRU bound caps
// memory. Time-travel answers cache under their own generation, so
// dashboards replaying history do not evict the hot head-of-stream entry.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "query/snapshot.hpp"
#include "sketch/tracking_dcs.hpp"

namespace dcs::query {

/// One mapped generation: the decoded snapshot plus the rebuilt tracking
/// state. Immutable after construction; shared by reference count.
struct LoadedSnapshot {
  QuerySnapshot snapshot;
  TrackingDcs tracking;

  explicit LoadedSnapshot(QuerySnapshot s)
      : snapshot(std::move(s)), tracking(snapshot.checkpoint.sketch) {}
};

struct QueryEngineConfig {
  std::string publish_dir;
  /// Response-cache capacity (entries across all generations).
  std::size_t cache_entries = 256;
};

class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineConfig config);

  /// Scan the publish directory: map new generations, unmap pruned ones,
  /// update the loaded/staleness gauges. Returns the number of
  /// generations newly mapped. Corrupt or torn files are counted and
  /// skipped (the newest valid one wins), never fatal.
  std::size_t refresh();

  /// Newest mapped generation (nullptr when none loaded yet).
  std::shared_ptr<const LoadedSnapshot> newest() const;
  /// Exact generation, nullptr when not mapped.
  std::shared_ptr<const LoadedSnapshot> at_generation(
      std::uint64_t generation) const;
  /// Newest mapped generation whose epoch watermark is <= `epoch`
  /// (the `?epoch<=E` time-travel form), nullptr when none qualifies.
  std::shared_ptr<const LoadedSnapshot> at_epoch_at_most(
      std::uint64_t epoch) const;

  /// Mapped generation ids, ascending.
  std::vector<std::uint64_t> loaded_generations() const;

  /// Serve `render()` through the response cache. The cache key is
  /// (generation, key); identical keys return the identical cached bytes.
  std::string cached(std::uint64_t generation, const std::string& key,
                     const std::function<std::string()>& render);

  /// Cache introspection for tests.
  std::size_t cache_size() const;

 private:
  void cache_put(const std::string& full_key, const std::string& body);

  QueryEngineConfig config_;
  SnapshotStore store_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const LoadedSnapshot>> loaded_;
  /// LRU: most recent at the front; map values point into the list.
  std::list<std::pair<std::string, std::string>> cache_lru_;
  std::map<std::string,
           std::list<std::pair<std::string, std::string>>::iterator>
      cache_index_;
};

}  // namespace dcs::query
