// Accuracy metrics for top-k answers, as defined in the paper's §6.1.
//
//   * top-k recall: fraction of the true top-k groups present in the
//     approximate top-k answer;
//   * average relative error: mean of |f̂_v - f_v| / f_v over the *recall
//     set* R (true top-k groups that the approximate answer found);
//   * precision and mean rank displacement are additional diagnostics used
//     by the ablation benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "sketch/top_k.hpp"
#include "stream/generator.hpp"

namespace dcs {

struct TopKAccuracy {
  double recall = 0.0;
  double precision = 0.0;
  double avg_relative_error = 0.0;
  /// Mean |approximate rank - true rank| over the recall set.
  double mean_rank_displacement = 0.0;
  std::size_t recall_set_size = 0;
};

/// Compare an approximate top-k answer against the exact ranking.
/// `truth` must be sorted descending by frequency (as ZipfWorkload and
/// ExactTracker produce); only its first k entries are used.
TopKAccuracy evaluate_top_k(const std::vector<TopKEntry>& approximate,
                            const std::vector<DestFrequency>& truth,
                            std::size_t k);

}  // namespace dcs
