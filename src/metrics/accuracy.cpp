#include "metrics/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace dcs {

TopKAccuracy evaluate_top_k(const std::vector<TopKEntry>& approximate,
                            const std::vector<DestFrequency>& truth,
                            std::size_t k) {
  TopKAccuracy acc;
  const std::size_t true_k = std::min(k, truth.size());
  if (true_k == 0) return acc;

  std::unordered_map<Addr, std::pair<std::uint64_t, std::size_t>> true_top;
  true_top.reserve(true_k);
  for (std::size_t rank = 0; rank < true_k; ++rank)
    true_top[truth[rank].dest] = {truth[rank].frequency, rank};

  const std::size_t approx_k = std::min(k, approximate.size());
  double error_sum = 0.0;
  double displacement_sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t rank = 0; rank < approx_k; ++rank) {
    const TopKEntry& entry = approximate[rank];
    const auto it = true_top.find(entry.group);
    if (it == true_top.end()) continue;
    ++hits;
    const auto [true_freq, true_rank] = it->second;
    error_sum += std::abs(static_cast<double>(entry.estimate) -
                          static_cast<double>(true_freq)) /
                 static_cast<double>(true_freq);
    displacement_sum +=
        std::abs(static_cast<double>(rank) - static_cast<double>(true_rank));
  }

  acc.recall_set_size = hits;
  acc.recall = static_cast<double>(hits) / static_cast<double>(true_k);
  acc.precision =
      approx_k == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(approx_k);
  acc.avg_relative_error = hits == 0 ? 0.0 : error_sum / static_cast<double>(hits);
  acc.mean_rank_displacement =
      hits == 0 ? 0.0 : displacement_sum / static_cast<double>(hits);
  return acc;
}

}  // namespace dcs
