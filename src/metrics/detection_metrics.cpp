#include "metrics/detection_metrics.hpp"

#include <algorithm>

namespace dcs {

DetectionScore score_alerts(const std::vector<Alert>& alerts,
                            const std::vector<AttackWindow>& attacks) {
  DetectionScore score;
  std::vector<bool> detected(attacks.size(), false);
  double latency_sum = 0.0;

  for (const Alert& alert : alerts) {
    if (alert.kind != Alert::Kind::kRaised) continue;
    bool matched = false;
    for (std::size_t i = 0; i < attacks.size(); ++i) {
      const AttackWindow& attack = attacks[i];
      if (alert.subject != attack.subject) continue;
      if (alert.stream_position < attack.begin) continue;
      // Alerts raised after the window closed still credit the attack (the
      // monitor may lag by up to one check interval) but only the first
      // raise sets the latency.
      matched = true;
      if (!detected[i]) {
        detected[i] = true;
        latency_sum +=
            static_cast<double>(alert.stream_position - attack.begin);
      }
      break;
    }
    if (!matched) ++score.false_positives;
  }

  score.true_positives =
      static_cast<std::size_t>(std::count(detected.begin(), detected.end(), true));
  score.false_negatives = attacks.size() - score.true_positives;
  score.mean_detection_latency =
      score.true_positives == 0
          ? 0.0
          : latency_sum / static_cast<double>(score.true_positives);
  return score;
}

}  // namespace dcs
