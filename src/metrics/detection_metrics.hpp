// Detection-quality metrics: score a monitor's alert stream against ground
// truth attack windows. Used by bench/detection_quality and available to
// users evaluating monitor configurations on their own traces.
#pragma once

#include <cstdint>
#include <vector>

#include "detection/ddos_monitor.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

/// Ground truth: `subject` was under attack between stream positions
/// [begin, end) (positions = number of updates ingested).
struct AttackWindow {
  Addr subject = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = UINT64_MAX;
};

struct DetectionScore {
  /// Attacks whose subject raised an alert inside (or after the start of)
  /// its window.
  std::size_t true_positives = 0;
  /// Attacks never alerted.
  std::size_t false_negatives = 0;
  /// Raised alerts whose subject was not under attack at that position.
  std::size_t false_positives = 0;
  /// Mean updates between window begin and the first alert, over detected
  /// attacks.
  double mean_detection_latency = 0.0;

  double recall() const noexcept {
    const std::size_t total = true_positives + false_negatives;
    return total == 0 ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(total);
  }
};

/// Score raised alerts against attack windows. Alerts of kind kCleared are
/// ignored; multiple raises for one attack count once (first one sets the
/// latency).
DetectionScore score_alerts(const std::vector<Alert>& alerts,
                            const std::vector<AttackWindow>& attacks);

}  // namespace dcs
