// Snapshot exporters: Prometheus text exposition and JSON.
//
// Both formats render the same obs::Snapshot. The Prometheus output follows
// the text exposition format (HELP/TYPE headers, cumulative `le` histogram
// buckets, `_sum`/`_count` series) so a node-exporter textfile collector or
// a scrape of a dumped file ingests it directly. The JSON output is a
// self-describing document for dashboards and the golden-file tests, with
// derived p50/p90/p99 included per histogram.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"

namespace dcs::obs {

enum class ExportFormat : std::uint8_t { kPrometheus, kJson };

/// Parse "prom"/"prometheus" or "json" (case-sensitive). Throws
/// std::invalid_argument on anything else.
ExportFormat parse_format(const std::string& name);

std::string to_prometheus(const Snapshot& snapshot);
std::string to_json(const Snapshot& snapshot);

std::string render(const Snapshot& snapshot, ExportFormat format);

/// Render and write to `path` (truncating). Throws std::runtime_error when
/// the file cannot be written.
void write_snapshot_file(const std::string& path, ExportFormat format,
                         const Snapshot& snapshot);

/// Like write_snapshot_file but crash-consistent: renders to a temp file,
/// fsyncs and renames over `path` (common/serialize atomic_write_file), so
/// a reader — or a post-mortem after SIGKILL — always sees a complete
/// snapshot, never a torn one. Used by the tools' --metrics-every flush.
void write_snapshot_file_atomic(const std::string& path, ExportFormat format,
                                const Snapshot& snapshot);

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with the alert event log.
std::string json_escape(std::string_view text);

/// Background thread that re-renders the global registry to `path` (via
/// write_snapshot_file_atomic) every `interval` seconds — the scrape-less
/// fallback behind the tools' --metrics-every flag: a SIGKILLed process
/// still leaves a complete, recent snapshot on disk. Write failures are
/// swallowed (telemetry must never take the daemon down); stop() wakes the
/// thread immediately.
class PeriodicSnapshotWriter {
 public:
  PeriodicSnapshotWriter() = default;
  ~PeriodicSnapshotWriter() { stop(); }

  PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
  PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

  /// No-op when interval_sec <= 0 or path is empty.
  void start(std::string path, ExportFormat format, int interval_sec);
  void stop();
  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// Successful flushes so far (tests).
  std::uint64_t flushes() const noexcept {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  ExportFormat format_ = ExportFormat::kPrometheus;
  int interval_sec_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> flushes_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace dcs::obs
