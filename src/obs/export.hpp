// Snapshot exporters: Prometheus text exposition and JSON.
//
// Both formats render the same obs::Snapshot. The Prometheus output follows
// the text exposition format (HELP/TYPE headers, cumulative `le` histogram
// buckets, `_sum`/`_count` series) so a node-exporter textfile collector or
// a scrape of a dumped file ingests it directly. The JSON output is a
// self-describing document for dashboards and the golden-file tests, with
// derived p50/p90/p99 included per histogram.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace dcs::obs {

enum class ExportFormat : std::uint8_t { kPrometheus, kJson };

/// Parse "prom"/"prometheus" or "json" (case-sensitive). Throws
/// std::invalid_argument on anything else.
ExportFormat parse_format(const std::string& name);

std::string to_prometheus(const Snapshot& snapshot);
std::string to_json(const Snapshot& snapshot);

std::string render(const Snapshot& snapshot, ExportFormat format);

/// Render and write to `path` (truncating). Throws std::runtime_error when
/// the file cannot be written.
void write_snapshot_file(const std::string& path, ExportFormat format,
                         const Snapshot& snapshot);

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with the alert event log.
std::string json_escape(std::string_view text);

}  // namespace dcs::obs
