#include "obs/instruments.hpp"

#include <string>

namespace dcs::obs {

namespace {

std::string index_label(std::size_t index, std::size_t max_label) {
  return index >= max_label ? std::to_string(max_label) + "+"
                            : std::to_string(index);
}

std::array<Counter*, SketchMetrics::kMaxLevelLabel + 1> make_level_hits() {
  std::array<Counter*, SketchMetrics::kMaxLevelLabel + 1> counters{};
  auto& registry = Registry::global();
  for (int l = 0; l <= SketchMetrics::kMaxLevelLabel; ++l)
    counters[static_cast<std::size_t>(l)] = &registry.counter(
        "dcs_sketch_level_updates_total",
        "Updates landing in each first-level geometric-hash bucket "
        "(expected n/2^(level+1))",
        {{"level", index_label(static_cast<std::size_t>(l),
                               SketchMetrics::kMaxLevelLabel)}});
  return counters;
}

}  // namespace

SketchMetrics& SketchMetrics::get() {
  static SketchMetrics instance{
      Registry::global().counter(
          "dcs_sketch_updates_total",
          "Flow updates applied to basic distinct-count sketches"),
      Registry::global().counter(
          "dcs_sketch_deletes_total",
          "Deletion (delta < 0) updates applied to basic sketches"),
      Registry::global().counter(
          "dcs_sketch_level_allocations_total",
          "First-level buckets allocated lazily on first touch"),
      Registry::global().counter(
          "dcs_sketch_query_buckets_total",
          "Second-level buckets classified during distinct-sample collection",
          {{"class", "empty"}}),
      Registry::global().counter(
          "dcs_sketch_query_buckets_total",
          "Second-level buckets classified during distinct-sample collection",
          {{"class", "singleton"}}),
      Registry::global().counter(
          "dcs_sketch_query_buckets_total",
          "Second-level buckets classified during distinct-sample collection",
          {{"class", "collision"}}),
      Registry::global().counter(
          "dcs_sketch_recovery_failures_total",
          "Singleton recoveries rejected by the defensive re-hash check"),
      Registry::global().histogram(
          "dcs_sketch_query_latency_ns",
          "BaseTopk query latency (full sample reconstruction), ns"),
      make_level_hits()};
  return instance;
}

TrackingMetrics& TrackingMetrics::get() {
  static TrackingMetrics instance{
      Registry::global().counter(
          "dcs_tracking_updates_total",
          "Flow updates applied to tracking distinct-count sketches"),
      Registry::global().counter(
          "dcs_tracking_singletons_gained_total",
          "Keys entering the maintained distinct sample (Fig. 6 transitions)"),
      Registry::global().counter(
          "dcs_tracking_singletons_lost_total",
          "Keys leaving the maintained distinct sample (Fig. 6 transitions)"),
      Registry::global().counter(
          "dcs_tracking_heap_ops_total",
          "Priority updates applied to the per-level top-destination heaps"),
      Registry::global().histogram(
          "dcs_tracking_query_latency_ns",
          "TrackTopk query latency (O(k log k) heap read), ns")};
  return instance;
}

ExporterMetrics& ExporterMetrics::get() {
  static ExporterMetrics instance{
      Registry::global().counter("dcs_exporter_packets_total",
                                 "Packets observed by the flow exporter"),
      Registry::global().counter(
          "dcs_exporter_opens_total",
          "+1 flow updates emitted (new half-open handshakes)"),
      Registry::global().counter(
          "dcs_exporter_closes_total",
          "-1 flow updates emitted by handshake completion or RST abort"),
      Registry::global().counter(
          "dcs_exporter_timeout_reaps_total",
          "-1 flow updates emitted by SYN-backlog timeout reaping"),
      Registry::global().gauge(
          "dcs_exporter_half_open_pairs",
          "(client, server) pairs currently in the half-open state")};
  return instance;
}

MonitorMetrics& MonitorMetrics::get() {
  static MonitorMetrics instance{
      Registry::global().counter("dcs_monitor_checks_total",
                                 "Periodic top-k checks run by DDoS monitors"),
      Registry::global().counter("dcs_monitor_alerts_raised_total",
                                 "Alerts raised by DDoS monitors"),
      Registry::global().counter("dcs_monitor_alerts_cleared_total",
                                 "Alerts cleared by DDoS monitors"),
      Registry::global().gauge("dcs_monitor_active_alarms",
                               "Subjects currently in the alarmed state"),
      Registry::global().histogram(
          "dcs_monitor_check_latency_ns",
          "Per-epoch monitor check latency (top-k query + baselines), ns")};
  return instance;
}

Counter& DistributedMetrics::shard_updates(std::size_t shard) {
  return Registry::global().counter(
      "dcs_sharded_updates_total",
      "Flow updates ingested per simulated edge-router shard",
      {{"shard", index_label(shard, kMaxIndexLabel)}});
}

Counter& DistributedMetrics::stripe_updates(std::size_t stripe) {
  return Registry::global().counter(
      "dcs_concurrent_updates_total",
      "Flow updates ingested per concurrent-monitor stripe",
      {{"stripe", index_label(stripe, kMaxIndexLabel)}});
}

DistributedMetrics& DistributedMetrics::get() {
  static DistributedMetrics instance{
      Registry::global().counter(
          "dcs_concurrent_snapshots_total",
          "Stripe-merge snapshots taken by concurrent monitors"),
      Registry::global().histogram(
          "dcs_concurrent_snapshot_latency_ns",
          "Concurrent-monitor snapshot (stripe merge) latency, ns"),
      Registry::global().histogram(
          "dcs_sharded_collect_latency_ns",
          "Sharded-monitor collect (shard merge) latency, ns"),
      Registry::global().counter(
          "dcs_concurrent_batch_applies_total",
          "Batches applied to concurrent-monitor stripes (queue flushes "
          "plus bulk update_batch sub-batches)"),
      Registry::global().histogram(
          "dcs_concurrent_batch_fill_updates",
          "Updates per batch applied to a concurrent-monitor stripe "
          "(queue depth at flush time)")};
  return instance;
}

CollectorMetrics& CollectorMetrics::get() {
  static CollectorMetrics instance{
      Registry::global().counter(
          "dcs_collector_frames_total",
          "Wire frames decoded by sketch-shipping collectors"),
      Registry::global().counter(
          "dcs_collector_frame_errors_total",
          "Malformed frames or payloads rejected (connection dropped)"),
      Registry::global().counter(
          "dcs_collector_deltas_total",
          "Per-epoch sketch deltas merged into the global tracker"),
      Registry::global().counter(
          "dcs_collector_duplicate_deltas_total",
          "Retransmitted deltas deduplicated by per-site epoch tracking"),
      Registry::global().counter(
          "dcs_collector_dropped_epochs_total",
          "Site epochs lost to spool overflow or agent restarts (gaps in "
          "the per-site epoch sequence)"),
      Registry::global().counter(
          "dcs_collector_rejected_hellos_total",
          "Site handshakes rejected for sketch-parameter mismatch"),
      Registry::global().gauge("dcs_collector_connected_sites",
                               "Site agents currently connected"),
      Registry::global().histogram(
          "dcs_collector_merge_latency_ns",
          "Delta merge + tracking rebuild + detection check latency, ns"),
      Registry::global().counter(
          "dcs_collector_shed_deltas_total",
          "Deltas NACKed kRetryLater by admission control (re-shipped by "
          "the site later; shed, not lost)"),
      Registry::global().counter(
          "dcs_collector_shed_bytes_total",
          "Payload bytes of deltas shed by admission control"),
      Registry::global().counter(
          "dcs_collector_deadline_drops_total",
          "Connections dropped for holding a partial frame past the frame "
          "deadline (slow-loris defense)"),
      Registry::global().counter(
          "dcs_collector_idle_reaped_total",
          "Connections reaped after the idle timeout with no traffic"),
      Registry::global().gauge(
          "dcs_collector_inflight_bytes",
          "Delta bytes admitted but not yet merged and released (bounded "
          "by the admission budget)")};
  return instance;
}

ReactorMetrics& ReactorMetrics::get() {
  static ReactorMetrics instance{
      Registry::global().counter(
          "dcs_reactor_wakeups_total",
          "Epoll wakeups across all reactor workers (timeouts included)"),
      Registry::global().counter(
          "dcs_reactor_accepts_total",
          "Connections accepted by the reactor's non-blocking acceptor"),
      Registry::global().counter(
          "dcs_reactor_partial_writes_total",
          "Reply flushes that left bytes queued (peer not draining; "
          "EPOLLOUT armed to resume)"),
      Registry::global().counter(
          "dcs_reactor_out_buffer_drops_total",
          "Connections dropped for exceeding the reply out-buffer cap "
          "(peer sent frames but never read its acks)"),
      Registry::global().gauge(
          "dcs_reactor_connections",
          "Connections currently owned by reactor workers"),
      Registry::global().histogram(
          "dcs_reactor_frames_per_wakeup",
          "Complete frames decoded per read wakeup (batching efficiency "
          "of the event loop)")};
  return instance;
}

AgentMetrics& AgentMetrics::get() {
  static AgentMetrics instance{
      Registry::global().counter(
          "dcs_agent_epochs_sealed_total",
          "Epoch sketch deltas sealed and spooled by site agents"),
      Registry::global().counter(
          "dcs_agent_epochs_shipped_total",
          "Epoch deltas acknowledged by a collector"),
      Registry::global().counter(
          "dcs_agent_epochs_dropped_total",
          "Epoch deltas evicted from a full spool (degraded mode)"),
      Registry::global().counter(
          "dcs_agent_reconnects_total",
          "Collector connection attempts after the first"),
      Registry::global().counter(
          "dcs_agent_io_errors_total",
          "Send/receive failures that dropped a collector connection"),
      Registry::global().counter(
          "dcs_agent_resume_skips_total",
          "Spooled epochs dropped without re-shipping because the "
          "collector's Hello ack watermark already covered them"),
      Registry::global().gauge("dcs_agent_spool_depth",
                               "Epoch deltas awaiting collector ack"),
      Registry::global().counter(
          "dcs_agent_nacks_total",
          "kRetryLater NACKs received from collector admission control "
          "(epoch kept spooled; next ship delayed by retry_after_ms)"),
      Registry::global().histogram(
          "dcs_agent_heartbeat_rtt_ns",
          "Heartbeat send to Ack receipt round-trip time (v3 collectors "
          "ack heartbeats; a free network-health probe)")};
  return instance;
}

CheckpointMetrics& CheckpointMetrics::get() {
  static CheckpointMetrics instance{
      Registry::global().counter(
          "dcs_checkpoint_generations_total",
          "Checkpoint generations written durably by collectors"),
      Registry::global().counter(
          "dcs_checkpoint_bytes_written_total",
          "Bytes of checkpoint state written (before journal rotation)"),
      Registry::global().counter(
          "dcs_checkpoint_journal_records_total",
          "Delta records appended to the epoch journal (fsync'd before ack)"),
      Registry::global().counter(
          "dcs_checkpoint_recoveries_total",
          "Collector starts that restored state from a checkpoint/journal"),
      Registry::global().counter(
          "dcs_checkpoint_corrupt_generations_total",
          "Checkpoint generations skipped at recovery (CRC or decode "
          "failure; fell back to an older generation)"),
      Registry::global().counter(
          "dcs_checkpoint_replayed_epochs_total",
          "Journaled epoch deltas re-merged during recovery"),
      Registry::global().counter(
          "dcs_checkpoint_replay_deduped_total",
          "Journaled records skipped during replay (already covered by the "
          "loaded checkpoint's watermarks)"),
      Registry::global().counter(
          "dcs_checkpoint_post_recovery_duplicates_total",
          "Re-shipped pre-crash epochs acked-but-not-merged after a "
          "recovery (watermark dedup; nonzero means agents retransmitted, "
          "zero double-merges)"),
      Registry::global().histogram(
          "dcs_checkpoint_write_latency_ns",
          "Checkpoint encode + atomic publish latency, ns"),
      Registry::global().histogram(
          "dcs_checkpoint_fsync_latency_ns",
          "fsync latency for journal appends and checkpoint publishes, ns")};
  return instance;
}

FederationMetrics& FederationMetrics::get() {
  static FederationMetrics instance{
      Registry::global().counter(
          "dcs_collector_wrong_shard_acks_total",
          "Hellos/deltas answered kWrongShard because the site hashes to "
          "another leaf under the current shard map (re-home churn)"),
      Registry::global().counter(
          "dcs_collector_reshards_total",
          "Shard-map version bumps accepted via set_shard_map"),
      Registry::global().counter(
          "dcs_root_gap_fills_total",
          "Out-of-order epochs merged into a previously recorded gap at "
          "the federation root (exactly-once across relay paths)"),
      Registry::global().gauge(
          "dcs_root_pending_gap_epochs",
          "Epochs below a site watermark the root is still awaiting "
          "(drains to 0 once every leaf journal is re-forwarded)"),
      Registry::global().counter(
          "dcs_root_relayed_deltas_total",
          "Deltas merged from role=leaf uplink connections at the root"),
      Registry::global().counter(
          "dcs_leaf_uplink_shed_total",
          "Deltas NACKed kRetryLater because the leaf uplink spool was "
          "full (backpressure to the agent, not loss)"),
      Registry::global().counter(
          "dcs_leaf_uplink_relayed_total",
          "Deltas enqueued on the leaf uplink spool for relay to the root"),
      Registry::global().counter(
          "dcs_leaf_uplink_acked_total",
          "Relayed deltas acknowledged by the root (kOk or kDuplicate)"),
      Registry::global().counter(
          "dcs_leaf_uplink_nacks_total",
          "Relayed deltas NACKed kRetryLater by the root (re-shipped)"),
      Registry::global().counter(
          "dcs_leaf_uplink_reconnects_total",
          "Leaf uplink reconnect attempts to the root"),
      Registry::global().gauge(
          "dcs_leaf_uplink_spool_depth",
          "Relayed deltas spooled on the leaf uplink awaiting a root ack "
          "(leaf lag)"),
      Registry::global().counter(
          "dcs_agent_rehomes_total",
          "Agent re-homes: connections moved to another leaf after a "
          "kWrongShard ack or a pushed shard map")};
  return instance;
}

QueryMetrics& QueryMetrics::get() {
  static QueryMetrics instance{
      Registry::global().counter(
          "dcs_query_published_generations_total",
          "Query snapshots published atomically by the collector-side "
          "publisher"),
      Registry::global().counter(
          "dcs_query_publish_errors_total",
          "Snapshot publish attempts that failed (I/O error; the previous "
          "generation keeps serving)"),
      Registry::global().counter(
          "dcs_query_published_bytes_total",
          "Bytes of query snapshots published"),
      Registry::global().counter(
          "dcs_query_reloads_total",
          "Snapshot generations loaded (mapped) by the query server's "
          "generation watcher"),
      Registry::global().counter(
          "dcs_query_reload_errors_total",
          "Snapshot generations that failed to load (CRC or decode "
          "failure; the watcher fell back to the previous generation)"),
      Registry::global().counter(
          "dcs_query_requests_total",
          "Query-tier requests answered (all routes, cache hits included)"),
      Registry::global().counter(
          "dcs_query_cache_hits_total",
          "Query answers served from the response cache"),
      Registry::global().counter(
          "dcs_query_cache_misses_total",
          "Query answers computed from the snapshot (then cached)"),
      Registry::global().gauge(
          "dcs_query_loaded_generations",
          "Snapshot generations currently mapped in memory"),
      Registry::global().gauge(
          "dcs_query_stale_generation",
          "Milliseconds since the newest loaded snapshot was published — "
          "bounded by the publish interval plus one watch poll when the "
          "tier is healthy"),
      Registry::global().histogram(
          "dcs_query_snapshot_load_ns",
          "Snapshot decode + tracking-state rebuild latency, ns")};
  return instance;
}

}  // namespace dcs::obs
