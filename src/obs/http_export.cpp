#include "obs/http_export.hpp"

#include <cctype>
#include <stdexcept>
#include <utility>

namespace dcs::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default:  return "Internal Server Error";
  }
}

std::string render_response(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += " ";
  out += status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  for (const auto& [name, value] : response.extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  // Content-Length and Connection: close go on EVERY response, error
  // responses included — a client must never have to wait for EOF to know
  // the body ended, and must never reuse the connection.
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse error_response(int status, std::string_view detail) {
  HttpResponse response;
  response.status = status;
  response.content_type = "text/plain; charset=utf-8";
  response.body = std::string(status_text(status)) + ": " +
                  std::string(detail) + "\n";
  if (status == 405) response.extra_headers.emplace_back("Allow", "GET");
  return response;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += c;  // malformed escape: keep verbatim
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_query_params(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view piece = query.substr(start, end - start);
    if (!piece.empty()) {
      const std::size_t eq = piece.find('=');
      if (eq == std::string_view::npos)
        params.emplace_back(url_decode(piece), std::string());
      else
        params.emplace_back(url_decode(piece.substr(0, eq)),
                            url_decode(piece.substr(eq + 1)));
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return params;
}

OpsMetrics& OpsMetrics::get() {
  static OpsMetrics* instance = [] {
    auto& registry = Registry::global();
    return new OpsMetrics{
        registry.counter("dcs_ops_requests_total",
                         "HTTP requests served by the embedded ops server"),
        registry.counter("dcs_ops_request_errors_total",
                         "Ops-server requests answered with a non-200 "
                         "status or dropped as malformed"),
    };
  }();
  return *instance;
}

HttpServer::HttpServer(HttpServerConfig config)
    : config_(std::move(config)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, HttpHandler handler) {
  routes_[std::move(path)] =
      [handler = std::move(handler)](const HttpRequest&) { return handler(); };
}

void HttpServer::route(std::string path, HttpRequestHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

void HttpServer::start() {
  if (running_.load()) return;
  auto listener =
      service::TcpListener::listen(config_.bind_address, config_.port);
  if (!listener)
    throw std::runtime_error("http_export: cannot bind " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port));
  listener_ = std::move(*listener);
  port_ = listener_.port();
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();  // wakes the accept loop's next poll
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto socket = listener_.accept(/*timeout_ms=*/100);
    if (!socket) continue;
    handle_connection(std::move(*socket));
  }
}

void HttpServer::handle_connection(service::TcpSocket socket) {
  auto& metrics = OpsMetrics::get();
  metrics.requests.inc();
  socket.set_timeouts(static_cast<std::uint64_t>(config_.io_timeout_ms),
                      static_cast<std::uint64_t>(config_.io_timeout_ms));

  // Read until the end of the header block; the ops plane never accepts
  // request bodies, so CRLFCRLF terminates everything we care about.
  std::string request;
  char buffer[2048];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() >= config_.max_request_bytes) {
      metrics.request_errors.inc();
      socket.send_all(render_response(
          error_response(400, "request headers too large")));
      return;
    }
    const auto got = socket.recv_some(buffer, sizeof buffer);
    if (got.bytes == 0) {  // EOF, timeout or reset before a full request
      metrics.request_errors.inc();
      return;
    }
    request.append(buffer, got.bytes);
  }

  // Request line: METHOD SP target SP version.
  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos) {
    metrics.request_errors.inc();
    socket.send_all(render_response(
        error_response(400, "malformed request line")));
    return;
  }
  HttpRequest parsed;
  parsed.method = line.substr(0, method_end);
  parsed.target = line.substr(method_end + 1, target_end - method_end - 1);
  if (const std::size_t query = parsed.target.find('?');
      query != std::string::npos) {
    parsed.query_string = parsed.target.substr(query + 1);
    parsed.target.resize(query);
    parsed.params = parse_query_params(parsed.query_string);
  }

  HttpResponse response;
  if (parsed.method != "GET") {
    response = error_response(405, "only GET is supported");
  } else if (const auto it = routes_.find(parsed.target);
             it == routes_.end()) {
    response = error_response(404, "no such endpoint: " + parsed.target);
  } else {
    try {
      response = it->second(parsed);
    } catch (const std::exception& error) {
      response = error_response(500, error.what());
    }
  }
  if (response.status != 200) metrics.request_errors.inc();
  socket.send_all(render_response(response));
}

}  // namespace dcs::obs
