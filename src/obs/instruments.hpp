// Pre-registered metric bundles for the library's instrumented hot paths.
//
// Each subsystem gets one lazily-constructed bundle of references into the
// global Registry (construct-on-first-use keeps static-init order safe).
// Hot paths fetch the bundle once per call under `if (obs::recording())`,
// so a disabled build pays one relaxed bool load and nothing else.
//
// The full catalog — name, type, labels, and which paper quantity each
// metric tracks — is documented in docs/OBSERVABILITY.md; keep the two in
// sync when adding metrics.
#pragma once

#include <array>
#include <cstddef>

#include "obs/metrics.hpp"

namespace dcs::obs {

/// DistinctCountSketch (paper §3-§4): update fan-out and query-side bucket
/// classification.
struct SketchMetrics {
  Counter& updates;             // dcs_sketch_updates_total
  Counter& deletes;             // dcs_sketch_deletes_total
  Counter& level_allocations;   // dcs_sketch_level_allocations_total
  Counter& query_empty;         // dcs_sketch_query_buckets_total{class=empty}
  Counter& query_singleton;     // ...{class=singleton}
  Counter& query_collision;     // ...{class=collision}
  Counter& recovery_failures;   // dcs_sketch_recovery_failures_total
  Histogram& query_ns;          // dcs_sketch_query_latency_ns

  /// First-level geometric hash hits, labeled by level; levels beyond
  /// kMaxLevelLabel fold into the final "32+" series.
  static constexpr int kMaxLevelLabel = 32;
  Counter& level_hits(int level) noexcept {
    return *level_hits_[static_cast<std::size_t>(
        level > kMaxLevelLabel ? kMaxLevelLabel : level)];
  }

  static SketchMetrics& get();

  std::array<Counter*, kMaxLevelLabel + 1> level_hits_;
};

/// TrackingDcs (paper §5): Fig. 6 singleton-set churn and heap maintenance.
struct TrackingMetrics {
  Counter& updates;             // dcs_tracking_updates_total
  Counter& singletons_gained;   // dcs_tracking_singletons_gained_total
  Counter& singletons_lost;     // dcs_tracking_singletons_lost_total
  Counter& heap_ops;            // dcs_tracking_heap_ops_total
  Histogram& query_ns;          // dcs_tracking_query_latency_ns

  static TrackingMetrics& get();
};

/// FlowUpdateExporter: handshake state machine and SYN-backlog reaping.
struct ExporterMetrics {
  Counter& packets;             // dcs_exporter_packets_total
  Counter& opens;               // dcs_exporter_opens_total (+1 emissions)
  Counter& closes;              // dcs_exporter_closes_total (-1, ACK/RST)
  Counter& timeout_reaps;       // dcs_exporter_timeout_reaps_total (-1, timer)
  Gauge& half_open;             // dcs_exporter_half_open_pairs

  static ExporterMetrics& get();
};

/// DdosMonitor: per-epoch checks and the alert state machine.
struct MonitorMetrics {
  Counter& checks;              // dcs_monitor_checks_total
  Counter& alerts_raised;       // dcs_monitor_alerts_raised_total
  Counter& alerts_cleared;      // dcs_monitor_alerts_cleared_total
  Gauge& active_alarms;         // dcs_monitor_active_alarms
  Histogram& check_ns;          // dcs_monitor_check_latency_ns

  static MonitorMetrics& get();
};

/// ShardedMonitor / ConcurrentMonitor: per-shard and per-stripe ingest.
struct DistributedMetrics {
  Counter& snapshots;           // dcs_concurrent_snapshots_total
  Histogram& snapshot_ns;       // dcs_concurrent_snapshot_latency_ns
  Histogram& collect_ns;        // dcs_sharded_collect_latency_ns
  Counter& batch_applies;       // dcs_concurrent_batch_applies_total
  Histogram& batch_fill;        // dcs_concurrent_batch_fill_updates

  /// dcs_sharded_updates_total{shard=...}; indices beyond kMaxIndexLabel
  /// fold into the final "32+" series. Takes the registry lock — resolve
  /// once at construction, never per update.
  static constexpr std::size_t kMaxIndexLabel = 32;
  static Counter& shard_updates(std::size_t shard);
  /// dcs_concurrent_updates_total{stripe=...}, same folding rule.
  static Counter& stripe_updates(std::size_t stripe);

  static DistributedMetrics& get();
};

/// src/service collector: frame ingest, delta merging, site liveness, and
/// the overload ledger (admission sheds, deadline/idle connection drops).
struct CollectorMetrics {
  Counter& frames;              // dcs_collector_frames_total
  Counter& frame_errors;        // dcs_collector_frame_errors_total
  Counter& deltas;              // dcs_collector_deltas_total
  Counter& duplicate_deltas;    // dcs_collector_duplicate_deltas_total
  Counter& dropped_epochs;      // dcs_collector_dropped_epochs_total
  Counter& rejected_hellos;     // dcs_collector_rejected_hellos_total
  Gauge& connected_sites;       // dcs_collector_connected_sites
  Histogram& merge_ns;          // dcs_collector_merge_latency_ns
  Counter& shed_deltas;         // dcs_collector_shed_deltas_total
  Counter& shed_bytes;          // dcs_collector_shed_bytes_total
  Counter& deadline_drops;      // dcs_collector_deadline_drops_total
  Counter& idle_reaped;         // dcs_collector_idle_reaped_total
  Gauge& inflight_bytes;        // dcs_collector_inflight_bytes

  static CollectorMetrics& get();
};

/// src/service epoll ingest reactor: event-loop health. Frame/merge/shed
/// accounting stays in CollectorMetrics (shared with the threaded path);
/// these cover what only the reactor has — wakeups, the accept drain, and
/// reply-path partial writes.
struct ReactorMetrics {
  Counter& wakeups;             // dcs_reactor_wakeups_total
  Counter& accepts;             // dcs_reactor_accepts_total
  Counter& partial_writes;      // dcs_reactor_partial_writes_total
  Counter& out_buffer_drops;    // dcs_reactor_out_buffer_drops_total
  Gauge& connections;           // dcs_reactor_connections
  Histogram& frames_per_wakeup; // dcs_reactor_frames_per_wakeup

  static ReactorMetrics& get();
};

/// src/service site agent: epoch lifecycle and degraded-mode accounting.
struct AgentMetrics {
  Counter& epochs_sealed;       // dcs_agent_epochs_sealed_total
  Counter& epochs_shipped;      // dcs_agent_epochs_shipped_total
  Counter& epochs_dropped;      // dcs_agent_epochs_dropped_total
  Counter& reconnects;          // dcs_agent_reconnects_total
  Counter& io_errors;           // dcs_agent_io_errors_total
  Counter& resume_skips;        // dcs_agent_resume_skips_total
  Gauge& spool_depth;           // dcs_agent_spool_depth
  Counter& nacks;               // dcs_agent_nacks_total
  Histogram& heartbeat_rtt_ns;  // dcs_agent_heartbeat_rtt_ns

  static AgentMetrics& get();
};

/// src/service collector durability: checkpoint generations, epoch journal,
/// and crash recovery.
struct CheckpointMetrics {
  Counter& generations;          // dcs_checkpoint_generations_total
  Counter& bytes_written;        // dcs_checkpoint_bytes_written_total
  Counter& journal_records;      // dcs_checkpoint_journal_records_total
  Counter& recoveries;           // dcs_checkpoint_recoveries_total
  Counter& corrupt_skipped;      // dcs_checkpoint_corrupt_generations_total
  Counter& replayed_epochs;      // dcs_checkpoint_replayed_epochs_total
  Counter& replay_deduped;       // dcs_checkpoint_replay_deduped_total
  Counter& post_recovery_duplicates;
                                 // dcs_checkpoint_post_recovery_duplicates_total
  Histogram& write_ns;           // dcs_checkpoint_write_latency_ns
  Histogram& fsync_ns;           // dcs_checkpoint_fsync_latency_ns

  static CheckpointMetrics& get();
};

/// Two-tier federation (src/service/federation, docs/FEDERATION.md): shard
/// enforcement and re-homing, the leaf→root uplink, and the root's
/// gap-filling exactly-once dedup.
struct FederationMetrics {
  Counter& wrong_shard_acks;    // dcs_collector_wrong_shard_acks_total
  Counter& reshards;            // dcs_collector_reshards_total
  Counter& gap_fills;           // dcs_root_gap_fills_total
  Gauge& pending_gap_epochs;    // dcs_root_pending_gap_epochs
  Counter& relayed_deltas;      // dcs_root_relayed_deltas_total
  Counter& tap_shed_deltas;     // dcs_leaf_uplink_shed_total
  Counter& uplink_relayed;      // dcs_leaf_uplink_relayed_total
  Counter& uplink_acked;        // dcs_leaf_uplink_acked_total
  Counter& uplink_nacks;        // dcs_leaf_uplink_nacks_total
  Counter& uplink_reconnects;   // dcs_leaf_uplink_reconnects_total
  Gauge& uplink_spool_depth;    // dcs_leaf_uplink_spool_depth
  Counter& rehomes;             // dcs_agent_rehomes_total

  static FederationMetrics& get();
};

/// Query tier (src/query): the collector-side snapshot publisher and the
/// dcs_query_server read path (generation watcher, response cache).
struct QueryMetrics {
  Counter& published_generations;  // dcs_query_published_generations_total
  Counter& publish_errors;         // dcs_query_publish_errors_total
  Counter& published_bytes;        // dcs_query_published_bytes_total
  Counter& reloads;                // dcs_query_reloads_total
  Counter& reload_errors;          // dcs_query_reload_errors_total
  Counter& requests;               // dcs_query_requests_total
  Counter& cache_hits;             // dcs_query_cache_hits_total
  Counter& cache_misses;           // dcs_query_cache_misses_total
  Gauge& loaded_generations;       // dcs_query_loaded_generations
  Gauge& stale_generation;         // dcs_query_stale_generation
  Histogram& load_ns;              // dcs_query_snapshot_load_ns

  static QueryMetrics& get();
};

}  // namespace dcs::obs
