#include "obs/trace.hpp"

#include <chrono>
#include <sstream>

namespace dcs::obs {

namespace {

constexpr std::string_view kStageNames[kTraceStageCount] = {
    "sealed",   "spooled",   "shipped", "received",
    "admitted", "journaled", "merged",  "detector_evaluated",
};

}  // namespace

std::string_view trace_stage_name(TraceStage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

bool EpochTrace::complete() const {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < kTraceStageCount; ++i) {
    const std::uint64_t t = stage_unix_ns[i];
    if (t == 0 || t < prev) return false;
    prev = t;
  }
  return true;
}

TraceRing::TraceRing(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

void TraceRing::push(const EpochTrace& trace) noexcept {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];
  // Seqlock: odd while the slot is being rewritten. The data words are
  // atomics too, so a racing reader sees at worst a stale word — never UB —
  // and the sequence check rejects the torn copy.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  std::size_t w = 0;
  slot.words[w++].store(trace.site_id, std::memory_order_relaxed);
  slot.words[w++].store(trace.epoch, std::memory_order_relaxed);
  slot.words[w++].store(trace.updates, std::memory_order_relaxed);
  slot.words[w++].store(trace.bytes, std::memory_order_relaxed);
  slot.words[w++].store(trace.freshness_ns, std::memory_order_relaxed);
  slot.words[w++].store(trace.alerts_raised, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kTraceStageCount; ++i)
    slot.words[w++].store(trace.stage_unix_ns[i], std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<EpochTrace> TraceRing::snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t n = slots_.size();
  const std::uint64_t begin = end > n ? end - n : 0;
  std::vector<EpochTrace> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket % n];
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != 2 * ticket + 2) continue;  // overwritten or in flight
    EpochTrace trace;
    std::size_t w = 0;
    trace.site_id = slot.words[w++].load(std::memory_order_relaxed);
    trace.epoch = slot.words[w++].load(std::memory_order_relaxed);
    trace.updates = slot.words[w++].load(std::memory_order_relaxed);
    trace.bytes = slot.words[w++].load(std::memory_order_relaxed);
    trace.freshness_ns = slot.words[w++].load(std::memory_order_relaxed);
    trace.alerts_raised = slot.words[w++].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kTraceStageCount; ++i)
      trace.stage_unix_ns[i] =
          slot.words[w++].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before)
      continue;  // writer moved in while we copied
    out.push_back(trace);
  }
  return out;
}

std::string traces_to_json(const std::vector<EpochTrace>& traces) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const EpochTrace& t = traces[i];
    if (i != 0) out << ",";
    out << "\n  {\"site_id\": " << t.site_id << ", \"epoch\": " << t.epoch
        << ", \"updates\": " << t.updates << ", \"bytes\": " << t.bytes
        << ", \"complete\": " << (t.complete() ? "true" : "false")
        << ", \"freshness_ns\": " << t.freshness_ns
        << ", \"alerts_raised\": " << t.alerts_raised << ", \"stages\": {";
    bool first = true;
    for (std::size_t s = 0; s < kTraceStageCount; ++s) {
      if (t.stage_unix_ns[s] == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "\"" << kStageNames[s] << "\": " << t.stage_unix_ns[s];
    }
    out << "}}";
  }
  out << (traces.empty() ? "]\n" : "\n]\n");
  return out.str();
}

std::uint64_t unix_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceMetrics::observe_span(TraceStage stage, std::uint64_t prev_unix_ns,
                                std::uint64_t stage_unix_ns) {
  if (prev_unix_ns == 0 || stage_unix_ns == 0) return;
  const std::uint64_t span =
      stage_unix_ns >= prev_unix_ns ? stage_unix_ns - prev_unix_ns : 0;
  this->stage(stage).observe(span);
}

TraceMetrics& TraceMetrics::get() {
  static TraceMetrics* instance = [] {
    auto& registry = Registry::global();
    auto* m = new TraceMetrics{
        {},
        registry.histogram(
            "dcs_detection_freshness_ns",
            "Epoch seal time to detector verdict, end to end (the "
            "real-time detection SLO)"),
    };
    for (std::size_t i = 0; i < kTraceStageCount; ++i)
      m->stage_ns[i] = &registry.histogram(
          "dcs_trace_stage_ns",
          "Time spent reaching each epoch pipeline stage from the "
          "previous one",
          {{"stage", std::string(kStageNames[i])}});
    return m;
  }();
  return *instance;
}

}  // namespace dcs::obs
