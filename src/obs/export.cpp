#include "obs/export.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/serialize.hpp"

namespace dcs::obs {

ExportFormat parse_format(const std::string& name) {
  if (name == "prom" || name == "prometheus") return ExportFormat::kPrometheus;
  if (name == "json") return ExportFormat::kJson;
  throw std::invalid_argument("unknown metrics format '" + name +
                              "' (expected prom or json)");
}

namespace {

std::string format_u64(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, v);
  return buffer;
}

std::string format_i64(std::int64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%" PRId64, v);
  return buffer;
}

std::string format_quantile(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", v);
  return buffer;
}

/// Escape a Prometheus label value: backslash, double quote, newline.
std::string prom_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Render `{k="v",...}` — with `extra` appended last — or "" when empty.
std::string prom_labels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + prom_escape(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// Emit `# HELP` / `# TYPE` once per family (the snapshot is sorted by
/// name, so label variants of one family arrive consecutively).
void family_header(std::string& out, std::string& last_family,
                   const MetricId& id, const char* type) {
  if (id.name == last_family) return;
  last_family = id.name;
  out += "# HELP " + id.name + " " + id.help + "\n";
  out += "# TYPE " + id.name + " " + type + "\n";
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const CounterSample& sample : snapshot.counters) {
    family_header(out, last_family, sample.id, "counter");
    out += sample.id.name + prom_labels(sample.id.labels) + " " +
           format_u64(sample.value) + "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    family_header(out, last_family, sample.id, "gauge");
    out += sample.id.name + prom_labels(sample.id.labels) + " " +
           format_i64(sample.value) + "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    family_header(out, last_family, sample.id, "histogram");
    const HistogramSnapshot& hist = sample.hist;
    std::uint64_t cumulative = 0;
    // Cumulative `le` buckets; empty buckets are elided (allowed by the
    // format — the cumulative value is unchanged), +Inf always emitted.
    for (int i = 0; i < HistogramSnapshot::kBuckets - 1; ++i) {
      if (hist.buckets[static_cast<std::size_t>(i)] == 0) continue;
      cumulative += hist.buckets[static_cast<std::size_t>(i)];
      out += sample.id.name + "_bucket" +
             prom_labels(sample.id.labels,
                         "le=\"" +
                             format_u64(HistogramSnapshot::upper_bound(i)) +
                             "\"") +
             " " + format_u64(cumulative) + "\n";
    }
    out += sample.id.name + "_bucket" +
           prom_labels(sample.id.labels, "le=\"+Inf\"") + " " +
           format_u64(hist.count) + "\n";
    out += sample.id.name + "_sum" + prom_labels(sample.id.labels) + " " +
           format_u64(hist.sum) + "\n";
    out += sample.id.name + "_count" + prom_labels(sample.id.labels) + " " +
           format_u64(hist.count) + "\n";
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const CounterSample& sample : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + json_escape(sample.id.name) +
           "\",\"labels\":" + json_labels(sample.id.labels) +
           ",\"value\":" + format_u64(sample.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  first = true;
  for (const GaugeSample& sample : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + json_escape(sample.id.name) +
           "\",\"labels\":" + json_labels(sample.id.labels) +
           ",\"value\":" + format_i64(sample.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  first = true;
  for (const HistogramSample& sample : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    const HistogramSnapshot& hist = sample.hist;
    out += "    {\"name\":\"" + json_escape(sample.id.name) +
           "\",\"labels\":" + json_labels(sample.id.labels) +
           ",\"count\":" + format_u64(hist.count) +
           ",\"sum\":" + format_u64(hist.sum) +
           ",\"p50\":" + format_quantile(hist.quantile(0.50)) +
           ",\"p90\":" + format_quantile(hist.quantile(0.90)) +
           ",\"p99\":" + format_quantile(hist.quantile(0.99)) +
           ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (hist.buckets[static_cast<std::size_t>(i)] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "{\"le\":";
      out += i >= HistogramSnapshot::kBuckets - 1
                 ? "null"
                 : format_u64(HistogramSnapshot::upper_bound(i));
      out += ",\"count\":" +
             format_u64(hist.buckets[static_cast<std::size_t>(i)]) + "}";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string render(const Snapshot& snapshot, ExportFormat format) {
  return format == ExportFormat::kPrometheus ? to_prometheus(snapshot)
                                             : to_json(snapshot);
}

void write_snapshot_file(const std::string& path, ExportFormat format,
                         const Snapshot& snapshot) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw std::runtime_error("cannot open metrics file " + path);
  file << render(snapshot, format);
  if (!file) throw std::runtime_error("failed writing metrics file " + path);
}

void write_snapshot_file_atomic(const std::string& path, ExportFormat format,
                                const Snapshot& snapshot) {
  atomic_write_file(path, render(snapshot, format));
}

void PeriodicSnapshotWriter::start(std::string path, ExportFormat format,
                                   int interval_sec) {
  if (interval_sec <= 0 || path.empty() || running_.load()) return;
  path_ = std::move(path);
  format_ = format;
  interval_sec_ = interval_sec;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (running_.load(std::memory_order_relaxed)) {
      if (cv_.wait_for(lock, std::chrono::seconds(interval_sec_), [this] {
            return !running_.load(std::memory_order_relaxed);
          }))
        break;
      try {
        write_snapshot_file_atomic(path_, format_,
                                   Registry::global().snapshot());
        flushes_.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception&) {
        // Disk full / permissions: the next interval retries; the daemon
        // must not die for telemetry.
      }
    }
  });
}

void PeriodicSnapshotWriter::stop() {
  if (!running_.exchange(false)) return;
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace dcs::obs
