// Runtime telemetry primitives for the streaming hot paths.
//
// The monitors this library grows into (ROADMAP: production-scale, sharded,
// concurrent) need to be observable while they run, not just benchmarkable
// offline. This header provides the three classic metric kinds —
//   * Counter   — monotonic u64 (events since process start),
//   * Gauge     — instantaneous i64 (current table sizes, active alarms),
//   * Histogram — fixed-bucket log2-scale distribution (latencies in ns),
// all built on relaxed std::atomic operations so the sharded/concurrent
// monitors can record from many threads without locks, plus a Registry that
// owns named instances and produces consistent point-in-time snapshots for
// the Prometheus/JSON exporters (see obs/export.hpp).
//
// Cost model. Every mutating call first checks `recording()`:
//   * compile-time off (DCS_OBS_DISABLED) — recording() is constexpr false
//     and the whole call folds away;
//   * runtime off (set_enabled(false))    — one relaxed bool load + branch;
//   * on                                  — the load plus 1-3 relaxed RMWs.
// bench/obs_overhead.cpp verifies the enabled update path stays within its
// budget (a few ns absolute, 12% of the vectorized update; see the bench
// header) and the disabled path within noise.
//
// Histogram::record() is the deliberate exception: it bypasses the switch so
// the type doubles as a plain lock-free histogram for harness code
// (bench_util) that wants percentiles regardless of telemetry state.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dcs::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Flip the global runtime switch. Thread-safe; affects all metrics at once.
void set_enabled(bool on) noexcept;

/// Current state of the runtime switch.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// The hot-path gate: false when telemetry is compiled out or switched off.
inline bool recording() noexcept {
#if defined(DCS_OBS_DISABLED)
  return false;
#else
  return enabled();
#endif
}

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (recording()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (recording()) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (recording()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Read-only copy of one histogram's state plus derived quantiles.
struct HistogramSnapshot {
  static constexpr int kBuckets = 44;  // upper bounds 2^i - 1, i = 0..42, +Inf

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Inclusive upper bound of bucket i (the Prometheus `le` value);
  /// the last bucket is unbounded.
  static std::uint64_t upper_bound(int bucket) noexcept {
    return bucket >= kBuckets - 1 ? UINT64_MAX
                                  : (std::uint64_t{1} << bucket) - 1;
  }

  /// Approximate q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket containing the target rank. Returns 0 on an empty histogram.
  double quantile(double q) const noexcept;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log2-scale histogram: value v lands in bucket bit_width(v),
/// i.e. bucket i covers [2^(i-1), 2^i - 1] (bucket 0 holds exactly 0).
/// 44 buckets span 0 .. ~4.4e12 — an hour and a quarter in nanoseconds —
/// with everything larger collapsing into the overflow bucket.
class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  /// Instrumented observation: gated on the global telemetry switch.
  void observe(std::uint64_t v) noexcept {
    if (recording()) record(v);
  }

  /// Unconditional observation: for harness code using Histogram as a plain
  /// data structure (not gated, always records).
  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

  static int bucket_of(std::uint64_t v) noexcept {
    const int b = std::bit_width(v);
    return b >= kBuckets ? kBuckets - 1 : b;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Times a scope and records the elapsed nanoseconds into a histogram.
/// Reads the clock only when telemetry is actually recording.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(histogram), active_(recording()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Identity of one registered metric (family name + fixed label set).
struct MetricId {
  std::string name;
  std::string help;
  Labels labels;
};

struct CounterSample {
  MetricId id;
  std::uint64_t value = 0;
};

struct GaugeSample {
  MetricId id;
  std::int64_t value = 0;
};

struct HistogramSample {
  MetricId id;
  HistogramSnapshot hist;
};

/// Point-in-time copy of every registered metric, ordered by (name, labels).
/// Mutations after the snapshot is taken are not reflected in it.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Owns metrics by (name, labels). Registration (find-or-create) takes a
/// mutex and is meant for setup paths; the returned references are stable
/// for the registry's lifetime and are what hot paths write through.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry all built-in instrumentation writes to.
  static Registry& global();

  /// Find or create. Throws std::invalid_argument if `name`+`labels` is
  /// already registered as a different metric type.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       Labels labels = {});

  Snapshot snapshot() const;

  /// Zero every registered metric (benchmarks and tests; instruments stay
  /// registered and their references stay valid).
  void reset_values();

  std::size_t size() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    MetricId id;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const std::string& help,
                        Labels labels, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace dcs::obs
