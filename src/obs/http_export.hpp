// Embedded HTTP/1.1 ops server — the live read path for telemetry.
//
// Metrics snapshots used to leave the process only on clean exit; this
// server makes them scrapeable while the process runs. It is deliberately
// tiny and dependency-free: a blocking accept loop on its own thread
// (reusing the service-layer TcpListener/TcpSocket), GET-only, one
// request per connection (`Connection: close`), bounded request size and
// per-connection socket timeouts so a stuck scraper can stall at most one
// scrape, never ingest.
//
// Every handler reads immutable snapshots (Registry::snapshot(),
// TraceRing::snapshot(), collector stats copies) — a scrape can slow
// another scrape, but by construction it cannot contend with the merge
// path beyond the relaxed atomics those snapshots read.
//
// Routes are registered before start() as `path -> () -> HttpResponse`;
// query strings are stripped before matching. Unknown path -> 404,
// non-GET method -> 405, malformed/oversized/slow request -> 400 or drop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "service/socket.hpp"

namespace dcs::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse()>;

struct HttpServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via port().
  std::uint16_t port = 0;
  /// Socket recv/send timeout per request; a client slower than this gets
  /// dropped (the accept loop serves requests serially).
  int io_timeout_ms = 1000;
  /// Upper bound on the buffered request head (request line + headers).
  std::size_t max_request_bytes = 8192;
};

/// Ops-plane request accounting, registered in the global Registry so the
/// ops server shows up in its own /metrics output.
struct OpsMetrics {
  Counter& requests;        // dcs_ops_requests_total
  Counter& request_errors;  // dcs_ops_request_errors_total

  static OpsMetrics& get();
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for an exact path ("/metrics"). Must be called
  /// before start().
  void route(std::string path, HttpHandler handler);

  /// Bind and spawn the accept loop. Throws std::runtime_error when the
  /// address cannot be bound.
  void start();
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(service::TcpSocket socket);

  HttpServerConfig config_;
  std::map<std::string, HttpHandler> routes_;
  service::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;
};

}  // namespace dcs::obs
