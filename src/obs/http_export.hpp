// Embedded HTTP/1.1 ops server — the live read path for telemetry.
//
// Metrics snapshots used to leave the process only on clean exit; this
// server makes them scrapeable while the process runs. It is deliberately
// tiny and dependency-free: a blocking accept loop on its own thread
// (reusing the service-layer TcpListener/TcpSocket), GET-only, one
// request per connection (`Connection: close`), bounded request size and
// per-connection socket timeouts so a stuck scraper can stall at most one
// scrape, never ingest.
//
// Every handler reads immutable snapshots (Registry::snapshot(),
// TraceRing::snapshot(), collector stats copies) — a scrape can slow
// another scrape, but by construction it cannot contend with the merge
// path beyond the relaxed atomics those snapshots read.
//
// Routes are registered before start(). Two handler shapes share one
// registry: the classic `path -> () -> HttpResponse` for endpoints that
// ignore the request, and `path -> (const HttpRequest&) -> HttpResponse`
// for endpoints that read query parameters (the query-tier routes:
// /frequency?key=..., ?generation=..., ?epoch<=...). The query string is
// split off the target before route matching and handed to the handler
// percent-decoded. Unknown path -> 404, non-GET method -> 405 (with an
// `Allow: GET` header), malformed/oversized/slow request -> 400 or drop.
// Every response — errors included — carries an exact Content-Length and
// `Connection: close`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "service/socket.hpp"

namespace dcs::obs {

/// One parsed request as seen by a route handler: the path the route
/// matched on plus the percent-decoded query parameters, in order of
/// appearance.
struct HttpRequest {
  std::string method;
  /// Path only — the query string is already split off.
  std::string target;
  /// Raw query text after '?' (empty when absent), before decoding.
  std::string query_string;
  /// Decoded key/value pairs in request order. A key without '=' maps to
  /// an empty value ("?flag" -> {"flag", ""}).
  std::vector<std::pair<std::string, std::string>> params;

  /// First value for `key`, or nullptr when absent.
  const std::string* param(std::string_view key) const {
    for (const auto& [name, value] : params)
      if (name == key) return &value;
    return nullptr;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  /// Additional response headers ("Allow", cache validators, ...). Names
  /// and values are emitted verbatim, one `Name: value` line each.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

using HttpHandler = std::function<HttpResponse()>;
using HttpRequestHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Decode %XX escapes and '+' (as space) in a query component. Malformed
/// escapes pass through verbatim rather than failing the request.
std::string url_decode(std::string_view text);

/// Split "k=v&flag&x=%20" into decoded pairs (the HttpRequest::params
/// shape). Exposed for tests.
std::vector<std::pair<std::string, std::string>> parse_query_params(
    std::string_view query);

struct HttpServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via port().
  std::uint16_t port = 0;
  /// Socket recv/send timeout per request; a client slower than this gets
  /// dropped (the accept loop serves requests serially).
  int io_timeout_ms = 1000;
  /// Upper bound on the buffered request head (request line + headers).
  std::size_t max_request_bytes = 8192;
};

/// Ops-plane request accounting, registered in the global Registry so the
/// ops server shows up in its own /metrics output.
struct OpsMetrics {
  Counter& requests;        // dcs_ops_requests_total
  Counter& request_errors;  // dcs_ops_request_errors_total

  static OpsMetrics& get();
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for an exact path ("/metrics"). Must be called
  /// before start().
  void route(std::string path, HttpHandler handler);

  /// Request-aware registration: the handler receives the parsed request
  /// (query parameters included). Same registry as route(); last
  /// registration for a path wins.
  void route(std::string path, HttpRequestHandler handler);

  /// Bind and spawn the accept loop. Throws std::runtime_error when the
  /// address cannot be bound.
  void start();
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(service::TcpSocket socket);

  HttpServerConfig config_;
  std::map<std::string, HttpRequestHandler> routes_;
  service::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;
};

}  // namespace dcs::obs
