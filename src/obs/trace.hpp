// Epoch lifecycle tracing (src/obs).
//
// The paper's claim is *real-time* detection; this module measures it. An
// epoch's life is a fixed pipeline of stages:
//
//   sealed -> spooled -> shipped            (site agent)
//       -> received -> admitted -> journaled -> merged
//       -> detector_evaluated               (collector)
//
// Each sealed epoch is stamped with its origin time (wire v3 carries the
// stamps in SnapshotDelta), every later stage stamps a wall-clock time as
// the epoch passes through, and three artifacts fall out:
//
//   * per-stage latency histograms, dcs_trace_stage_ns{stage=...} — the
//     time spent reaching each stage from the one before it;
//   * dcs_detection_freshness_ns — seal time to detector verdict, the
//     end-to-end staleness of an alert when it fires (the SLO);
//   * a bounded lock-free ring of the last N complete EpochTraces,
//     dumpable as JSON from the ops plane (/traces).
//
// The ring is written on the ingest path, so it must never block and must
// not introduce data races under concurrent scrape. Each slot is a seqlock
// (sequence odd while a writer is in the slot) over an array of relaxed
// atomics; a reader that observes a torn or in-progress slot simply skips
// it. Writers claim slots with one fetch_add — wait-free for writers,
// lock-free for readers, and clean under TSan because every shared word is
// atomic.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace dcs::obs {

enum class TraceStage : std::uint8_t {
  kSealed = 0,
  kSpooled,
  kShipped,
  kReceived,
  kAdmitted,
  kJournaled,
  kMerged,
  kDetectorEvaluated,
};
inline constexpr std::size_t kTraceStageCount = 8;

/// Stable label value for the `stage` label ("sealed", "spooled", ...).
std::string_view trace_stage_name(TraceStage stage);

/// One epoch's journey through the pipeline. Stage timestamps are Unix
/// nanoseconds (CLOCK_REALTIME, comparable across processes); 0 means the
/// stage was not reached / not known (e.g. agent-side stages of a v2 peer).
struct EpochTrace {
  std::uint64_t site_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t updates = 0;
  std::uint64_t bytes = 0;  ///< serialized sketch-delta bytes
  std::array<std::uint64_t, kTraceStageCount> stage_unix_ns{};
  std::uint64_t freshness_ns = 0;  ///< seal -> detector verdict (0 = n/a)
  std::uint64_t alerts_raised = 0;  ///< alerts raised by this epoch's merge

  std::uint64_t& stamp(TraceStage stage) {
    return stage_unix_ns[static_cast<std::size_t>(stage)];
  }
  std::uint64_t stamp(TraceStage stage) const {
    return stage_unix_ns[static_cast<std::size_t>(stage)];
  }
  /// True when every stage timestamp is set and non-decreasing in pipeline
  /// order — the acceptance shape for a trace dumped from a live collector.
  bool complete() const;
};

/// Bounded lock-free MPMC ring of the last `capacity` traces. push() is
/// wait-free (one fetch_add + relaxed stores); snapshot() copies only
/// consistently-published slots and never blocks a writer.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256);

  void push(const EpochTrace& trace) noexcept;
  /// Consistent copies of live slots, oldest first.
  std::vector<EpochTrace> snapshot() const;
  std::size_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t pushed() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  // EpochTrace flattened to words so every shared byte is atomic.
  static constexpr std::size_t kWords = 6 + kTraceStageCount;
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // odd = write in progress
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// Render traces as a JSON array (stage map keyed by stage name; zero
/// stamps omitted), for the ops plane's /traces endpoint.
std::string traces_to_json(const std::vector<EpochTrace>& traces);

/// CLOCK_REALTIME now, in nanoseconds — the cross-process stamp clock.
std::uint64_t unix_now_ns();
/// Steady (monotonic) now, in nanoseconds — for within-process durations.
std::uint64_t steady_now_ns();

/// Histogram bundle for the tracing layer. All eight stage histograms are
/// registered eagerly at first use so a scrape of a freshly started
/// collector already lists every pipeline stage family (at count 0).
struct TraceMetrics {
  std::array<Histogram*, kTraceStageCount> stage_ns;
  Histogram& detection_freshness_ns;

  Histogram& stage(TraceStage s) {
    return *stage_ns[static_cast<std::size_t>(s)];
  }
  /// Observe the latency of reaching `stage` given the previous stage's
  /// stamp; no-ops when either stamp is 0 (unknown). Wall clocks on
  /// different hosts can disagree — a negative span clamps to 0 rather
  /// than wrapping to ~2^64.
  void observe_span(TraceStage stage, std::uint64_t prev_unix_ns,
                    std::uint64_t stage_unix_ns);

  static TraceMetrics& get();
};

}  // namespace dcs::obs
