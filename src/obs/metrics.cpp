#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dcs::obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate linearly inside [lower, upper]. The overflow bucket has
      // no finite upper edge; report its lower edge.
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
      if (i >= kBuckets - 1) return lower;
      const double upper = static_cast<double>(upper_bound(i));
      const double into_bucket =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(into_bucket, 0.0, 1.0);
    }
    cumulative = next;
  }
  return 0.0;
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i)
    snap.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const std::string& help,
                                          Labels labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    if (entry->id.name != name || entry->id.labels != labels) continue;
    if (entry->kind != kind)
      throw std::invalid_argument("obs::Registry: '" + name +
                                  "' already registered as a different type");
    return *entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->id = MetricId{name, help, std::move(labels)};
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  return *find_or_create(name, help, std::move(labels), Kind::kCounter)
              .counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  return *find_or_create(name, help, std::move(labels), Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, Labels labels) {
  return *find_or_create(name, help, std::move(labels), Kind::kHistogram)
              .histogram;
}

namespace {

bool id_less(const MetricId& a, const MetricId& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

}  // namespace

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : entries_) {
      switch (entry->kind) {
        case Kind::kCounter:
          snap.counters.push_back({entry->id, entry->counter->value()});
          break;
        case Kind::kGauge:
          snap.gauges.push_back({entry->id, entry->gauge->value()});
          break;
        case Kind::kHistogram:
          snap.histograms.push_back({entry->id, entry->histogram->snapshot()});
          break;
      }
    }
  }
  const auto by_id = [](const auto& a, const auto& b) {
    return id_less(a.id, b.id);
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_id);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_id);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_id);
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter: entry->counter->reset(); break;
      case Kind::kGauge: entry->gauge->reset(); break;
      case Kind::kHistogram: entry->histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace dcs::obs
