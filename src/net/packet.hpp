// Packet-level event model for the simulated ISP edge.
//
// The paper's DDoS MONITOR consumes flow updates produced by network
// monitoring tools (NetFlow / GigaScope) watching TCP flags at edge routers.
// We simulate that pipeline: scenarios emit TCP control packets, and
// FlowUpdateExporter (exporter.hpp) turns handshake state transitions into
// the (source, dest, ±1) stream the sketches consume.
#pragma once

#include <cstdint>

#include "stream/flow_update.hpp"

namespace dcs {

enum class PacketType : std::uint8_t {
  kSyn,     // connection request (client -> server)
  kSynAck,  // server's reply (server -> client; carried for completeness)
  kAck,     // client's handshake completion
  kFin,     // orderly teardown
  kRst,     // abort
  kData,    // payload packet (volume, no handshake state change)
};

struct Packet {
  /// Logical arrival time (monotone ticks). Scenarios schedule packets on a
  /// shared timeline; the simulator delivers them in timestamp order.
  std::uint64_t timestamp = 0;
  Addr source = 0;  // client / initiator address
  Addr dest = 0;    // server / victim address
  PacketType type = PacketType::kSyn;

  friend bool operator==(const Packet&, const Packet&) = default;
};

}  // namespace dcs
