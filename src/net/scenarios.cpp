#include "net/scenarios.hpp"

#include <algorithm>

#include "common/zipf.hpp"
#include "stream/generator.hpp"  // bijective32

namespace dcs {

std::vector<Packet> Timeline::finalize() {
  std::stable_sort(packets_.begin(), packets_.end(),
                   [](const Packet& a, const Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return std::move(packets_);
}

void add_background_traffic(Timeline& timeline,
                            const BackgroundTrafficConfig& config) {
  ZipfDistribution server_pick(config.num_servers, config.server_skew);
  Xoshiro256& rng = timeline.rng();
  for (std::uint64_t s = 0; s < config.sessions; ++s) {
    const Addr server =
        config.server_base + static_cast<Addr>(server_pick(rng));
    const Addr client =
        config.client_base + static_cast<Addr>(rng.bounded(config.num_clients));
    const std::uint64_t t =
        config.start_tick + rng.bounded(config.duration_ticks);
    timeline.add({t, client, server, PacketType::kSyn});
    timeline.add({t + 1, client, server, PacketType::kSynAck});
    timeline.add({t + config.handshake_delay, client, server, PacketType::kAck});
    timeline.add({t + config.handshake_delay + 50, client, server,
                  PacketType::kFin});
  }
}

void add_syn_flood(Timeline& timeline, const SynFloodConfig& config) {
  Xoshiro256& rng = timeline.rng();
  const auto salt = static_cast<std::uint32_t>(mix64(config.spoof_seed));
  for (std::uint64_t i = 0; i < config.spoofed_sources; ++i) {
    // bijective32 guarantees the spoofed addresses are pairwise distinct —
    // the attack pattern the distinct-source metric is designed to expose.
    const Addr spoofed = bijective32(salt ^ static_cast<std::uint32_t>(i));
    const std::uint64_t t =
        config.start_tick + rng.bounded(config.duration_ticks);
    timeline.add({t, spoofed, config.victim, PacketType::kSyn});
    for (std::uint32_t retransmission = 0; retransmission < config.resend_factor;
         ++retransmission) {
      timeline.add({t + 10 * (retransmission + 1), spoofed, config.victim,
                    PacketType::kSyn});
    }
    // No ACK ever arrives: the spoofed host never saw the SYN-ACK.
  }
}

void add_flash_crowd(Timeline& timeline, const FlashCrowdConfig& config) {
  Xoshiro256& rng = timeline.rng();
  for (std::uint64_t i = 0; i < config.clients; ++i) {
    const Addr client = config.client_base + static_cast<Addr>(i);
    const std::uint64_t t =
        config.start_tick + rng.bounded(config.duration_ticks);
    timeline.add({t, client, config.target, PacketType::kSyn});
    timeline.add({t + 1, client, config.target, PacketType::kSynAck});
    // Legitimate clients complete the handshake: the half-open state is
    // deleted almost immediately.
    timeline.add({t + config.handshake_delay, client, config.target,
                  PacketType::kAck});
    timeline.add({t + config.handshake_delay + 20, client, config.target,
                  PacketType::kFin});
  }
}

void add_pulsing_flood(Timeline& timeline, const PulsingFloodConfig& config) {
  Xoshiro256& rng = timeline.rng();
  for (std::uint64_t burst = 0; burst < config.bursts; ++burst) {
    const std::uint64_t burst_start =
        config.start_tick + burst * config.period_ticks;
    const auto salt = static_cast<std::uint32_t>(
        mix64(config.spoof_seed ^ (burst + 1)));
    for (std::uint64_t i = 0; i < config.sources_per_burst; ++i) {
      const Addr spoofed = bijective32(salt ^ static_cast<std::uint32_t>(i));
      const std::uint64_t t =
          burst_start +
          (config.burst_ticks == 0 ? 0 : rng.bounded(config.burst_ticks));
      timeline.add({t, spoofed, config.victim, PacketType::kSyn});
    }
  }
}

void add_reflector_attack(Timeline& timeline,
                          const ReflectorAttackConfig& config) {
  Xoshiro256& rng = timeline.rng();
  for (std::uint64_t i = 0; i < config.reflectors; ++i) {
    const Addr reflector = config.reflector_base + static_cast<Addr>(i);
    const std::uint64_t t =
        config.start_tick + rng.bounded(config.duration_ticks);
    // The attacker forges the victim as the SYN's source; the victim never
    // sent it, so it never completes the handshake with the reflector.
    timeline.add({t, config.victim, reflector, PacketType::kSyn});
  }
}

void add_port_scan(Timeline& timeline, const PortScanConfig& config) {
  Xoshiro256& rng = timeline.rng();
  for (std::uint64_t i = 0; i < config.targets; ++i) {
    const Addr target = config.target_base + static_cast<Addr>(i);
    const std::uint64_t t =
        config.start_tick + rng.bounded(config.duration_ticks);
    timeline.add({t, config.scanner, target, PacketType::kSyn});
    // Scanned hosts mostly RST closed ports; keep a fraction unanswered so
    // some probes linger half-open (as in real scans).
    if (rng.bounded(4) != 0)
      timeline.add({t + 2, config.scanner, target, PacketType::kRst});
  }
}

}  // namespace dcs
