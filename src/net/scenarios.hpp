// Traffic scenarios for the simulated ISP edge.
//
// Each builder appends a schedule of TCP control packets to a shared
// timeline. Composing them reproduces the situations the paper motivates:
//   * BackgroundTraffic — legitimate sessions completing handshakes against a
//     Zipf-popular server population;
//   * SynFloodAttack — zombies send SYNs with spoofed (random, never-ACKing)
//     sources at a single victim: distinct half-open sources explode;
//   * FlashCrowd — a surge of *legitimate* clients towards one destination:
//     many distinct sources, but every handshake completes, so the net
//     half-open count stays near zero (the paper's attack/flash-crowd
//     discriminator);
//   * PortScan — one source SYN-probing many destinations (the superspreader
//     dual mentioned in the paper's footnote 1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "net/packet.hpp"

namespace dcs {

/// A scenario timeline: packets ordered by timestamp after finalize().
class Timeline {
 public:
  explicit Timeline(std::uint64_t seed = 7) : rng_(seed) {}

  void add(Packet packet) { packets_.push_back(packet); }

  Xoshiro256& rng() noexcept { return rng_; }

  /// Sort by timestamp (stable on equal ticks: emission order preserved)
  /// and return the packet stream.
  std::vector<Packet> finalize();

 private:
  std::vector<Packet> packets_;
  Xoshiro256 rng_;
};

struct BackgroundTrafficConfig {
  std::uint32_t num_servers = 200;
  std::uint32_t num_clients = 5000;
  std::uint64_t sessions = 20'000;
  double server_skew = 1.1;  // Zipf popularity of servers
  std::uint64_t start_tick = 0;
  std::uint64_t duration_ticks = 100'000;
  /// Ticks between a session's SYN and the client's completing ACK.
  std::uint64_t handshake_delay = 3;
  Addr server_base = 0x0a000000;  // 10.0.0.0
  Addr client_base = 0xc0a80000;  // 192.168.0.0
};

void add_background_traffic(Timeline& timeline,
                            const BackgroundTrafficConfig& config);

struct SynFloodConfig {
  Addr victim = 0x0a0000fe;
  /// Number of distinct spoofed source addresses used by the flood.
  std::uint64_t spoofed_sources = 20'000;
  std::uint64_t start_tick = 40'000;
  std::uint64_t duration_ticks = 30'000;
  /// Extra SYN retransmissions per spoofed source (same pair; adds packet
  /// volume but no new distinct sources).
  std::uint32_t resend_factor = 0;
  std::uint64_t spoof_seed = 99;
};

void add_syn_flood(Timeline& timeline, const SynFloodConfig& config);

struct FlashCrowdConfig {
  Addr target = 0x0a000001;
  std::uint64_t clients = 20'000;
  std::uint64_t start_tick = 40'000;
  std::uint64_t duration_ticks = 30'000;
  std::uint64_t handshake_delay = 3;
  Addr client_base = 0xac100000;  // 172.16.0.0
};

void add_flash_crowd(Timeline& timeline, const FlashCrowdConfig& config);

struct PulsingFloodConfig {
  /// Low-rate "pulsing" attack (after Kuzmanovic & Knightly, SIGCOMM 2003):
  /// short spoofed-SYN bursts separated by quiet gaps. Against a monitor
  /// with SYN-timeout reaping the half-open count sawtooths, defeating
  /// slow absolute baselines; per-epoch change detection still sees each
  /// burst (tested in scenarios_test / epoch_change_test).
  Addr victim = 0x0a0000fd;
  std::uint64_t bursts = 5;
  std::uint64_t sources_per_burst = 2000;
  std::uint64_t burst_ticks = 500;    // burst duration
  std::uint64_t period_ticks = 10'000;  // burst start-to-start distance
  std::uint64_t start_tick = 0;
  std::uint64_t spoof_seed = 77;
};

void add_pulsing_flood(Timeline& timeline, const PulsingFloodConfig& config);

struct ReflectorAttackConfig {
  /// The victim whose address the attacker spoofs as the *source* of SYNs to
  /// many third-party reflectors (Paxson, CCR 2001). At the edge this looks
  /// like the victim opening half-open connections everywhere; ranked by
  /// source, the victim itself surfaces — reflector attacks are detected as
  /// anomalous *outbound* fan-out of the spoofed address.
  Addr victim = 0x0a00beef;
  std::uint64_t reflectors = 10'000;
  std::uint64_t start_tick = 40'000;
  std::uint64_t duration_ticks = 30'000;
  Addr reflector_base = 0x08080000;
};

void add_reflector_attack(Timeline& timeline,
                          const ReflectorAttackConfig& config);

struct PortScanConfig {
  Addr scanner = 0xc6336401;
  std::uint64_t targets = 5000;
  std::uint64_t start_tick = 0;
  std::uint64_t duration_ticks = 50'000;
  Addr target_base = 0x0a000000;
};

void add_port_scan(Timeline& timeline, const PortScanConfig& config);

}  // namespace dcs
