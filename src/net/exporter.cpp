#include "net/exporter.hpp"

#include <stdexcept>

#include "obs/instruments.hpp"

namespace dcs {

FlowUpdateExporter::FlowUpdateExporter(std::uint64_t interval_ticks,
                                       std::uint64_t half_open_timeout)
    : interval_ticks_(interval_ticks), half_open_timeout_(half_open_timeout) {
  if (interval_ticks == 0)
    throw std::invalid_argument("FlowUpdateExporter: interval_ticks >= 1");
}

void FlowUpdateExporter::roll_intervals(std::uint64_t timestamp) {
  while (timestamp >= current_interval_start_ + interval_ticks_) {
    intervals_.push_back(current_);
    current_ = IntervalCounts{};
    current_interval_start_ += interval_ticks_;
    interval_dirty_ = false;
  }
}

void FlowUpdateExporter::expire_before(std::uint64_t now,
                                       const UpdateSink& sink) {
  if (half_open_timeout_ == 0) return;
  while (!expiry_queue_.empty() &&
         expiry_queue_.front().first + half_open_timeout_ <= now) {
    const auto [opened, key] = expiry_queue_.front();
    expiry_queue_.pop_front();
    const auto it = half_open_.find(key);
    // Stale queue entries (completed or timer-refreshed pairs) are skipped.
    if (it == half_open_.end() || it->second != opened) continue;
    half_open_.erase(it);
    if (obs::recording()) {
      auto& metrics = obs::ExporterMetrics::get();
      metrics.timeout_reaps.inc();
      metrics.half_open.set(static_cast<std::int64_t>(half_open_.size()));
    }
    sink({pair_group(key), pair_member(key), -1});
  }
}

void FlowUpdateExporter::observe(const Packet& packet, const UpdateSink& sink) {
  roll_intervals(packet.timestamp);
  expire_before(packet.timestamp, sink);
  interval_dirty_ = true;
  const bool record = obs::recording();
  if (record) obs::ExporterMetrics::get().packets.inc();
  const PairKey key = pack_pair(packet.source, packet.dest);
  switch (packet.type) {
    case PacketType::kSyn: {
      ++current_.syn;
      const auto [it, inserted] = half_open_.try_emplace(key, packet.timestamp);
      if (inserted) {
        if (record) {
          auto& metrics = obs::ExporterMetrics::get();
          metrics.opens.inc();
          metrics.half_open.set(static_cast<std::int64_t>(half_open_.size()));
        }
        sink({packet.source, packet.dest, +1});
      } else {
        // Retransmitted SYN: refresh the server's SYN-RECEIVED timer.
        it->second = packet.timestamp;
      }
      if (half_open_timeout_ != 0)
        expiry_queue_.emplace_back(packet.timestamp, key);
      break;
    }
    case PacketType::kAck: {
      const auto it = half_open_.find(key);
      if (it != half_open_.end()) {
        half_open_.erase(it);
        if (record) {
          auto& metrics = obs::ExporterMetrics::get();
          metrics.closes.inc();
          metrics.half_open.set(static_cast<std::int64_t>(half_open_.size()));
        }
        sink({packet.source, packet.dest, -1});
      }
      break;
    }
    case PacketType::kRst: {
      // RST counts toward `fin`: the SYN-FIN CUSUM baseline (Wang et al.)
      // pairs every connection-opening SYN with a terminating FIN *or* RST,
      // so aborts must land in the same aggregate or every reset connection
      // would read as a permanently unbalanced SYN.
      ++current_.fin;
      const auto it = half_open_.find(key);
      if (it != half_open_.end()) {
        half_open_.erase(it);
        if (record) {
          auto& metrics = obs::ExporterMetrics::get();
          metrics.closes.inc();
          metrics.half_open.set(static_cast<std::int64_t>(half_open_.size()));
        }
        sink({packet.source, packet.dest, -1});
      }
      break;
    }
    case PacketType::kFin:
      ++current_.fin;
      break;
    case PacketType::kSynAck:
    case PacketType::kData:
      break;  // no handshake state change at the client-side edge
  }
}

std::vector<FlowUpdate> FlowUpdateExporter::run(
    const std::vector<Packet>& packets) {
  std::vector<FlowUpdate> updates;
  updates.reserve(packets.size());
  for (const Packet& packet : packets)
    observe(packet, [&updates](const FlowUpdate& u) { updates.push_back(u); });
  finish_interval();
  return updates;
}

std::size_t FlowUpdateExporter::run_batched(std::span<const Packet> packets,
                                            const BatchSink& sink,
                                            std::size_t block_updates) {
  if (block_updates == 0)
    throw std::invalid_argument("FlowUpdateExporter: block_updates >= 1");
  std::vector<FlowUpdate> block;
  block.reserve(block_updates);
  std::size_t emitted = 0;
  const auto buffer = [&](const FlowUpdate& u) { block.push_back(u); };
  for (const Packet& packet : packets) {
    observe(packet, buffer);
    if (block.size() >= block_updates) {
      emitted += block.size();
      sink(block);
      block.clear();
    }
  }
  finish_interval();
  if (!block.empty()) {
    emitted += block.size();
    sink(block);
  }
  return emitted;
}

void FlowUpdateExporter::finish_interval() {
  if (!interval_dirty_) return;
  intervals_.push_back(current_);
  current_ = IntervalCounts{};
  current_interval_start_ += interval_ticks_;
  interval_dirty_ = false;
}

}  // namespace dcs
