// FlowUpdateExporter — the simulated NetFlow/GigaScope probe.
//
// Tracks the TCP handshake state of each (client, server) pair it observes
// and emits the paper's flow updates on state transitions:
//   * first SYN of a pair            -> (source, dest, +1)   half-open opened
//   * client ACK completing the
//     handshake, or an RST abort     -> (source, dest, -1)   half-open closed
// Duplicate SYNs, data packets and FINs after establishment produce no
// updates, so the downstream sketch counts exactly the *currently half-open*
// distinct sources per destination — the paper's DDoS indicator.
//
// The exporter also aggregates per-interval SYN and FIN/RST counts for the
// Wang-style SYN-FIN CUSUM baseline.
//
// Interval contract: intervals_ holds one entry per *completed* interval.
// Callers that drive observe() directly (rather than through run(), which
// does this for them) must call finish_interval() at end of stream to flush
// the trailing partial interval, or the last interval's SYN/FIN aggregates
// are silently dropped. finish_interval() is idempotent — a second call with
// no packets observed in between is a no-op — so defensive flushing is safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "stream/flow_update.hpp"

namespace dcs {

/// Aggregate control-packet counts for one observation interval.
struct IntervalCounts {
  std::uint64_t syn = 0;
  std::uint64_t fin = 0;  // FIN + RST

  friend bool operator==(const IntervalCounts&, const IntervalCounts&) = default;
};

class FlowUpdateExporter {
 public:
  using UpdateSink = std::function<void(const FlowUpdate&)>;
  /// Sink receiving blocks of flow updates, sized for the batched sketch
  /// ingest path (DistinctCountSketch/TrackingDcs/ConcurrentMonitor
  /// ::update_batch).
  using BatchSink = std::function<void(std::span<const FlowUpdate>)>;

  /// `interval_ticks` controls the granularity of the SYN/FIN aggregates.
  /// `half_open_timeout` (0 = disabled) models the server's SYN-RECEIVED
  /// timer: a half-open entry older than this emits a `-1` update when the
  /// clock passes its deadline, mirroring backlog reaping. A duplicate SYN
  /// refreshes the timer (SYN retransmission keeps the slot alive).
  explicit FlowUpdateExporter(std::uint64_t interval_ticks = 1000,
                              std::uint64_t half_open_timeout = 0);

  /// Observe one packet; emits zero or one flow update through `sink`.
  void observe(const Packet& packet, const UpdateSink& sink);

  /// Convenience: run a whole packet stream and collect the updates.
  /// Flushes the trailing partial interval (see the interval contract above).
  std::vector<FlowUpdate> run(const std::vector<Packet>& packets);

  /// Observe a packet stream, delivering the emitted flow updates to `sink`
  /// in blocks of up to `block_updates` — the batch-sink bridge between the
  /// packet layer and the batched sketch ingest path. The final (possibly
  /// short) block and the trailing partial interval are flushed before
  /// returning. Returns the number of flow updates emitted.
  std::size_t run_batched(std::span<const Packet> packets,
                          const BatchSink& sink,
                          std::size_t block_updates = 256);

  /// Number of (client, server) pairs currently in the half-open state.
  std::size_t half_open_pairs() const noexcept { return half_open_.size(); }

  /// Completed SYN/FIN aggregates, one entry per elapsed interval.
  const std::vector<IntervalCounts>& intervals() const noexcept {
    return intervals_;
  }

  /// Flush the in-progress interval into intervals(). Part of the observe()
  /// contract: call once at end of stream when driving observe() directly
  /// (run()/run_batched() do it internally). Idempotent: a no-op unless at
  /// least one packet has been observed since the last interval boundary.
  void finish_interval();

  /// Expire half-open entries whose deadline is <= `now`, emitting their
  /// `-1` updates through `sink`. Called implicitly by observe(); exposed
  /// for end-of-stream cleanup in timeout mode.
  void expire_before(std::uint64_t now, const UpdateSink& sink);

 private:
  void roll_intervals(std::uint64_t timestamp);

  std::uint64_t interval_ticks_;
  std::uint64_t half_open_timeout_;
  std::uint64_t current_interval_start_ = 0;
  IntervalCounts current_;
  /// True once any packet lands in the current interval; gates
  /// finish_interval() so repeated end-of-stream flushes are no-ops.
  bool interval_dirty_ = false;
  std::vector<IntervalCounts> intervals_;
  /// Pairs that sent a SYN and have not completed/aborted, with the time the
  /// half-open state was (last) opened; established pairs are removed (a
  /// later SYN would legitimately reopen).
  std::unordered_map<PairKey, std::uint64_t> half_open_;
  /// FIFO of (opened_time, key) for timeout sweeps; entries whose time no
  /// longer matches half_open_ are stale (completed or refreshed) and are
  /// skipped.
  std::deque<std::pair<std::uint64_t, PairKey>> expiry_queue_;
};

}  // namespace dcs
