// Detection quality: true/false positives and detection latency of the
// full DdosMonitor pipeline across seeds — an evaluation the paper's
// preliminary study does not include but any deployment needs.
//
// Per trial: background traffic runs throughout; a SYN flood against a fresh
// victim starts midway; a flash crowd (same size as the flood) hits another
// destination in the same window. We record:
//   * TP   — the victim raised an alert;
//   * FP   — any alert raised for a non-victim subject (incl. the crowd);
//   * latency — updates between the first post-onset flood update and the
//     victim's alert.
// Swept over the alarm factor to expose the sensitivity/noise trade-off.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "detection/ddos_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"

namespace {

using namespace dcs;

struct TrialResult {
  bool detected = false;
  int false_positives = 0;
  std::uint64_t latency_updates = 0;
};

TrialResult run_trial(std::uint64_t seed, double alarm_factor,
                      std::uint64_t flood_size) {
  Timeline timeline(seed);
  BackgroundTrafficConfig background;
  background.sessions = 8000;
  background.duration_ticks = 100'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = flood_size;
  flood.start_tick = 50'000;
  flood.duration_ticks = 25'000;
  flood.spoof_seed = seed * 17 + 5;
  add_syn_flood(timeline, flood);
  FlashCrowdConfig crowd;
  crowd.target = 0x0a00aaaa;
  crowd.clients = flood_size;
  crowd.start_tick = 50'000;
  crowd.duration_ticks = 25'000;
  add_flash_crowd(timeline, crowd);

  FlowUpdateExporter exporter;
  const auto packets = timeline.finalize();

  DdosMonitorConfig config;
  config.sketch.seed = seed + 1000;
  config.check_interval = 1024;
  config.min_absolute = 800;
  config.alarm_factor = alarm_factor;
  DdosMonitor monitor(config);

  // Track when the flood's first update is ingested to measure latency.
  std::uint64_t flood_onset_position = 0;
  for (const Packet& packet : packets) {
    exporter.observe(packet, [&](const FlowUpdate& u) {
      monitor.ingest(u);
      if (flood_onset_position == 0 && u.dest == flood.victim && u.delta > 0)
        flood_onset_position = monitor.updates_ingested();
    });
  }
  monitor.check_now();

  TrialResult result;
  for (const Alert& alert : monitor.alerts()) {
    if (alert.kind != Alert::Kind::kRaised) continue;
    if (alert.subject == flood.victim) {
      if (!result.detected) {
        result.detected = true;
        result.latency_updates = alert.stream_position - flood_onset_position;
      }
    } else {
      ++result.false_positives;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs::bench;
  const Options options(argc, argv);
  const auto trials = static_cast<std::uint64_t>(options.integer("trials", 5));
  const auto flood_size =
      static_cast<std::uint64_t>(options.integer("flood", 10'000));

  std::printf("# Detection quality: flood of %llu spoofed sources + equal flash crowd, %llu trials\n",
              static_cast<unsigned long long>(flood_size),
              static_cast<unsigned long long>(trials));
  print_row({"alarm_factor", "detect_rate", "false_pos/trial", "median_latency"},
            18);
  JsonReport report = make_report("detection_quality", options);
  report.meta("runs", static_cast<double>(trials));
  report.meta("flood_size", static_cast<double>(flood_size));
  for (const double factor : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    int detected = 0;
    int false_positives = 0;
    std::vector<double> latencies;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const TrialResult r = run_trial(t + 1, factor, flood_size);
      detected += r.detected ? 1 : 0;
      false_positives += r.false_positives;
      if (r.detected) latencies.push_back(static_cast<double>(r.latency_updates));
    }
    std::string latency = "-";
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      latency = format_double(latencies[latencies.size() / 2], 0);
    }
    const double detect_rate =
        static_cast<double>(detected) / static_cast<double>(trials);
    const double fp_per_trial =
        static_cast<double>(false_positives) / static_cast<double>(trials);
    print_row({format_double(factor, 1), format_double(detect_rate),
               format_double(fp_per_trial, 2), latency},
              18);
    // Everything here is seeded and timing-free: the numbers must
    // reproduce bit-for-bit on any machine, so they are gated everywhere
    // (deterministic = true, zero recorded noise).
    const std::string section = "alarm_factor_" + format_double(factor, 0);
    MetricValue rate;
    rate.value = detect_rate;
    rate.dir = Direction::kHigherIsBetter;
    rate.noise_pct = 0.0;
    rate.count = static_cast<double>(trials);
    rate.deterministic = true;
    report.metric(section, "detect_rate", rate);
    MetricValue fp = rate;
    fp.value = fp_per_trial;
    fp.dir = Direction::kLowerIsBetter;
    report.metric(section, "false_pos_per_trial", fp);
    if (!latencies.empty()) {
      MetricValue lat = rate;
      lat.value = latencies[latencies.size() / 2];
      lat.dir = Direction::kLowerIsBetter;
      lat.count = static_cast<double>(latencies.size());
      report.metric(section, "median_latency_updates", lat);
    }
  }
  write_report(report, options);
  return 0;
}
