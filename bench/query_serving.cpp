// Query-tier serving costs: what snapshot publishing plus a live
// dcs_query_server read load take away from collector ingest, and what a
// cached vs uncached query answer costs.
//
//   build/bench/query_serving [--deltas 24] [--pairs 4000] [--readers 2]
//                             [--target-rps 1200] [--publish-every-ms 100]
//                             [--cache-iters 400]
//
// Part 1 ships real deltas over a loopback socket twice: once against a
// bare collector (baseline ingest throughput), once against a collector
// that is also publishing query snapshots every --publish-every-ms while
// an in-process QueryServer serves paced HTTP readers at --target-rps
// aggregate. The drop between the two runs is the price of the whole read
// tier as seen by ingest — the acceptance figure is that the drop stays
// small (<2% on an unloaded multi-core host) because readers touch only
// immutable published snapshots, never the collector's locks. The readers
// also record their HTTP round-trip latency distribution.
//
// Part 2 micro-benchmarks the engine's response cache over the snapshots
// part 1 left behind: a cache miss pays the render (top-k walk + JSON),
// a hit is a map lookup + string copy. The hit/miss ratio bounds how much
// a dashboard fan-in of identical queries amplifies server CPU.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/stopwatch.hpp"
#include "query/engine.hpp"
#include "query/publisher.hpp"
#include "query/server.hpp"
#include "service/collector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/distinct_count_sketch.hpp"

namespace {

using namespace dcs;
using namespace dcs::service;

DcsParams bench_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 11;
  return params;
}

std::string delta_frame(std::uint64_t epoch, const std::string& blob) {
  SnapshotDelta delta;
  delta.site_id = 1;
  delta.epoch = epoch;
  delta.updates = 1;
  delta.sketch_blob = blob;
  return encode_frame(MsgType::kSnapshotDelta, delta.encode());
}

/// One HTTP GET over a fresh connection (dashboard-poll style). The ops
/// plane answers Connection: close, so reading to EOF is the framing.
/// Returns false on connect/transport failure or a non-200 status.
bool http_get(std::uint16_t port, const std::string& path) {
  auto socket = tcp_connect("127.0.0.1", port, 1000);
  if (!socket) return false;
  socket->set_timeouts(2000, 2000);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n";
  if (!socket->send_all(request)) return false;
  std::string response;
  char buffer[1 << 14];
  for (;;) {
    const RecvResult got = socket->recv_some(buffer, sizeof buffer);
    if (got.bytes == 0) break;
    response.append(buffer, got.bytes);
  }
  return response.rfind("HTTP/1.1 200", 0) == 0;
}

struct ReaderStats {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::vector<double> rtt_us;
};

struct IngestResult {
  double seconds = 0.0;
  double deltas_per_sec = 0.0;
  double achieved_rps = 0.0;
  std::uint64_t reader_requests = 0;
  std::uint64_t reader_failures = 0;
  bench::TimingSummary rtt_us;
};

/// Ship `deltas` admitted epochs through a loopback collector and time the
/// send/merge/ack loop. When `with_readers`, the collector also publishes
/// query snapshots and `readers` paced HTTP clients poll a QueryServer at
/// `target_rps` aggregate for the duration of the run.
std::optional<IngestResult> ingest_run(std::uint64_t deltas,
                                       const std::string& blob,
                                       bool with_readers, int readers,
                                       double target_rps, int publish_every_ms,
                                       const std::string& publish_dir) {
  CollectorConfig config;
  config.params = bench_params();
  config.run_detection = true;
  config.io_timeout_ms = 50;
  Collector collector(config);
  collector.start();

  std::unique_ptr<query::SnapshotPublisher> publisher;
  std::unique_ptr<query::QueryServer> server;
  std::vector<std::thread> reader_threads;
  std::vector<ReaderStats> reader_stats(
      static_cast<std::size_t>(readers > 0 ? readers : 1));
  std::atomic<bool> stop_readers{false};

  if (with_readers) {
    query::SnapshotPublisherConfig publish_config;
    publish_config.publish_dir = publish_dir;
    publish_config.publish_every_ms = publish_every_ms;
    publish_config.retain = 4;
    publish_config.top_k = 10;
    publisher = std::make_unique<query::SnapshotPublisher>(
        publish_config, [&collector](std::size_t top_k) {
          return collector.query_publish_state(top_k);
        });
    // Seed generation 1 before the readers start so every poll hits a
    // mapped snapshot (the steady state a dashboard sees), then publish
    // periodically for the rest of the run.
    publisher->publish_now();
    publisher->start();

    query::QueryServerConfig server_config;
    server_config.publish_dir = publish_dir;
    server_config.watch_every_ms = publish_every_ms / 2 + 1;
    server_config.cache_entries = 256;
    server_config.http.bind_address = "127.0.0.1";
    server_config.http.port = 0;
    server = std::make_unique<query::QueryServer>(std::move(server_config));
    server->start();

    const std::uint16_t port = server->port();
    const double per_reader_rps = target_rps / readers;
    for (int r = 0; r < readers; ++r) {
      ReaderStats* stats = &reader_stats[static_cast<std::size_t>(r)];
      reader_threads.emplace_back([port, per_reader_rps, stats,
                                   &stop_readers] {
        const auto period = std::chrono::nanoseconds(
            static_cast<std::uint64_t>(1e9 / per_reader_rps));
        auto next = std::chrono::steady_clock::now();
        while (!stop_readers.load(std::memory_order_relaxed)) {
          Stopwatch watch;
          const bool ok = http_get(port, "/topk");
          stats->rtt_us.push_back(watch.elapsed_ns() / 1e3);
          ++stats->requests;
          if (!ok) ++stats->failures;
          next += period;
          std::this_thread::sleep_until(next);
        }
      });
    }
  }

  auto socket = tcp_connect("127.0.0.1", collector.port(), 2000);
  if (!socket) {
    std::fprintf(stderr, "query_serving: connect failed\n");
    return std::nullopt;
  }
  socket->set_timeouts(10000, 10000);
  FrameDecoder decoder;
  char buffer[1 << 16];
  const auto read_ack = [&]() -> std::optional<Ack> {
    for (;;) {
      if (auto frame = decoder.next()) return Ack::decode(frame->payload);
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  };

  Hello hello;
  hello.site_id = 1;
  hello.params_fingerprint = config.params.fingerprint();
  if (!socket->send_all(encode_frame(MsgType::kHello, hello.encode())) ||
      !read_ack()) {
    std::fprintf(stderr, "query_serving: handshake failed\n");
    return std::nullopt;
  }

  IngestResult result;
  Stopwatch watch;
  for (std::uint64_t epoch = 1; epoch <= deltas; ++epoch) {
    if (!socket->send_all(delta_frame(epoch, blob))) break;
    const auto ack = read_ack();
    if (!ack || ack->status != AckStatus::kOk) {
      std::fprintf(stderr, "query_serving: delta %llu not merged\n",
                   static_cast<unsigned long long>(epoch));
      return std::nullopt;
    }
  }
  result.seconds = watch.elapsed_ns() / 1e9;

  stop_readers.store(true);
  for (auto& thread : reader_threads) thread.join();
  Bye bye;
  bye.site_id = 1;
  socket->send_all(encode_frame(MsgType::kBye, bye.encode()));
  if (publisher) publisher->stop();
  if (server) server->stop();
  collector.stop();

  result.deltas_per_sec =
      result.seconds > 0.0 ? static_cast<double>(deltas) / result.seconds : 0.0;
  std::vector<double> rtt;
  for (const auto& stats : reader_stats) {
    result.reader_requests += stats.requests;
    result.reader_failures += stats.failures;
    rtt.insert(rtt.end(), stats.rtt_us.begin(), stats.rtt_us.end());
  }
  result.achieved_rps =
      result.seconds > 0.0
          ? static_cast<double>(result.reader_requests) / result.seconds
          : 0.0;
  result.rtt_us = bench::summarize_samples(std::move(rtt));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const auto deltas = static_cast<std::uint64_t>(options.integer("deltas", 24));
  const auto pairs = static_cast<std::uint64_t>(options.integer("pairs", 4000));
  const int readers = static_cast<int>(options.integer("readers", 2));
  const double target_rps = options.real("target-rps", 1200.0);
  const int publish_every_ms =
      static_cast<int>(options.integer("publish-every-ms", 100));
  const auto cache_iters =
      static_cast<std::uint64_t>(options.integer("cache-iters", 400));

  bench::JsonReport report = bench::make_report("query_serving", options);
  report.meta("deltas", static_cast<double>(deltas));
  report.meta("pairs", static_cast<double>(pairs));
  report.meta("readers", static_cast<double>(readers));
  report.meta("target_rps", target_rps);

  // A realistically-sized delta (thousands of distinct pairs → several
  // allocated levels), so the merge the readers are competing with is a
  // real epoch's worth of work.
  DistinctCountSketch sketch(bench_params());
  for (std::uint64_t i = 0; i < pairs; ++i)
    sketch.update(static_cast<Addr>(i % 16), static_cast<Addr>(i), +1);
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  const std::string blob = std::move(out).str();

  const std::string publish_dir = options.str(
      "publish-dir", "query_serving_publish");

  std::printf("== ingest throughput: bare vs publishing + %d readers @ %s "
              "req/s ==\n",
              readers, bench::format_double(target_rps, 0).c_str());
  const auto baseline =
      ingest_run(deltas, blob, false, 0, 0.0, publish_every_ms, publish_dir);
  const auto loaded = ingest_run(deltas, blob, true, readers, target_rps,
                                 publish_every_ms, publish_dir);
  if (!baseline || !loaded) return 1;

  const double drop_pct =
      baseline->deltas_per_sec > 0.0
          ? 100.0 * (1.0 - loaded->deltas_per_sec / baseline->deltas_per_sec)
          : 0.0;
  bench::print_row({"run", "deltas/s", "rps", "rtt p50 us", "rtt p99 us"});
  bench::print_row({"bare", bench::format_double(baseline->deltas_per_sec),
                    "-", "-", "-"});
  bench::print_row({"serving", bench::format_double(loaded->deltas_per_sec),
                    bench::format_double(loaded->achieved_rps, 0),
                    bench::format_double(loaded->rtt_us.p50),
                    bench::format_double(loaded->rtt_us.p99)});
  std::printf("\ningest drop: %s%%  (reader requests=%llu failures=%llu)\n",
              bench::format_double(drop_pct, 2).c_str(),
              static_cast<unsigned long long>(loaded->reader_requests),
              static_cast<unsigned long long>(loaded->reader_failures));

  using bench::Direction;
  // Loopback merge round-trips and paced readers both ride the host
  // scheduler; record generous noise rather than pretending stability.
  report.metric("ingest", "baseline_deltas_per_sec",
                baseline->deltas_per_sec, Direction::kHigherIsBetter, 25.0);
  report.metric("ingest", "serving_deltas_per_sec", loaded->deltas_per_sec,
                Direction::kHigherIsBetter, 25.0);
  report.value("ingest", "drop_pct", drop_pct);
  report.value("ingest", "achieved_rps", loaded->achieved_rps);
  report.value("ingest", "reader_failures",
               static_cast<double>(loaded->reader_failures));
  report.metric("http", "rtt_us",
                bench::summary_metric(loaded->rtt_us,
                                      Direction::kLowerIsBetter, 25.0));

  // --- response cache micro over the snapshots the loaded run published ---
  std::printf("\n== response cache (engine.cached, %llu iters) ==\n",
              static_cast<unsigned long long>(cache_iters));
  query::QueryEngineConfig engine_config;
  engine_config.publish_dir = publish_dir;
  engine_config.cache_entries = 8;
  query::QueryEngine engine(engine_config);
  engine.refresh();
  const auto newest = engine.newest();
  if (!newest) {
    std::fprintf(stderr, "query_serving: no published generation to query\n");
    return 1;
  }
  const std::uint64_t generation = newest->snapshot.generation;
  const auto render = [&newest] {
    std::string body;
    for (const auto& entry : newest->tracking.top_k(10).entries) {
      body += std::to_string(entry.group);
      body += ':';
      body += std::to_string(entry.estimate);
      body += '\n';
    }
    return body;
  };

  std::vector<double> miss_ns;
  std::vector<double> hit_ns;
  for (std::uint64_t i = 0; i < cache_iters; ++i) {
    // Unique key per iteration: every call renders (steady-state miss).
    const std::string key = "/topk?i=" + std::to_string(i);
    Stopwatch watch;
    (void)engine.cached(generation, key, render);
    miss_ns.push_back(static_cast<double>(watch.elapsed_ns()));
  }
  (void)engine.cached(generation, "/topk", render);
  for (std::uint64_t i = 0; i < cache_iters; ++i) {
    Stopwatch watch;
    (void)engine.cached(generation, "/topk", render);
    hit_ns.push_back(static_cast<double>(watch.elapsed_ns()));
  }
  const auto miss = bench::summarize_samples(std::move(miss_ns));
  const auto hit = bench::summarize_samples(std::move(hit_ns));
  bench::print_row({"path", "count", "mean ns", "p50", "p90", "p99"});
  bench::print_row({"miss", std::to_string(miss.count),
                    bench::format_double(miss.mean),
                    bench::format_double(miss.p50),
                    bench::format_double(miss.p90),
                    bench::format_double(miss.p99)});
  bench::print_row({"hit", std::to_string(hit.count),
                    bench::format_double(hit.mean),
                    bench::format_double(hit.p50),
                    bench::format_double(hit.p90),
                    bench::format_double(hit.p99)});
  if (hit.p50 > 0.0)
    std::printf("\nmiss/hit p50 ratio: %s\n",
                bench::format_double(miss.p50 / hit.p50, 2).c_str());

  report.metric("cache", "miss_ns",
                bench::summary_metric(miss, Direction::kLowerIsBetter, 25.0));
  report.metric("cache", "hit_ns",
                bench::summary_metric(hit, Direction::kLowerIsBetter, 25.0));
  if (hit.p50 > 0.0)
    report.value("cache", "miss_hit_p50_ratio", miss.p50 / hit.p50);

  bench::write_report(report, options);
  return 0;
}
