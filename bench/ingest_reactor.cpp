// Ingest-path transport comparison: thread-per-connection vs the epoll
// reactor, on the same workload through the same merge path.
//
//   build/bench/ingest_reactor [--peers 64] [--epochs 4]
//                              [--reactor-workers 2] [--updates 1000]
//
// For each mode the harness measures two things:
//
//   hello rtt   connect + Hello + ack round-trip per peer, taken while the
//               population ramps up — the accept-path latency an agent
//               joining a busy collector actually experiences. The p99 is
//               the gated figure: accept stalls are what thread-per-
//               connection hides (a blocked accept loop) and what the
//               reactor's non-blocking acceptor exists to bound.
//   throughput  peers * epochs stop-and-wait delta round-trips shipped by
//               concurrent clients, as merged deltas per second. Merges
//               serialize on the state lock either way, so the modes should
//               be comparable — the reactor must not tax the common path
//               for its concurrency headroom.
//
// Every round-trip is acked, and the bench asserts all peers * epochs
// deltas merged before reporting — a number produced while dropping deltas
// would be meaningless. Loopback timing on a shared runner is noisy;
// explicit noise figures keep the perf gate honest.
#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/stopwatch.hpp"
#include "service/collector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/distinct_count_sketch.hpp"

namespace {

using namespace dcs;
using namespace dcs::service;

DcsParams bench_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 23;
  return params;
}

/// One connected protocol client: socket + decoder for reading acks.
struct Peer {
  std::optional<TcpSocket> socket;
  FrameDecoder decoder;
  char buffer[1 << 14];

  std::optional<Ack> read_ack() {
    for (;;) {
      if (auto frame = decoder.next()) return Ack::decode(frame->payload);
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  }
};

struct ModeResult {
  bench::TimingSummary hello_us;
  double deltas_per_sec = 0.0;
  bool ok = false;
};

ModeResult run_mode(bool use_reactor, int reactor_workers, std::size_t peers,
                    std::uint64_t epochs, const std::string& blob) {
  ModeResult result;
  const DcsParams params = bench_params();

  CollectorConfig config;
  config.params = params;
  config.run_detection = false;  // isolate the transport + merge path
  config.io_timeout_ms = 25;
  config.use_reactor = use_reactor;
  config.reactor_workers = reactor_workers;
  Collector collector(config);
  collector.start();
  const std::uint16_t port = collector.port();

  // Ramp-up: sequential connects so each sample is one clean accept +
  // handshake round-trip against the steadily-growing population.
  std::vector<double> hello_samples;
  std::vector<std::unique_ptr<Peer>> population;
  population.reserve(peers);
  for (std::uint64_t site = 1; site <= peers; ++site) {
    auto peer = std::make_unique<Peer>();
    Hello hello;
    hello.site_id = site;
    hello.params_fingerprint = params.fingerprint();
    Stopwatch watch;
    peer->socket = tcp_connect("127.0.0.1", port, 5000);
    if (!peer->socket) {
      std::fprintf(stderr, "ingest_reactor: connect failed (site %llu)\n",
                   static_cast<unsigned long long>(site));
      collector.stop();
      return result;
    }
    peer->socket->set_timeouts(30000, 30000);
    if (!peer->socket->send_all(encode_frame(MsgType::kHello, hello.encode())) ||
        !peer->read_ack()) {
      std::fprintf(stderr, "ingest_reactor: hello failed (site %llu)\n",
                   static_cast<unsigned long long>(site));
      collector.stop();
      return result;
    }
    hello_samples.push_back(watch.elapsed_ns() / 1e3);
    population.push_back(std::move(peer));
  }
  result.hello_us = bench::summarize_samples(std::move(hello_samples));

  // Throughput: every peer ships its epochs concurrently, stop-and-wait.
  std::atomic<bool> failed{false};
  Stopwatch watch;
  std::vector<std::thread> shippers;
  shippers.reserve(peers);
  for (std::uint64_t site = 1; site <= peers; ++site) {
    shippers.emplace_back([&, site] {
      Peer& peer = *population[site - 1];
      for (std::uint64_t epoch = 1; epoch <= epochs; ++epoch) {
        SnapshotDelta delta;
        delta.site_id = site;
        delta.epoch = epoch;
        delta.updates = 1;
        delta.sketch_blob = blob;
        if (!peer.socket->send_all(
                encode_frame(MsgType::kSnapshotDelta, delta.encode()))) {
          failed.store(true);
          return;
        }
        const auto ack = peer.read_ack();
        if (!ack || ack->status != AckStatus::kOk) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& shipper : shippers) shipper.join();
  const double elapsed_s = watch.elapsed_ns() / 1e9;

  const std::uint64_t expected = peers * epochs;
  const bool merged_all = collector.wait_for_deltas(expected, 60000);
  for (std::uint64_t site = 1; site <= peers; ++site) {
    Bye bye;
    bye.site_id = site;
    population[site - 1]->socket->send_all(
        encode_frame(MsgType::kBye, bye.encode()));
  }
  population.clear();
  collector.stop();

  if (failed.load() || !merged_all) {
    std::fprintf(stderr, "ingest_reactor: %s mode lost deltas\n",
                 use_reactor ? "reactor" : "threaded");
    return result;
  }
  result.deltas_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(expected) / elapsed_s : 0.0;
  result.ok = true;
  return result;
}

void print_mode(const char* name, const ModeResult& mode) {
  bench::print_row({name, bench::format_double(mode.deltas_per_sec),
                    bench::format_double(mode.hello_us.p50),
                    bench::format_double(mode.hello_us.p99)});
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const auto peers = static_cast<std::size_t>(options.integer("peers", 64));
  const auto epochs =
      static_cast<std::uint64_t>(options.integer("epochs", 4));
  const int reactor_workers =
      static_cast<int>(options.integer("reactor-workers", 2));
  const auto updates =
      static_cast<std::uint64_t>(options.integer("updates", 1000));

  bench::JsonReport report = bench::make_report("ingest_reactor", options);
  report.meta("peers", static_cast<double>(peers));
  report.meta("epochs", static_cast<double>(epochs));
  report.meta("reactor_workers", static_cast<double>(reactor_workers));

  // One realistic shared blob: enough distinct pairs to allocate several
  // sketch levels, so each merge costs what a real epoch's merge costs.
  DistinctCountSketch sketch(bench_params());
  for (std::uint64_t i = 0; i < updates; ++i)
    sketch.update(static_cast<Addr>(i % 16), static_cast<Addr>(i), +1);
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  const std::string blob = std::move(out).str();

  try {
    std::printf("== ingest transport (peers=%zu epochs=%llu) ==\n", peers,
                static_cast<unsigned long long>(epochs));
    const ModeResult threaded =
        run_mode(/*use_reactor=*/false, reactor_workers, peers, epochs, blob);
    const ModeResult reactor =
        run_mode(/*use_reactor=*/true, reactor_workers, peers, epochs, blob);
    if (!threaded.ok || !reactor.ok) return 1;

    bench::print_row({"mode", "deltas/s", "hello p50 us", "hello p99 us"});
    print_mode("threaded", threaded);
    print_mode("reactor", reactor);
    const double speedup = threaded.deltas_per_sec > 0.0
                               ? reactor.deltas_per_sec / threaded.deltas_per_sec
                               : 0.0;
    std::printf("\nreactor/threaded throughput: %sx\n",
                bench::format_double(speedup, 3).c_str());

    using bench::Direction;
    // Loopback round-trips on a shared single-core runner swing wildly;
    // generous explicit noise keeps the regression gate meaningful without
    // tripping on scheduler weather.
    report.metric("threaded", "deltas_per_sec", threaded.deltas_per_sec,
                  Direction::kHigherIsBetter, 40.0);
    report.metric("reactor", "deltas_per_sec", reactor.deltas_per_sec,
                  Direction::kHigherIsBetter, 40.0);
    report.metric("threaded", "hello_rtt_us",
                  bench::summary_metric(threaded.hello_us,
                                        Direction::kLowerIsBetter, 60.0));
    report.metric("reactor", "hello_rtt_us",
                  bench::summary_metric(reactor.hello_us,
                                        Direction::kLowerIsBetter, 60.0));
    report.value("compare", "reactor_speedup", speedup);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ingest_reactor: %s\n", error.what());
    return 1;
  }
  bench::write_report(report, options);
  return 0;
}
