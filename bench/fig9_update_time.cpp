// Figure 9: average per-update processing time (µs) as a function of the
// frequency of interleaved top-1 ("max") queries, Basic vs Tracking
// distinct-count sketch.
//
// Paper setup: 4M flow updates, query frequency 0 .. 0.0025 (one query per
// 400 updates). The Tracking sketch stays flat; the Basic sketch's query
// cost (full sample reconstruction) makes its average blow up with query
// frequency. Absolute numbers differ from the paper's 1 GHz P-III; the
// crossover shape is the reproduced result.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace {

using namespace dcs;

/// Stream all updates, issuing a top-1 query every `query_period` updates
/// (0 = never); returns the distribution of per-update µs measured over
/// fixed-size chunks (queries amortized in, as in the paper's experiment).
/// The chunk percentiles expose the query-latency spikes that the paper's
/// mean-only Figure 9 averages away.
template <typename Sketch>
bench::TimingSummary run_mix(const std::vector<FlowUpdate>& updates,
                             std::uint64_t query_period, DcsParams params) {
  constexpr std::uint64_t kChunk = 4096;
  Sketch sketch(params);
  std::vector<double> chunk_us;
  chunk_us.reserve(updates.size() / kChunk + 1);
  Stopwatch watch;
  std::uint64_t since_query = 0;
  std::uint64_t in_chunk = 0;
  std::uint64_t checksum = 0;
  double chunk_start = 0.0;
  for (const FlowUpdate& u : updates) {
    sketch.update(u.dest, u.source, u.delta);
    if (query_period != 0 && ++since_query >= query_period) {
      since_query = 0;
      const TopKResult result = sketch.top_k(1);
      if (!result.entries.empty()) checksum ^= result.entries[0].group;
    }
    if (++in_chunk == kChunk) {
      const double now = watch.elapsed_us();
      chunk_us.push_back((now - chunk_start) / static_cast<double>(kChunk));
      chunk_start = now;
      in_chunk = 0;
    }
  }
  if (in_chunk > 0) {
    chunk_us.push_back((watch.elapsed_us() - chunk_start) /
                       static_cast<double>(in_chunk));
  }
  // Keep the queries from being optimized away.
  if (checksum == 0xdeadbeef) std::printf("#\n");
  return bench::summarize_samples(std::move(chunk_us));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);
  const auto num_updates = static_cast<std::uint64_t>(
      options.integer("updates", scale.full ? 4'000'000 : 400'000));

  DcsParams params;
  params.num_tables = static_cast<int>(options.integer("r", 3));
  params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  params.seed = 7;

  ZipfWorkloadConfig config;
  config.u_pairs = num_updates / 2;  // half inserts get matching churn
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.churn = 0;
  config.seed = 11;
  ZipfWorkload workload(config);
  std::vector<FlowUpdate> updates = workload.updates();
  // Double the stream with deletes of a random half to exercise both paths.
  {
    std::vector<FlowUpdate> extended = updates;
    for (std::size_t i = 0; i < updates.size(); i += 2) {
      extended.push_back({updates[i].source, updates[i].dest, -1});
    }
    updates = std::move(extended);
  }

  // Query periods: 0 (pure updates), then 6400 down to 400 (frequency
  // 0.00015625 .. 0.0025 as in the paper's x-axis).
  const std::uint64_t periods[] = {0, 6400, 3200, 1600, 800, 400};

  std::printf("# Figure 9: per-update processing time in usec (%llu updates, d=%u, r=%d, s=%u)\n",
              static_cast<unsigned long long>(updates.size()),
              scale.num_destinations, params.num_tables,
              params.buckets_per_table);
  print_row({"query_freq", "basic_mean", "basic_p50", "basic_p90", "basic_p99",
             "track_mean", "track_p50", "track_p90", "track_p99"},
            12);
  JsonReport report = make_report("fig9_update_time", options);
  report.meta("updates", static_cast<double>(updates.size()));
  for (const std::uint64_t period : periods) {
    const double freq = period == 0 ? 0.0 : 1.0 / static_cast<double>(period);
    const TimingSummary basic =
        run_mix<dcs::DistinctCountSketch>(updates, period, params);
    const TimingSummary tracking =
        run_mix<dcs::TrackingDcs>(updates, period, params);
    std::vector<std::string> cells{format_double(freq, 6)};
    for (const std::string& cell : summary_cells(basic)) cells.push_back(cell);
    for (const std::string& cell : summary_cells(tracking))
      cells.push_back(cell);
    print_row(cells, 12);
    // Per-update µs, mean over 4096-update chunks, lower is better; the
    // key names the query period (q0 = pure updates).
    const std::string key = "q" + std::to_string(period) + "_us";
    report.metric("basic", key,
                  summary_metric(basic, Direction::kLowerIsBetter));
    report.metric("tracking", key,
                  summary_metric(tracking, Direction::kLowerIsBetter));
  }
  write_report(report, options);
  return 0;
}
