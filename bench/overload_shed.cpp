// Overload-protection costs: what admission control adds to the accept
// path, and what a shed costs relative to the merge it avoided.
//
//   build/bench/overload_shed [--deltas 40] [--iters 2000000] [--site-rate 20]
//
// Part 1 micro-benchmarks AdmissionController::try_admit on a synthetic
// clock: the disabled-config fast path, a token-bucket admit, a
// token-bucket shed, and a byte-budget shed. These bound the per-delta
// overhead the knobs add when the collector is *not* overloaded — the
// price everyone pays for the protection.
//
// Part 2 runs a live loopback collector with a tight per-site rate limit
// and ships real deltas from a raw socket, separating ack round-trips
// into admitted (decode + merge + tracking rebuild + detection in the
// path) and shed (admission NACK right after decode). A shed still pays
// the transfer and frame decode — admission charges the *decoded* delta —
// so the shed/merged ratio is the fraction of a delta's cost the
// collector cannot refuse; everything past that (merge, tracking
// rebuild, detection, and the journal fsync when durable) is what
// shedding saves under a burst.
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/stopwatch.hpp"
#include "service/admission.hpp"
#include "service/collector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/distinct_count_sketch.hpp"

namespace {

using namespace dcs;
using namespace dcs::service;

double micro_ns(AdmissionController& admission, std::uint64_t iters,
                bool vary_site, std::uint64_t bytes) {
  const auto t0 = AdmissionController::Clock::time_point{};
  Stopwatch watch;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto decision =
        admission.try_admit(vary_site ? i % 64 : 1, bytes, t0);
    if (decision.admitted) admission.release(bytes);
  }
  return watch.elapsed_ns() / static_cast<double>(iters);
}

DcsParams bench_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 11;
  return params;
}

std::string delta_frame(std::uint64_t epoch, const std::string& blob) {
  SnapshotDelta delta;
  delta.site_id = 1;
  delta.epoch = epoch;
  delta.updates = 1;
  delta.sketch_blob = blob;
  return encode_frame(MsgType::kSnapshotDelta, delta.encode());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const auto deltas =
      static_cast<std::uint64_t>(options.integer("deltas", 40));
  const auto iters =
      static_cast<std::uint64_t>(options.integer("iters", 2'000'000));

  bench::JsonReport report = bench::make_report("overload_shed", options);
  report.meta("deltas", static_cast<double>(deltas));
  report.meta("iters", static_cast<double>(iters));

  std::printf("== admission micro (try_admit + release, %llu iters) ==\n",
              static_cast<unsigned long long>(iters));
  {
    AdmissionController off{AdmissionConfig{}};
    AdmissionConfig token;
    token.site_rate_per_sec = 1.0;  // frozen clock: bucket never refills
    token.site_burst = 1e18;        // ...but this deep burst always admits
    AdmissionController token_admit{token};
    AdmissionConfig starved = token;
    starved.site_burst = 1.0;  // one admit, then every call sheds
    AdmissionController token_shed{starved};
    (void)token_shed.try_admit(1, 1, {});
    AdmissionConfig budget;
    budget.max_inflight_bytes = 1;  // every nonzero charge sheds
    AdmissionController budget_shed{budget};

    const double disabled_ns = micro_ns(off, iters, true, 1);
    const double token_admit_ns = micro_ns(token_admit, iters, true, 1);
    const double token_shed_ns = micro_ns(token_shed, iters, false, 1);
    const double budget_shed_ns = micro_ns(budget_shed, iters, true, 2);
    bench::print_row({"path", "ns/decision"});
    bench::print_row({"disabled", bench::format_double(disabled_ns)});
    bench::print_row({"token admit", bench::format_double(token_admit_ns)});
    bench::print_row({"token shed", bench::format_double(token_shed_ns)});
    bench::print_row({"budget shed", bench::format_double(budget_shed_ns)});
    using bench::Direction;
    report.metric("admission_micro", "disabled_ns", disabled_ns,
                  Direction::kLowerIsBetter);
    report.metric("admission_micro", "token_admit_ns", token_admit_ns,
                  Direction::kLowerIsBetter);
    report.metric("admission_micro", "token_shed_ns", token_shed_ns,
                  Direction::kLowerIsBetter);
    report.metric("admission_micro", "budget_shed_ns", budget_shed_ns,
                  Direction::kLowerIsBetter);
  }

  std::printf("\n== live shed vs merge (loopback, %llu admitted deltas) ==\n",
              static_cast<unsigned long long>(deltas));
  try {
    CollectorConfig config;
    config.params = bench_params();
    config.run_detection = true;
    config.io_timeout_ms = 20;
    // Low enough that the hammer loop genuinely outruns the bucket even
    // though each admitted round-trip costs a full merge (~10 ms here).
    config.admission.site_rate_per_sec = options.real("site-rate", 20.0);
    config.admission.site_burst = 1.0;
    config.admission.min_retry_after_ms = 1;
    Collector collector(config);
    collector.start();

    auto socket = tcp_connect("127.0.0.1", collector.port(), 2000);
    if (!socket) {
      std::fprintf(stderr, "overload_shed: connect failed\n");
      return 1;
    }
    socket->set_timeouts(5000, 5000);
    FrameDecoder decoder;
    char buffer[1 << 16];
    const auto read_ack = [&]() -> std::optional<Ack> {
      for (;;) {
        if (auto frame = decoder.next()) return Ack::decode(frame->payload);
        const RecvResult got = socket->recv_some(buffer, sizeof buffer);
        if (got.bytes == 0) return std::nullopt;
        decoder.feed(buffer, got.bytes);
      }
    };

    Hello hello;
    hello.site_id = 1;
    hello.params_fingerprint = config.params.fingerprint();
    if (!socket->send_all(encode_frame(MsgType::kHello, hello.encode())) ||
        !read_ack()) {
      std::fprintf(stderr, "overload_shed: handshake failed\n");
      return 1;
    }

    // A realistically-sized delta (thousands of distinct pairs → several
    // allocated levels), so the merged row reflects a real epoch's cost
    // rather than a near-empty blob's.
    DistinctCountSketch sketch(bench_params());
    for (std::uint64_t i = 0; i < 5000; ++i)
      sketch.update(static_cast<Addr>(i % 16), static_cast<Addr>(i), +1);
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    sketch.serialize(writer);
    const std::string blob = std::move(out).str();

    std::vector<double> merged_us;
    std::vector<double> shed_us;
    // Hammer without honoring retry_after: every refusal is a measured
    // shed round-trip, every admit a measured merge round-trip.
    for (std::uint64_t epoch = 1; epoch <= deltas;) {
      const std::string frame = delta_frame(epoch, blob);
      Stopwatch watch;
      if (!socket->send_all(frame)) break;
      const auto ack = read_ack();
      const double us = watch.elapsed_ns() / 1e3;
      if (!ack) break;
      if (ack->status == AckStatus::kOk) {
        merged_us.push_back(us);
        ++epoch;
      } else if (ack->status == AckStatus::kRetryLater) {
        shed_us.push_back(us);
      } else {
        std::fprintf(stderr, "overload_shed: unexpected ack status\n");
        return 1;
      }
    }
    Bye bye;
    bye.site_id = 1;
    socket->send_all(encode_frame(MsgType::kBye, bye.encode()));
    collector.stop();

    const auto merged = bench::summarize_samples(merged_us);
    const auto shed = bench::summarize_samples(shed_us);
    bench::print_row({"ack path", "count", "mean us", "p50", "p90", "p99"});
    bench::print_row({"merged", std::to_string(merged.count),
                      bench::format_double(merged.mean),
                      bench::format_double(merged.p50),
                      bench::format_double(merged.p90),
                      bench::format_double(merged.p99)});
    bench::print_row({"shed", std::to_string(shed.count),
                      bench::format_double(shed.mean),
                      bench::format_double(shed.p50),
                      bench::format_double(shed.p90),
                      bench::format_double(shed.p99)});
    const auto stats = collector.stats();
    std::printf("\nmerged=%llu shed=%llu  (shed/merged p50 cost ratio: %s)\n",
                static_cast<unsigned long long>(stats.deltas_merged),
                static_cast<unsigned long long>(stats.shed_deltas),
                merged.p50 > 0.0
                    ? bench::format_double(shed.p50 / merged.p50, 4).c_str()
                    : "n/a");
    // Loopback ack round-trips are at the mercy of the host scheduler;
    // record a generous explicit noise figure rather than pretending the
    // p50 is stable.
    report.metric("live_roundtrip", "merged_us",
                  bench::summary_metric(merged, bench::Direction::kLowerIsBetter,
                                        25.0));
    report.metric("live_roundtrip", "shed_us",
                  bench::summary_metric(shed, bench::Direction::kLowerIsBetter,
                                        25.0));
    if (merged.p50 > 0.0)
      report.value("live_roundtrip", "shed_merged_p50_ratio",
                   shed.p50 / merged.p50);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "overload_shed: %s\n", error.what());
    return 1;
  }
  bench::write_report(report, options);
  return 0;
}
