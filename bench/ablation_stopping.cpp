// Ablation: the distinct-sample stopping rule.
//
// The paper's pseudocode stops at a cumulative sample of (1+ε)·s/16 (~10
// keys for s = 128); our default descends until ~s keys (stopping-level load
// s/2, the Lemma 4.1 recoverability bound). This harness sweeps the target
// fraction and shows the accuracy difference that motivates the deviation
// documented in DESIGN.md.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  Scale scale = Scale::resolve(options);
  const double skew = options.real("z", 1.5);
  const std::size_t k = static_cast<std::size_t>(options.integer("k", 10));

  std::printf("# Ablation: stopping rule vs top-%zu accuracy (U=%llu, d=%u, z=%.1f, r=3, s=128)\n",
              k, static_cast<unsigned long long>(scale.u_pairs),
              scale.num_destinations, skew);
  print_row({"rule", "target", "recall", "avg_rel_err"}, 14);

  // Paper rule: (1+eps)*s/16.
  {
    DcsParams params;
    params.sample_target_fraction = 0.0;
    const AccuracyCell cell = accuracy_cell(scale, params, skew, k, false);
    print_row({"paper(s/16)", std::to_string(params.sample_target()),
               format_double(cell.recall),
               format_double(cell.avg_relative_error)},
              14);
  }
  for (const double fraction : {0.25, 0.5, 1.0}) {
    DcsParams params;
    params.sample_target_fraction = fraction;
    const AccuracyCell cell = accuracy_cell(scale, params, skew, k, false);
    print_row({"fraction=" + format_double(fraction, 2),
               std::to_string(params.sample_target()),
               format_double(cell.recall),
               format_double(cell.avg_relative_error)},
              14);
  }
  return 0;
}
