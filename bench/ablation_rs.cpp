// Ablation A1: effect of the sketch parameters r (independent second-level
// tables) and s (buckets per table) on top-10 recall and relative error.
//
// DESIGN.md calls out both as the key sizing knobs: s controls the distinct
// sample size (accuracy scales ~1/sqrt(sample)), r controls singleton
// recovery probability at loaded levels (Lemma 4.1). Expectation: accuracy
// rises steeply with s, and r beyond 2-3 only helps marginally while costing
// update time linearly.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  Scale scale = Scale::resolve(options);
  const double skew = options.real("z", 1.5);
  const std::size_t k = static_cast<std::size_t>(options.integer("k", 10));

  std::printf("# Ablation: r and s vs top-%zu accuracy (U=%llu, d=%u, z=%.1f, runs=%llu)\n",
              k, static_cast<unsigned long long>(scale.u_pairs),
              scale.num_destinations, skew,
              static_cast<unsigned long long>(scale.runs));
  print_row({"r", "s", "recall", "avg_rel_err"}, 12);
  for (const int r : {1, 2, 3, 4, 5}) {
    DcsParams params;
    params.num_tables = r;
    params.buckets_per_table = 128;
    const AccuracyCell cell = accuracy_cell(scale, params, skew, k, false);
    print_row({std::to_string(r), "128", format_double(cell.recall),
               format_double(cell.avg_relative_error)},
              12);
  }
  for (const std::uint32_t s : {32u, 64u, 128u, 256u, 512u}) {
    DcsParams params;
    params.num_tables = 3;
    params.buckets_per_table = s;
    const AccuracyCell cell = accuracy_cell(scale, params, skew, k, false);
    print_row({"3", std::to_string(s), format_double(cell.recall),
               format_double(cell.avg_relative_error)},
              12);
  }
  return 0;
}
