// Figure 8(a): top-k query recall vs k, for Zipf skews z in {1.0, 1.5, 2.0,
// 2.5}. Paper setup: U = 8e6 distinct pairs, d = 50,000 destinations, r = 3,
// s = 128, averaged over 5 seeds.
//
// Flags / env: --u/DCS_U, --d/DCS_D, --runs/DCS_RUNS, --full/DCS_FULL=1
// (paper scale), --s/DCS_S, --r/DCS_R, --tracking/DCS_TRACKING (use the
// tracking estimator; accuracy is identical by construction).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);

  DcsParams params;
  params.num_tables = static_cast<int>(options.integer("r", 3));
  params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  const bool tracking = options.flag("tracking", false);

  const std::vector<double> skews = {1.0, 1.5, 2.0, 2.5};
  const std::vector<std::size_t> ks = {1, 2, 5, 10, 15, 20};

  std::printf("# Figure 8(a): top-k recall (U=%llu, d=%u, r=%d, s=%u, runs=%llu, %s)\n",
              static_cast<unsigned long long>(scale.u_pairs),
              scale.num_destinations, params.num_tables,
              params.buckets_per_table,
              static_cast<unsigned long long>(scale.runs),
              tracking ? "tracking" : "basic");
  std::vector<std::vector<AccuracyCell>> columns;
  for (const double z : skews)
    columns.push_back(accuracy_row(scale, params, z, ks, tracking));
  print_row({"k", "z=1.0", "z=1.5", "z=2.0", "z=2.5"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::vector<std::string> row{std::to_string(ks[i])};
    for (std::size_t c = 0; c < skews.size(); ++c)
      row.push_back(format_double(columns[c][i].recall));
    print_row(row);
  }
  return 0;
}
