// Ablation: collision-corrected estimation.
//
// Quantifies the bias the correction removes and its effect on Figure 8(b)'s
// relative errors. Two lenses:
//   1. across-seed mean of the top-1 frequency estimate vs truth (bias);
//   2. the fig8b error sweep with correction on vs off.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sketch/distinct_count_sketch.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  Scale scale = Scale::resolve(options);
  const double skew = options.real("z", 1.5);

  // --- Lens 1: bias of the top-1 estimate across seeds -----------------
  ZipfWorkloadConfig config;
  config.u_pairs = scale.u_pairs;
  config.num_destinations = scale.num_destinations;
  config.skew = skew;
  config.seed = 7;
  const ZipfWorkload workload(config);
  const DestFrequency top = workload.true_top_k(1)[0];

  RunningStats raw, corrected;
  const auto seeds = static_cast<std::uint64_t>(options.integer("seeds", 10));
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    for (const bool enable : {false, true}) {
      DcsParams params;
      params.collision_correction = enable;
      params.seed = seed * 997 + 3;
      DistinctCountSketch sketch(params);
      for (const FlowUpdate& u : workload.updates())
        sketch.update(u.dest, u.source, u.delta);
      (enable ? corrected : raw)
          .add(static_cast<double>(sketch.estimate_frequency(top.dest)));
    }
  }
  const double truth = static_cast<double>(top.frequency);
  std::printf("# Collision-correction ablation (U=%llu, d=%u, z=%.1f, %llu seeds)\n",
              static_cast<unsigned long long>(scale.u_pairs),
              scale.num_destinations, skew,
              static_cast<unsigned long long>(seeds));
  std::printf("top-1 truth=%.0f  raw mean=%.0f (bias %+.1f%%)  corrected mean=%.0f (bias %+.1f%%)\n\n",
              truth, raw.mean(), 100.0 * (raw.mean() - truth) / truth,
              corrected.mean(),
              100.0 * (corrected.mean() - truth) / truth);

  // --- Lens 2: fig8b error sweep, correction off vs on -----------------
  const std::vector<std::size_t> ks = {1, 5, 10, 20};
  print_row({"k", "err_raw", "err_corrected"}, 16);
  DcsParams raw_params;
  DcsParams corrected_params;
  corrected_params.collision_correction = true;
  const auto raw_row = accuracy_row(scale, raw_params, skew, ks, false);
  const auto corrected_row =
      accuracy_row(scale, corrected_params, skew, ks, false);
  for (std::size_t i = 0; i < ks.size(); ++i)
    print_row({std::to_string(ks[i]),
               format_double(raw_row[i].avg_relative_error),
               format_double(corrected_row[i].avg_relative_error)},
              16);
  return 0;
}
