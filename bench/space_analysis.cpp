// §6.1 space analysis: measured sketch sizes vs the brute-force scheme.
//
// The paper computes (for U = 8e6, r = 3, s = 128): Basic sketch ~2.3 MB
// (23 non-empty levels x 3 x 128 x 65 4-byte counters), Tracking ~2x that,
// vs ~96 MB for brute force (12 bytes per distinct pair) — and an
// extrapolation to U = 1e9 where brute force explodes to 12 GB while the
// sketch only grows by the extra ~7 levels (x1.3).
//
// We reproduce the measured side with our 8-byte counters and report both
// the paper's accounting and the actual allocated bytes of our
// implementations (including the exact tracker as the brute-force stand-in).
#include <cmath>
#include <cstdio>

#include "baselines/exact_tracker.hpp"
#include "bench_util.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);

  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 128;
  params.seed = 3;

  ZipfWorkloadConfig config;
  config.u_pairs = scale.u_pairs;
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.seed = 13;
  const ZipfWorkload workload(config);

  DistinctCountSketch basic(params);
  TrackingDcs tracking(params);
  ExactTracker exact;
  for (const FlowUpdate& u : workload.updates()) {
    basic.update(u.dest, u.source, u.delta);
    tracking.update(u.dest, u.source, u.delta);
    exact.update(u.dest, u.source, u.delta);
  }

  const double mib = 1024.0 * 1024.0;
  std::printf("# Space analysis (U=%llu, d=%u, r=3, s=128)\n",
              static_cast<unsigned long long>(scale.u_pairs),
              scale.num_destinations);
  print_row({"structure", "MiB", "notes"}, 22);
  print_row({"basic sketch",
             format_double(static_cast<double>(basic.memory_bytes()) / mib, 2),
             std::to_string(basic.allocated_levels()) + " levels allocated"},
            22);
  print_row(
      {"tracking sketch",
       format_double(static_cast<double>(tracking.memory_bytes()) / mib, 2),
       "adds singleton maps + heaps"},
      22);
  print_row({"exact (measured)",
             format_double(static_cast<double>(exact.memory_bytes()) / mib, 2),
             "hash maps, this process"},
            22);
  print_row({"exact (paper acct)",
             format_double(static_cast<double>(ExactTracker::paper_accounting_bytes(
                               exact.distinct_pairs())) /
                               mib,
                           2),
             "12 bytes per distinct pair"},
            22);

  // Extrapolation table mirroring the paper's U = 1e9 argument. Sketch size
  // scales with the number of non-empty levels (~log2 U); brute force with U.
  std::printf("\n# Extrapolation: sketch grows with log2(U); brute force with U\n");
  print_row({"U", "levels", "sketch_MiB(est)", "brute_MiB"}, 18);
  const double level_mib = params.level_bytes() / mib;
  for (const double u : {8e6, 6.4e7, 1e9}) {
    const int levels = static_cast<int>(std::ceil(std::log2(u))) + 1;
    print_row({format_double(u, 0), std::to_string(levels),
               format_double(levels * level_mib, 1),
               format_double(u * 12 / mib, 1)},
              18);
  }
  return 0;
}
