// Operational costs of the distributed deployment: per-router sketch wire
// size, serialize/deserialize time, and collector merge + rebuild time as a
// function of the number of routers. These are the numbers an ISP deployment
// plans around (how often can the collector refresh its network-wide view?).
#include <cstdio>
#include <sstream>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "distributed/sharded_monitor.hpp"
#include "sketch/tracking_dcs.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);

  DcsParams params;
  params.seed = 5;

  ZipfWorkloadConfig config;
  config.u_pairs = scale.u_pairs;
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.seed = 9;
  const ZipfWorkload workload(config);

  std::printf("# Distributed deployment costs (U=%llu total, split across routers)\n",
              static_cast<unsigned long long>(scale.u_pairs));
  print_row({"routers", "wire_KiB/router", "ser_ms", "deser_ms", "merge_ms",
             "rebuild_ms"},
            16);

  JsonReport report = make_report("distributed_costs", options);
  report.meta("u_pairs", static_cast<double>(scale.u_pairs));
  for (const std::size_t routers : {2u, 4u, 8u, 16u}) {
    ShardedMonitor monitor(params, routers);
    for (const FlowUpdate& u : workload.updates())
      monitor.update(u.dest, u.source, u.delta);

    // Wire size + serialize/deserialize cost of one router's sketch.
    std::stringstream wire;
    Stopwatch ser_watch;
    {
      BinaryWriter writer(wire);
      monitor.shard(0).serialize(writer);
    }
    const double ser_ms = ser_watch.elapsed_ms();
    const double wire_kib = static_cast<double>(wire.str().size()) / 1024.0;
    Stopwatch deser_watch;
    BinaryReader reader(wire);
    const DistinctCountSketch restored =
        DistinctCountSketch::deserialize(reader);
    const double deser_ms = deser_watch.elapsed_ms();
    if (!(restored == monitor.shard(0))) std::printf("# WIRE CORRUPTION\n");

    // Collector: merge all routers, then build tracking state.
    Stopwatch merge_watch;
    DistinctCountSketch merged = monitor.collect();
    const double merge_ms = merge_watch.elapsed_ms();
    Stopwatch rebuild_watch;
    const TrackingDcs tracking(merged);
    const double rebuild_ms = rebuild_watch.elapsed_ms();
    if (tracking.top_k(1).entries.empty()) std::printf("# EMPTY RESULT\n");

    print_row({std::to_string(routers), format_double(wire_kib, 1),
               format_double(ser_ms, 2), format_double(deser_ms, 2),
               format_double(merge_ms, 2), format_double(rebuild_ms, 2)},
              16);

    const std::string section = "routers_" + std::to_string(routers);
    // Wire size is a function of the seeded workload alone — deterministic
    // and gated on every machine. The timings are single-shot and host
    // dependent; the runner applies its default timing noise.
    MetricValue wire_metric;
    wire_metric.value = wire_kib;
    wire_metric.dir = Direction::kLowerIsBetter;
    wire_metric.noise_pct = 0.0;
    wire_metric.deterministic = true;
    report.metric(section, "wire_kib_per_router", wire_metric);
    report.metric(section, "serialize_ms", ser_ms, Direction::kLowerIsBetter);
    report.metric(section, "deserialize_ms", deser_ms,
                  Direction::kLowerIsBetter);
    report.metric(section, "merge_ms", merge_ms, Direction::kLowerIsBetter);
    report.metric(section, "rebuild_ms", rebuild_ms,
                  Direction::kLowerIsBetter);
  }
  write_report(report, options);
  return 0;
}
