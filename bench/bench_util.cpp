#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <memory>
#include <numeric>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace dcs::bench {

Scale Scale::resolve(const Options& options) {
  Scale scale{};
  scale.full = options.flag("full", false);
  // Paper scale: U = 8e6 pairs, d = 5e4 destinations, 5 runs. The scaled
  // default (10x smaller U) keeps the whole bench suite in the minutes range.
  scale.u_pairs = static_cast<std::uint64_t>(
      options.integer("u", scale.full ? 8'000'000 : 800'000));
  scale.num_destinations =
      static_cast<std::uint32_t>(options.integer("d", 50'000));
  scale.runs =
      static_cast<std::uint64_t>(options.integer("runs", scale.full ? 5 : 3));
  return scale;
}

void replay(const std::vector<FlowUpdate>& updates, TopKEstimator& estimator) {
  for (const FlowUpdate& u : updates)
    estimator.update(u.dest, u.source, u.delta);
}

std::vector<AccuracyCell> accuracy_row(const Scale& scale,
                                       const DcsParams& params, double skew,
                                       const std::vector<std::size_t>& ks,
                                       bool use_tracking) {
  std::vector<AccuracyCell> cells(ks.size());
  for (std::uint64_t run = 0; run < scale.runs; ++run) {
    ZipfWorkloadConfig workload_config;
    workload_config.u_pairs = scale.u_pairs;
    workload_config.num_destinations = scale.num_destinations;
    workload_config.skew = skew;
    workload_config.seed = 1000 + run;
    const ZipfWorkload workload(workload_config);

    DcsParams run_params = params;
    run_params.seed = 77 + run;
    std::unique_ptr<TopKEstimator> estimator;
    if (use_tracking)
      estimator = std::make_unique<TrackingDcs>(run_params);
    else
      estimator = std::make_unique<DistinctCountSketch>(run_params);

    replay(workload.updates(), *estimator);
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const TopKResult result = estimator->top_k(ks[i]);
      const TopKAccuracy accuracy =
          evaluate_top_k(result.entries, workload.true_frequencies(), ks[i]);
      cells[i].recall += accuracy.recall;
      cells[i].avg_relative_error += accuracy.avg_relative_error;
    }
  }
  for (AccuracyCell& cell : cells) {
    cell.recall /= static_cast<double>(scale.runs);
    cell.avg_relative_error /= static_cast<double>(scale.runs);
  }
  return cells;
}

AccuracyCell accuracy_cell(const Scale& scale, const DcsParams& params,
                           double skew, std::size_t k, bool use_tracking) {
  return accuracy_row(scale, params, skew, {k}, use_tracking)[0];
}

TimingSummary summarize_samples(std::vector<double> samples) {
  TimingSummary summary;
  summary.count = samples.size();
  if (samples.empty()) return summary;
  summary.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                 static_cast<double>(samples.size());
  summary.p50 = percentile(samples, 0.50);
  summary.p90 = percentile(samples, 0.90);
  summary.p99 = percentile(samples, 0.99);
  return summary;
}

TimingSummary summarize_histogram(const obs::HistogramSnapshot& hist) {
  TimingSummary summary;
  summary.count = hist.count;
  summary.mean = hist.mean();
  summary.p50 = hist.quantile(0.50);
  summary.p90 = hist.quantile(0.90);
  summary.p99 = hist.quantile(0.99);
  return summary;
}

std::vector<std::string> summary_cells(const TimingSummary& summary,
                                       int decimals) {
  return {format_double(summary.mean, decimals),
          format_double(summary.p50, decimals),
          format_double(summary.p90, decimals),
          format_double(summary.p99, decimals)};
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

JsonReport::JsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  const std::time_t now = std::time(nullptr);
  std::tm parts{};
  localtime_r(&now, &parts);
  char buffer[16];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", &parts);
  date_ = buffer;
}

void JsonReport::value(const std::string& section, const std::string& key,
                       double v) {
  auto it = std::find_if(sections_.begin(), sections_.end(),
                         [&](const Section& s) { return s.name == section; });
  if (it == sections_.end()) {
    sections_.push_back({section, {}});
    it = std::prev(sections_.end());
  }
  auto entry = std::find_if(it->values.begin(), it->values.end(),
                            [&](const auto& kv) { return kv.first == key; });
  if (entry == it->values.end())
    it->values.emplace_back(key, v);
  else
    entry->second = v;
}

std::string JsonReport::render() const {
  // Doubles are rendered with %.6g: enough precision for ns-scale timings
  // while keeping NaN/Inf out (JSON has no literal for them — clamp to 0).
  const auto number = [](double v) -> std::string {
    if (!std::isfinite(v)) return "0";
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%.6g", v);
    return buffer;
  };
  std::string out = "{\n  \"bench\": \"" + bench_name_ + "\",\n  \"date\": \"" +
                    date_ + "\",\n  \"results\": {";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    out += s == 0 ? "\n" : ",\n";
    out += "    \"" + sections_[s].name + "\": {";
    const auto& values = sections_[s].values;
    for (std::size_t i = 0; i < values.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "      \"" + values[i].first + "\": " + number(values[i].second);
    }
    out += values.empty() ? "}" : "\n    }";
  }
  out += sections_.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string JsonReport::write(const std::string& dir) const {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/BENCH_" + date_ + ".json";
  atomic_write_file(path, render());
  return path;
}

}  // namespace dcs::bench
