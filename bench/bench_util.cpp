#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <memory>
#include <numeric>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace dcs::bench {

Scale Scale::resolve(const Options& options) {
  Scale scale{};
  scale.full = options.flag("full", false);
  // Paper scale: U = 8e6 pairs, d = 5e4 destinations, 5 runs. The scaled
  // default (10x smaller U) keeps the whole bench suite in the minutes range.
  scale.u_pairs = static_cast<std::uint64_t>(
      options.integer("u", scale.full ? 8'000'000 : 800'000));
  scale.num_destinations =
      static_cast<std::uint32_t>(options.integer("d", 50'000));
  scale.runs =
      static_cast<std::uint64_t>(options.integer("runs", scale.full ? 5 : 3));
  return scale;
}

void replay(const std::vector<FlowUpdate>& updates, TopKEstimator& estimator) {
  for (const FlowUpdate& u : updates)
    estimator.update(u.dest, u.source, u.delta);
}

std::vector<AccuracyCell> accuracy_row(const Scale& scale,
                                       const DcsParams& params, double skew,
                                       const std::vector<std::size_t>& ks,
                                       bool use_tracking) {
  std::vector<AccuracyCell> cells(ks.size());
  for (std::uint64_t run = 0; run < scale.runs; ++run) {
    ZipfWorkloadConfig workload_config;
    workload_config.u_pairs = scale.u_pairs;
    workload_config.num_destinations = scale.num_destinations;
    workload_config.skew = skew;
    workload_config.seed = 1000 + run;
    const ZipfWorkload workload(workload_config);

    DcsParams run_params = params;
    run_params.seed = 77 + run;
    std::unique_ptr<TopKEstimator> estimator;
    if (use_tracking)
      estimator = std::make_unique<TrackingDcs>(run_params);
    else
      estimator = std::make_unique<DistinctCountSketch>(run_params);

    replay(workload.updates(), *estimator);
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const TopKResult result = estimator->top_k(ks[i]);
      const TopKAccuracy accuracy =
          evaluate_top_k(result.entries, workload.true_frequencies(), ks[i]);
      cells[i].recall += accuracy.recall;
      cells[i].avg_relative_error += accuracy.avg_relative_error;
    }
  }
  for (AccuracyCell& cell : cells) {
    cell.recall /= static_cast<double>(scale.runs);
    cell.avg_relative_error /= static_cast<double>(scale.runs);
  }
  return cells;
}

AccuracyCell accuracy_cell(const Scale& scale, const DcsParams& params,
                           double skew, std::size_t k, bool use_tracking) {
  return accuracy_row(scale, params, skew, {k}, use_tracking)[0];
}

TimingSummary summarize_samples(std::vector<double> samples) {
  TimingSummary summary;
  summary.count = samples.size();
  if (samples.empty()) return summary;
  summary.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                 static_cast<double>(samples.size());
  summary.p50 = percentile(samples, 0.50);
  summary.p90 = percentile(samples, 0.90);
  summary.p99 = percentile(samples, 0.99);
  return summary;
}

TimingSummary summarize_histogram(const obs::HistogramSnapshot& hist) {
  TimingSummary summary;
  summary.count = hist.count;
  summary.mean = hist.mean();
  summary.p50 = hist.quantile(0.50);
  summary.p90 = hist.quantile(0.90);
  summary.p99 = hist.quantile(0.99);
  return summary;
}

std::vector<std::string> summary_cells(const TimingSummary& summary,
                                       int decimals) {
  return {format_double(summary.mean, decimals),
          format_double(summary.p50, decimals),
          format_double(summary.p90, decimals),
          format_double(summary.p99, decimals)};
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

JsonReport make_report(const std::string& bench_name, const Options& options) {
  JsonReport report(bench_name);
  report.set_run_id(options.str("run-id", ""));
  return report;
}

void write_report(const JsonReport& report, const Options& options) {
  try {
    const std::string path = report.write(options.str("json-dir", "."));
    std::printf("json: %s\n", path.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench: json write failed: %s\n", error.what());
  }
}

MetricValue summary_metric(const TimingSummary& summary, Direction dir,
                           double noise_pct) {
  MetricValue v;
  v.value = summary.mean;
  v.dir = dir;
  v.noise_pct = noise_pct;
  v.count = static_cast<double>(summary.count);
  v.p50 = summary.p50;
  v.p90 = summary.p90;
  v.p99 = summary.p99;
  return v;
}

}  // namespace dcs::bench
