// Ablation A2: why deletion support matters — the flash-crowd experiment.
//
// Workload: a SYN flood (spoofed sources, never completing) against victim V1
// composed with a *larger* flash crowd (legitimate clients, handshakes
// complete => deletions) against destination V2, over background traffic.
//
//   * The Distinct-Count Sketch processes the deletions, so V1 dominates its
//     top-k and V2 (net half-open ~ 0) disappears: the attack is correctly
//     separated from the crowd.
//   * An insert-only distinct sampler (Gibbons-style) must ignore deletions;
//     it ranks the flash-crowd destination ABOVE the true victim.
//   * A volume (Count-Min) heavy hitter ranks by packets and also prefers
//     the crowd (4 packets per legitimate session vs 1 per spoofed SYN).
#include <cstdio>

#include "baselines/count_min.hpp"
#include "baselines/distinct_sampler.hpp"
#include "baselines/exact_tracker.hpp"
#include "bench_util.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "sketch/tracking_dcs.hpp"

namespace {

using namespace dcs;

const char* label_for(Addr addr, Addr victim, Addr crowd) {
  if (addr == victim) return "ATTACK-VICTIM";
  if (addr == crowd) return "flash-crowd";
  return "background";
}

void print_top(const char* name, const std::vector<TopKEntry>& entries,
               Addr victim, Addr crowd) {
  std::printf("%-24s", name);
  for (std::size_t i = 0; i < entries.size(); ++i)
    std::printf(" #%zu=%s(%llu)", i + 1,
                label_for(entries[i].group, victim, crowd),
                static_cast<unsigned long long>(entries[i].estimate));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs::bench;
  const Options options(argc, argv);
  const auto flood_sources =
      static_cast<std::uint64_t>(options.integer("flood", 20'000));
  const auto crowd_clients =
      static_cast<std::uint64_t>(options.integer("crowd", 40'000));

  Timeline timeline(17);
  BackgroundTrafficConfig background;
  background.sessions = 10'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = flood_sources;
  add_syn_flood(timeline, flood);
  FlashCrowdConfig crowd;
  crowd.clients = crowd_clients;
  crowd.target = 0x0a00cafe;
  add_flash_crowd(timeline, crowd);

  FlowUpdateExporter exporter;
  const auto updates = exporter.run(timeline.finalize());

  DcsParams params;
  params.seed = 23;
  TrackingDcs dcs_sketch(params);
  DistinctSampler insert_only(4096, 23);
  VolumeHeavyHitters volume(4, 8192, 23);
  ExactTracker exact;

  for (const FlowUpdate& u : updates) {
    dcs_sketch.update(u.dest, u.source, u.delta);
    exact.update(u.dest, u.source, u.delta);
    volume.update(u.dest, u.source, +1);  // volume counts packets, not deltas
    if (u.delta > 0) insert_only.update(u.dest, u.source, +1);
  }

  std::printf("# Deletion ablation: flood=%llu spoofed sources vs flash crowd=%llu clients\n",
              static_cast<unsigned long long>(flood_sources),
              static_cast<unsigned long long>(crowd_clients));
  std::printf("# (crowd is %.1fx larger; a robust detector must still rank the victim first)\n",
              static_cast<double>(crowd_clients) /
                  static_cast<double>(flood_sources));
  print_top("exact (net half-open)", exact.top_k(3).entries, flood.victim,
            crowd.target);
  print_top("dcs-tracking", dcs_sketch.top_k(3).entries, flood.victim,
            crowd.target);
  print_top("insert-only sampler", insert_only.top_k(3).entries, flood.victim,
            crowd.target);
  print_top("volume (count-min)", volume.top_k(3).entries, flood.victim,
            crowd.target);

  const auto dcs_top = dcs_sketch.top_k(1).entries;
  const bool correct = !dcs_top.empty() && dcs_top[0].group == flood.victim;
  std::printf("\ndcs verdict: %s\n",
              correct ? "victim correctly ranked #1"
                      : "FAILED to rank victim first");
  return correct ? 0 : 1;
}
