// Federation root merge scaling: how root ingest throughput behaves as the
// same relay workload fans in over 1, 2, 4, 8 leaf uplinks
// (docs/FEDERATION.md).
//
//   build/bench/federation_merge [--sites 32] [--epochs 6] [--updates 1000]
//                                [--max-leaves 8]
//
// The total work is held constant — `sites` origin sites, `epochs` deltas
// each — and only the fan-in changes: L raw role=kLeaf uplink peers each
// relay sites/L of the population, stop-and-wait, concurrently. Merges
// serialize on the root's state lock, so throughput should be roughly flat
// in L; what the gate watches is that multiplexing the same deltas over
// more uplinks does not tax the merge path (per-connection overhead,
// gap-ledger bookkeeping) superlinearly.
//
// Every delta is acked and the harness asserts sites * epochs merges with
// zero gaps before reporting — a throughput figure produced while losing
// relays would be meaningless.
#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/stopwatch.hpp"
#include "service/collector.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/distinct_count_sketch.hpp"

namespace {

using namespace dcs;
using namespace dcs::service;

DcsParams bench_params() {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = 29;
  return params;
}

/// One raw leaf uplink: Hello role=kLeaf, then origin-site deltas.
struct UplinkPeer {
  std::optional<TcpSocket> socket;
  FrameDecoder decoder;
  char buffer[1 << 14];

  std::optional<Ack> read_ack() {
    for (;;) {
      if (auto frame = decoder.next())
        return Ack::decode(frame->payload, frame->version);
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  }
};

struct LeafCountResult {
  double relayed_per_sec = 0.0;
  bool ok = false;
};

LeafCountResult run_leaf_count(std::size_t leaves, std::uint64_t sites,
                               std::uint64_t epochs, const std::string& blob) {
  LeafCountResult result;
  const DcsParams params = bench_params();

  CollectorConfig config;
  config.params = params;
  config.federation_root = true;
  config.run_detection = false;  // isolate the relay + merge path
  config.io_timeout_ms = 25;
  Collector root(config);
  root.start();
  const std::uint16_t port = root.port();

  // Connect + Hello every uplink before the clock starts.
  std::vector<std::unique_ptr<UplinkPeer>> uplinks;
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    auto peer = std::make_unique<UplinkPeer>();
    peer->socket = tcp_connect("127.0.0.1", port, 5000);
    if (!peer->socket) {
      std::fprintf(stderr, "federation_merge: connect failed\n");
      root.stop();
      return result;
    }
    peer->socket->set_timeouts(30000, 30000);
    Hello hello;
    hello.site_id = 1001 + leaf;
    hello.role = PeerRole::kLeaf;
    hello.params_fingerprint = params.fingerprint();
    if (!peer->socket->send_all(
            encode_frame(MsgType::kHello, hello.encode())) ||
        !peer->read_ack()) {
      std::fprintf(stderr, "federation_merge: uplink hello failed\n");
      root.stop();
      return result;
    }
    uplinks.push_back(std::move(peer));
  }

  // Each uplink relays its shard's slice of the origin sites, stop-and-wait.
  std::atomic<bool> failed{false};
  Stopwatch watch;
  std::vector<std::thread> relays;
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    relays.emplace_back([&, leaf] {
      UplinkPeer& peer = *uplinks[leaf];
      for (std::uint64_t site = 1 + leaf; site <= sites; site += leaves) {
        for (std::uint64_t epoch = 1; epoch <= epochs; ++epoch) {
          SnapshotDelta delta;
          delta.site_id = site;  // origin site, not the uplink's leaf id
          delta.epoch = epoch;
          delta.updates = 1;
          delta.sketch_blob = blob;
          if (!peer.socket->send_all(
                  encode_frame(MsgType::kSnapshotDelta, delta.encode()))) {
            failed.store(true);
            return;
          }
          const auto ack = peer.read_ack();
          if (!ack || ack->status != AckStatus::kOk) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& relay : relays) relay.join();
  const double elapsed_s = watch.elapsed_ns() / 1e9;

  const std::uint64_t expected = sites * epochs;
  const bool merged_all = root.wait_for_deltas(expected, 60000);
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    Bye bye;
    bye.site_id = 1001 + leaf;
    uplinks[leaf]->socket->send_all(encode_frame(MsgType::kBye, bye.encode()));
  }
  uplinks.clear();
  const auto stats = root.stats();
  root.stop();

  if (failed.load() || !merged_all || stats.deltas_merged != expected ||
      stats.relayed_deltas != expected || stats.dropped_epochs != 0 ||
      stats.pending_gap_epochs != 0) {
    std::fprintf(stderr,
                 "federation_merge: accounting broken at %zu leaves "
                 "(merged=%llu expected=%llu)\n",
                 leaves, static_cast<unsigned long long>(stats.deltas_merged),
                 static_cast<unsigned long long>(expected));
    return result;
  }
  result.relayed_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(expected) / elapsed_s : 0.0;
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const auto sites = static_cast<std::uint64_t>(options.integer("sites", 32));
  const auto epochs = static_cast<std::uint64_t>(options.integer("epochs", 6));
  const auto updates =
      static_cast<std::uint64_t>(options.integer("updates", 1000));
  const auto max_leaves =
      static_cast<std::size_t>(options.integer("max-leaves", 8));

  bench::JsonReport report = bench::make_report("federation_merge", options);
  report.meta("sites", static_cast<double>(sites));
  report.meta("epochs", static_cast<double>(epochs));
  report.meta("updates_per_blob", static_cast<double>(updates));

  // One realistic shared blob so each relayed merge costs what a real
  // epoch's merge costs (several allocated sketch levels).
  DistinctCountSketch sketch(bench_params());
  for (std::uint64_t i = 0; i < updates; ++i)
    sketch.update(static_cast<Addr>(i % 16), static_cast<Addr>(i), +1);
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  const std::string blob = std::move(out).str();

  try {
    std::printf("== federation root merge (sites=%llu epochs=%llu) ==\n",
                static_cast<unsigned long long>(sites),
                static_cast<unsigned long long>(epochs));
    bench::print_row({"leaves", "relayed deltas/s"});
    double single_leaf = 0.0;
    for (std::size_t leaves = 1; leaves <= max_leaves; leaves *= 2) {
      const LeafCountResult run =
          run_leaf_count(leaves, sites, epochs, blob);
      if (!run.ok) return 1;
      bench::print_row({std::to_string(leaves),
                        bench::format_double(run.relayed_per_sec)});
      if (leaves == 1) single_leaf = run.relayed_per_sec;
      // Loopback round-trips on a shared runner are noisy; generous noise
      // keeps the gate meaningful without tripping on scheduler weather.
      report.metric("leaves_" + std::to_string(leaves), "relayed_per_sec",
                    run.relayed_per_sec, bench::Direction::kHigherIsBetter,
                    40.0);
      if (leaves > 1 && single_leaf > 0.0)
        report.value("leaves_" + std::to_string(leaves), "vs_single_leaf",
                     run.relayed_per_sec / single_leaf);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "federation_merge: %s\n", error.what());
    return 1;
  }
  bench::write_report(report, options);
  return 0;
}
