// Telemetry overhead on the sketch update path: the instrumented hot loop
// with metrics recording enabled vs. disabled at runtime. A second section
// measures the epoch tracing layer (obs/trace.hpp) against the collector's
// real per-epoch work — decode + merge of a shipped delta blob — with its
// own 5% budget, and the whole run is summarized to BENCH_<date>.json.
//
//   build/bench/obs_overhead [--updates 1000000] [--reps 15] [--threshold 12]
//                            [--epochs 300] [--trace-threshold 5]
//                            [--json-dir DIR]
//
// Each rep streams the same workload through a fresh sketch twice —
// once with obs::set_enabled(true), once with false — interleaved so the
// two passes of a rep share thermal/frequency/interference state. The
// verdict is the *median of the paired per-rep deltas* (on_i - off_i),
// expressed as a percent of the fastest disabled pass: pairing cancels
// host drift that a min-vs-min comparison (still printed for reference)
// picks up as phantom overhead, and the median discards reps where the
// scheduler preempted one side of the pair. Exits nonzero when the
// overhead exceeds --threshold percent (default 12, the budget in
// docs/OBSERVABILITY.md).
//
// On the threshold: the telemetry tally costs a few ns/update in absolute
// terms (one relaxed atomic load, two plain member RMWs, a predictable
// branch — already near the floor for counting anything at all). When the
// update path itself was ~104 ns that was under 5%; the vectorized
// signature add cut the update to ~60 ns, so the same absolute cost now
// measures ~5-7% (worst on the tracking path), with ~+/-1 point of
// residual jitter at the default 15 paired reps of 1M updates — passes
// shorter than ~100 ms make the verdict noticeably noisier. The budget
// guards *added latency*, so it is set to 12% of the faster baseline
// (~7 ns headroom) rather than ratcheting with every update-path
// speedup — tight enough to catch any real regression (an extra atomic
// RMW or a mispredicted branch doubles the tally cost), loose enough
// that host noise does not fail the gate.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/serialize.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace {

using namespace dcs;

/// One timed pass of the full update stream; ns per update.
template <typename Sketch>
double run_pass(const std::vector<FlowUpdate>& updates, DcsParams params) {
  Sketch sketch(params);
  Stopwatch watch;
  for (const FlowUpdate& u : updates) sketch.update(u.dest, u.source, u.delta);
  return watch.elapsed_us() * 1000.0 / static_cast<double>(updates.size());
}

struct OverheadRow {
  bench::TimingSummary enabled;
  bench::TimingSummary disabled;
  double on_min = 0.0;
  double off_min = 0.0;
  double paired_delta_ns = 0.0;  // median over reps of (on_i - off_i)
  double overhead_pct = 0.0;     // paired_delta_ns / off_min
};

template <typename Sketch>
OverheadRow measure(const std::vector<FlowUpdate>& updates, DcsParams params,
                    std::uint64_t reps) {
  std::vector<double> on_ns, off_ns;
  // Warm-up pass so neither mode pays first-touch page faults.
  obs::set_enabled(false);
  run_pass<Sketch>(updates, params);
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    obs::set_enabled(true);
    on_ns.push_back(run_pass<Sketch>(updates, params));
    obs::set_enabled(false);
    off_ns.push_back(run_pass<Sketch>(updates, params));
  }
  obs::set_enabled(true);
  OverheadRow row;
  row.on_min = *std::min_element(on_ns.begin(), on_ns.end());
  row.off_min = *std::min_element(off_ns.begin(), off_ns.end());
  std::vector<double> deltas(on_ns.size());
  for (std::size_t i = 0; i < on_ns.size(); ++i) deltas[i] = on_ns[i] - off_ns[i];
  row.paired_delta_ns = bench::summarize_samples(std::move(deltas)).p50;
  row.enabled = bench::summarize_samples(std::move(on_ns));
  row.disabled = bench::summarize_samples(std::move(off_ns));
  if (row.off_min > 0.0)
    row.overhead_pct = row.paired_delta_ns / row.off_min * 100.0;
  return row;
}

/// One timed pass of `epochs` simulated collector epochs: decode the delta
/// blob and merge it — the real per-epoch work — then, exactly as the
/// collector's delta path does when telemetry records, stamp the trace,
/// observe every stage span plus freshness, and publish to the ring.
/// Returns ns per epoch. With obs::set_enabled(false) the whole tracing
/// block folds to one relaxed load and a branch, so the enabled/disabled
/// paired delta isolates the full tracing cost per epoch.
double run_epoch_pass(const std::string& blob, DcsParams params,
                      std::uint64_t epochs, obs::TraceRing& ring) {
  using obs::TraceStage;
  DistinctCountSketch accumulator(params);
  obs::TraceMetrics& metrics = obs::TraceMetrics::get();
  Stopwatch watch;
  for (std::uint64_t epoch = 1; epoch <= epochs; ++epoch) {
    std::istringstream in(blob, std::ios::binary);
    BinaryReader reader(in);
    const DistinctCountSketch delta = DistinctCountSketch::deserialize(reader);
    accumulator.merge(delta);
    if (obs::recording()) {
      obs::EpochTrace trace;
      trace.site_id = 1;
      trace.epoch = epoch;
      trace.updates = 1;
      trace.bytes = blob.size();
      std::uint64_t prev = 0;
      for (std::size_t stage = 0; stage < obs::kTraceStageCount; ++stage) {
        const std::uint64_t now = obs::unix_now_ns();
        trace.stage_unix_ns[stage] = now;
        metrics.observe_span(static_cast<TraceStage>(stage), prev, now);
        prev = now;
      }
      trace.freshness_ns =
          prev - trace.stamp(TraceStage::kSealed);
      metrics.detection_freshness_ns.observe(trace.freshness_ns);
      ring.push(trace);
    }
  }
  return watch.elapsed_us() * 1000.0 / static_cast<double>(epochs);
}

OverheadRow measure_tracing(const std::string& blob, DcsParams params,
                            std::uint64_t epochs, std::uint64_t reps) {
  obs::TraceRing ring(256);
  std::vector<double> on_ns, off_ns;
  obs::set_enabled(false);
  run_epoch_pass(blob, params, epochs, ring);  // warm-up
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    obs::set_enabled(true);
    on_ns.push_back(run_epoch_pass(blob, params, epochs, ring));
    obs::set_enabled(false);
    off_ns.push_back(run_epoch_pass(blob, params, epochs, ring));
  }
  obs::set_enabled(true);
  OverheadRow row;
  row.on_min = *std::min_element(on_ns.begin(), on_ns.end());
  row.off_min = *std::min_element(off_ns.begin(), off_ns.end());
  std::vector<double> deltas(on_ns.size());
  for (std::size_t i = 0; i < on_ns.size(); ++i)
    deltas[i] = on_ns[i] - off_ns[i];
  row.paired_delta_ns = bench::summarize_samples(std::move(deltas)).p50;
  row.enabled = bench::summarize_samples(std::move(on_ns));
  row.disabled = bench::summarize_samples(std::move(off_ns));
  if (row.off_min > 0.0)
    row.overhead_pct = row.paired_delta_ns / row.off_min * 100.0;
  return row;
}

void print_overhead_row(const char* path, const OverheadRow& row) {
  using namespace dcs::bench;
  print_row({path, format_double(row.off_min, 1),
             format_double(row.on_min, 1),
             format_double(row.disabled.p50, 1),
             format_double(row.enabled.p50, 1),
             format_double(row.paired_delta_ns, 2),
             format_double(row.overhead_pct, 2)},
            16);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);
  const auto num_updates = static_cast<std::uint64_t>(
      options.integer("updates", scale.full ? 2'000'000 : 1'000'000));
  const auto reps =
      static_cast<std::uint64_t>(options.integer("reps", 15));
  const double threshold = options.real("threshold", 12.0);

  DcsParams params;
  params.num_tables = static_cast<int>(options.integer("r", 3));
  params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  params.seed = 7;

  ZipfWorkloadConfig config;
  config.u_pairs = num_updates;
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.churn = 0.25;  // exercise the delete path too
  config.seed = 11;
  const ZipfWorkload workload(config);
  const std::vector<FlowUpdate>& updates = workload.updates();

  std::printf(
      "# telemetry overhead: ns/update over %llu paired reps of %zu updates "
      "(budget %.1f%%)\n",
      static_cast<unsigned long long>(reps), updates.size(), threshold);
  print_row({"path", "off_min", "on_min", "off_p50", "on_p50", "delta_ns",
             "overhead%"},
            16);

  const OverheadRow basic =
      measure<dcs::DistinctCountSketch>(updates, params, reps);
  print_overhead_row("basic_update", basic);
  const OverheadRow tracking =
      measure<dcs::TrackingDcs>(updates, params, reps);
  print_overhead_row("tracking_update", tracking);

  const double worst = basic.overhead_pct > tracking.overhead_pct
                           ? basic.overhead_pct
                           : tracking.overhead_pct;
  std::printf(
      "\nworst-case overhead (median paired delta): %.2f%% (budget %.1f%%)\n",
      worst, threshold);

  // --- epoch tracing overhead on the collector's merge path ---------------
  // Denominator: one epoch of real collector work (decode the shipped delta
  // blob, merge it). Numerator: the full per-epoch tracing block (eight
  // stamps, span observations, freshness, ring publish). The epoch path
  // runs thousands of times per second at most, so the budget is tighter
  // than the per-update one: 5%.
  const auto epochs = static_cast<std::uint64_t>(
      options.integer("epochs", scale.full ? 1000 : 300));
  const double trace_threshold = options.real("trace-threshold", 5.0);
  dcs::DistinctCountSketch epoch_delta(params);
  {
    ZipfWorkloadConfig epoch_config;
    epoch_config.u_pairs = 2048;  // one default agent epoch
    epoch_config.num_destinations = 200;
    epoch_config.skew = 1.2;
    epoch_config.seed = 23;
    const ZipfWorkload epoch_workload(epoch_config);
    for (const FlowUpdate& u : epoch_workload.updates())
      epoch_delta.update(u.dest, u.source, u.delta);
  }
  std::ostringstream blob_out(std::ios::binary);
  BinaryWriter blob_writer(blob_out);
  epoch_delta.serialize(blob_writer);
  const std::string blob = std::move(blob_out).str();

  std::printf(
      "\n# epoch tracing overhead: ns/epoch (decode+merge %zu-byte delta) "
      "over %llu paired reps of %llu epochs (budget %.1f%%)\n",
      blob.size(), static_cast<unsigned long long>(reps),
      static_cast<unsigned long long>(epochs), trace_threshold);
  print_row({"path", "off_min", "on_min", "off_p50", "on_p50", "delta_ns",
             "overhead%"},
            16);
  const OverheadRow trace_row = measure_tracing(blob, params, epochs, reps);
  print_overhead_row("epoch_trace", trace_row);
  std::printf(
      "\ntracing overhead (median paired delta): %.2f%% (budget %.1f%%)\n",
      trace_row.overhead_pct, trace_threshold);

  // Machine-readable companion (ROADMAP item 5): BENCH_<run>_obs_overhead
  // .json next to the text output, or under --json-dir. The off_min
  // baseline is the one trajectory-worthy timing (best-of-N floor of the
  // uninstrumented update path); the overhead percentages wobble by a few
  // points between invocations on a shared host, so they stay informational
  // here — the bench's own budget check (exit code) is their gate.
  bench::JsonReport report = bench::make_report("obs_overhead", options);
  report.meta("runs", static_cast<double>(reps));
  const auto record = [&report, reps](const std::string& section,
                                      const OverheadRow& row) {
    bench::MetricValue off_min;
    off_min.value = row.off_min;
    off_min.dir = bench::Direction::kLowerIsBetter;
    off_min.count = static_cast<double>(reps);
    off_min.min_value = row.off_min;
    off_min.p50 = row.disabled.p50;
    off_min.p90 = row.disabled.p90;
    off_min.p99 = row.disabled.p99;
    if (row.off_min > 0.0)
      off_min.noise_pct = (row.disabled.p50 - row.off_min) / row.off_min * 100.0;
    report.metric(section, "off_min_ns", off_min);
    report.value(section, "on_min_ns", row.on_min);
    report.value(section, "off_p50_ns", row.disabled.p50);
    report.value(section, "on_p50_ns", row.enabled.p50);
    report.value(section, "paired_delta_ns", row.paired_delta_ns);
    report.value(section, "overhead_pct", row.overhead_pct);
  };
  record("basic_update", basic);
  record("tracking_update", tracking);
  record("epoch_trace", trace_row);
  report.value("budgets", "update_threshold_pct", threshold);
  report.value("budgets", "trace_threshold_pct", trace_threshold);
  bench::write_report(report, options);

  const bool update_ok = worst <= threshold;
  const bool trace_ok = trace_row.overhead_pct <= trace_threshold;
  return update_ok && trace_ok ? 0 : 1;
}
