// Telemetry overhead on the sketch update path: the instrumented hot loop
// with metrics recording enabled vs. disabled at runtime.
//
//   build/bench/obs_overhead [--updates 400000] [--reps 7] [--threshold 5]
//
// Each rep streams the same workload through a fresh sketch twice —
// once with obs::set_enabled(true), once with false — interleaved to cancel
// thermal/frequency drift. The overhead compares the *minimum* per-update
// time across reps (the least-interfered run; medians still reported),
// which keeps the verdict stable on machines with scheduler noise. Exits
// nonzero when the overhead exceeds --threshold percent (default 5, the
// budget in docs/OBSERVABILITY.md).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace {

using namespace dcs;

/// One timed pass of the full update stream; ns per update.
template <typename Sketch>
double run_pass(const std::vector<FlowUpdate>& updates, DcsParams params) {
  Sketch sketch(params);
  Stopwatch watch;
  for (const FlowUpdate& u : updates) sketch.update(u.dest, u.source, u.delta);
  return watch.elapsed_us() * 1000.0 / static_cast<double>(updates.size());
}

struct OverheadRow {
  bench::TimingSummary enabled;
  bench::TimingSummary disabled;
  double on_min = 0.0;
  double off_min = 0.0;
  double overhead_pct = 0.0;  // (on_min - off_min) / off_min
};

template <typename Sketch>
OverheadRow measure(const std::vector<FlowUpdate>& updates, DcsParams params,
                    std::uint64_t reps) {
  std::vector<double> on_ns, off_ns;
  // Warm-up pass so neither mode pays first-touch page faults.
  obs::set_enabled(false);
  run_pass<Sketch>(updates, params);
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    obs::set_enabled(true);
    on_ns.push_back(run_pass<Sketch>(updates, params));
    obs::set_enabled(false);
    off_ns.push_back(run_pass<Sketch>(updates, params));
  }
  obs::set_enabled(true);
  OverheadRow row;
  row.on_min = *std::min_element(on_ns.begin(), on_ns.end());
  row.off_min = *std::min_element(off_ns.begin(), off_ns.end());
  row.enabled = bench::summarize_samples(std::move(on_ns));
  row.disabled = bench::summarize_samples(std::move(off_ns));
  if (row.off_min > 0.0)
    row.overhead_pct = (row.on_min - row.off_min) / row.off_min * 100.0;
  return row;
}

void print_overhead_row(const char* path, const OverheadRow& row) {
  using namespace dcs::bench;
  print_row({path, format_double(row.off_min, 1),
             format_double(row.on_min, 1),
             format_double(row.disabled.p50, 1),
             format_double(row.enabled.p50, 1),
             format_double(row.overhead_pct, 2)},
            16);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);
  const auto num_updates = static_cast<std::uint64_t>(
      options.integer("updates", scale.full ? 2'000'000 : 400'000));
  const auto reps =
      static_cast<std::uint64_t>(options.integer("reps", scale.full ? 11 : 7));
  const double threshold = options.real("threshold", 5.0);

  DcsParams params;
  params.num_tables = static_cast<int>(options.integer("r", 3));
  params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  params.seed = 7;

  ZipfWorkloadConfig config;
  config.u_pairs = num_updates;
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.churn = 0.25;  // exercise the delete path too
  config.seed = 11;
  const ZipfWorkload workload(config);
  const std::vector<FlowUpdate>& updates = workload.updates();

  std::printf(
      "# telemetry overhead: ns/update, min over %llu reps of %zu updates "
      "(budget %.1f%%)\n",
      static_cast<unsigned long long>(reps), updates.size(), threshold);
  print_row({"path", "off_min", "on_min", "off_p50", "on_p50", "overhead%"},
            16);

  const OverheadRow basic =
      measure<dcs::DistinctCountSketch>(updates, params, reps);
  print_overhead_row("basic_update", basic);
  const OverheadRow tracking =
      measure<dcs::TrackingDcs>(updates, params, reps);
  print_overhead_row("tracking_update", tracking);

  const double worst = basic.overhead_pct > tracking.overhead_pct
                           ? basic.overhead_pct
                           : tracking.overhead_pct;
  std::printf("\nworst-case overhead (min vs min): %.2f%% (budget %.1f%%)\n",
              worst, threshold);
  return worst <= threshold ? 0 : 1;
}
