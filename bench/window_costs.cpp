// Costs of the recency extensions: SlidingWindowSketch memory/update
// overhead vs window length, and EpochChangeDetector epoch-close cost.
// Both are built purely from sketch linearity; this harness shows what the
// recency semantics cost relative to a single cumulative tracking sketch.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "detection/epoch_change.hpp"
#include "sketch/sliding_window.hpp"
#include "sketch/tracking_dcs.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);

  ZipfWorkloadConfig config;
  config.u_pairs = scale.u_pairs / 4;  // recency structures see fewer updates
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.seed = 3;
  const ZipfWorkload workload(config);
  const auto& updates = workload.updates();

  std::printf("# Recency-structure costs (%zu updates)\n", updates.size());

  JsonReport report = make_report("window_costs", options);
  report.meta("updates", static_cast<double>(updates.size()));
  // Memory footprints are functions of the seeded workload alone —
  // deterministic, gated everywhere. The us/update figures are single-shot
  // timings; the runner applies its default timing noise.
  const auto record = [&report](const std::string& section, double us,
                                double kib) {
    report.metric(section, "us_per_update", us, Direction::kLowerIsBetter);
    MetricValue mem;
    mem.value = kib;
    mem.dir = Direction::kLowerIsBetter;
    mem.noise_pct = 0.0;
    mem.deterministic = true;
    report.metric(section, "memory_kib", mem);
  };

  // Reference: cumulative tracking sketch.
  {
    DcsParams params;
    params.seed = 9;
    TrackingDcs tracker(params);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) tracker.update(u.dest, u.source, u.delta);
    const double us = watch.elapsed_us() / static_cast<double>(updates.size());
    const double kib = static_cast<double>(tracker.memory_bytes()) / 1024.0;
    std::printf("cumulative tracking: %.3f us/update, %.1f KiB\n", us, kib);
    record("cumulative_tracking", us, kib);
  }

  print_row({"window_epochs", "us/update", "KiB"}, 16);
  for (const std::size_t window_epochs : {2u, 4u, 8u, 16u}) {
    SlidingWindowSketch::Config window_config;
    window_config.sketch.seed = 9;
    window_config.epoch_updates = 16'384;
    window_config.window_epochs = window_epochs;
    SlidingWindowSketch window(window_config);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) window.update(u.dest, u.source, u.delta);
    const double us = watch.elapsed_us() / static_cast<double>(updates.size());
    const double kib = static_cast<double>(window.memory_bytes()) / 1024.0;
    print_row({std::to_string(window_epochs), format_double(us, 3),
               format_double(kib, 0)},
              16);
    record("window_" + std::to_string(window_epochs), us, kib);
  }

  // Epoch change detector: amortized per-update cost including the
  // subtract + query at every epoch boundary.
  {
    EpochChangeDetector::Config change_config;
    change_config.sketch.seed = 9;
    change_config.epoch_updates = 16'384;
    EpochChangeDetector change(change_config);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) change.update(u.dest, u.source, u.delta);
    const double us = watch.elapsed_us() / static_cast<double>(updates.size());
    const double kib = static_cast<double>(change.memory_bytes()) / 1024.0;
    std::printf("epoch change (%zu reports): %.3f us/update, %.1f KiB\n",
                change.reports().size(), us, kib);
    record("epoch_change", us, kib);
  }
  write_report(report, options);
  return 0;
}
