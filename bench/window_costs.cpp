// Costs of the recency extensions: SlidingWindowSketch memory/update
// overhead vs window length, and EpochChangeDetector epoch-close cost.
// Both are built purely from sketch linearity; this harness shows what the
// recency semantics cost relative to a single cumulative tracking sketch.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "detection/epoch_change.hpp"
#include "sketch/sliding_window.hpp"
#include "sketch/tracking_dcs.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);

  ZipfWorkloadConfig config;
  config.u_pairs = scale.u_pairs / 4;  // recency structures see fewer updates
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.seed = 3;
  const ZipfWorkload workload(config);
  const auto& updates = workload.updates();

  std::printf("# Recency-structure costs (%zu updates)\n", updates.size());

  // Reference: cumulative tracking sketch.
  {
    DcsParams params;
    params.seed = 9;
    TrackingDcs tracker(params);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) tracker.update(u.dest, u.source, u.delta);
    std::printf("cumulative tracking: %.3f us/update, %.1f KiB\n",
                watch.elapsed_us() / static_cast<double>(updates.size()),
                static_cast<double>(tracker.memory_bytes()) / 1024.0);
  }

  print_row({"window_epochs", "us/update", "KiB"}, 16);
  for (const std::size_t window_epochs : {2u, 4u, 8u, 16u}) {
    SlidingWindowSketch::Config window_config;
    window_config.sketch.seed = 9;
    window_config.epoch_updates = 16'384;
    window_config.window_epochs = window_epochs;
    SlidingWindowSketch window(window_config);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) window.update(u.dest, u.source, u.delta);
    print_row({std::to_string(window_epochs),
               format_double(watch.elapsed_us() /
                                 static_cast<double>(updates.size()),
                             3),
               format_double(static_cast<double>(window.memory_bytes()) / 1024.0,
                             0)},
              16);
  }

  // Epoch change detector: amortized per-update cost including the
  // subtract + query at every epoch boundary.
  {
    EpochChangeDetector::Config change_config;
    change_config.sketch.seed = 9;
    change_config.epoch_updates = 16'384;
    EpochChangeDetector change(change_config);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) change.update(u.dest, u.source, u.delta);
    std::printf("epoch change (%zu reports): %.3f us/update, %.1f KiB\n",
                change.reports().size(),
                watch.elapsed_us() / static_cast<double>(updates.size()),
                static_cast<double>(change.memory_bytes()) / 1024.0);
  }
  return 0;
}
