// End-to-end pipeline throughput: packets/second through each stage of the
// monitoring chain, measured separately and composed —
//   packet -> FlowUpdateExporter -> update -> TrackingDcs -> (periodic) top-k
// This is the number that decides whether the monitor keeps up with a given
// link: the paper's premise is that all stages are cheap enough for ISP-edge
// deployment.
//
// Each ingest stage is measured three ways where the API supports it:
//   sequential — one call per element (update()/observe());
//   batched    — caller-side blocks through the update_batch() fast path
//                (hash precompute + prefetch + amortized telemetry, and for
//                the concurrent monitor one stripe lock per block);
//   pipelined  — ConcurrentMonitor per-stripe batch queues (queue_capacity >
//                0): per-element enqueue, stripe lock once per full queue.
// The pipelined/sequential ratio for the concurrent monitor is the headline
// number: it is what a deployment gains from routing ingest through the
// per-stripe batch queues instead of element-at-a-time lock-and-apply.
//
// Methodology for the sketch-ingest stages: one untimed warm-up pass
// populates every sketch level and faults in the backing pages, then the
// fastest of three timed passes over the same long-lived structure is
// reported. A continuous monitor spends its life in that steady state;
// single-shot cold runs mostly measure page faults, and best-of-N damps the
// +/-10-20% timing jitter of a shared virtualized host.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "distributed/concurrent_monitor.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "sketch/tracking_dcs.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;
  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);
  const std::size_t block = 1024;   // caller-side batch (NIC-burst sized)
  const std::size_t stripes = 16;
  // Per-stripe queue depth for pipelined mode. Larger than the caller-side
  // block: enqueueing is cheap, and a deeper queue hands update_batch()
  // bigger level-sorted applies per stripe-lock acquisition.
  const std::size_t queue_capacity = 4096;

  // Build a realistic packet mix: background sessions + a flood + a crowd.
  Timeline timeline(3);
  BackgroundTrafficConfig background;
  background.sessions = scale.full ? 200'000 : 40'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = scale.full ? 100'000 : 20'000;
  add_syn_flood(timeline, flood);
  FlashCrowdConfig crowd;
  crowd.clients = scale.full ? 100'000 : 20'000;
  add_flash_crowd(timeline, crowd);
  const auto packets = timeline.finalize();

  std::printf("# Pipeline throughput (%zu packets)\n", packets.size());

  // Stage 1: exporter alone, element sink vs batch sink.
  double exporter_mpps, exporter_batched_mpps;
  std::vector<FlowUpdate> updates;
  {
    FlowUpdateExporter exporter;
    updates.reserve(packets.size());
    Stopwatch watch;
    for (const Packet& packet : packets)
      exporter.observe(packet,
                       [&updates](const FlowUpdate& u) { updates.push_back(u); });
    exporter.finish_interval();
    exporter_mpps =
        static_cast<double>(packets.size()) / watch.elapsed_s() / 1e6;
  }
  {
    FlowUpdateExporter exporter;
    std::size_t emitted = 0;
    Stopwatch watch;
    exporter.run_batched(
        packets,
        [&emitted](std::span<const FlowUpdate> ready) { emitted += ready.size(); },
        block);
    exporter_batched_mpps =
        static_cast<double>(packets.size()) / watch.elapsed_s() / 1e6;
    if (emitted != updates.size())
      std::printf("# WARNING: batch sink emitted %zu != %zu updates\n", emitted,
                  updates.size());
  }

  DcsParams params;
  params.seed = 5;

  // Warm-up + best-of-3 runner (see methodology note at the top). Repeated
  // passes over the same linear sketch only grow its counts; per-update cost
  // is unchanged, so re-ingesting the stream is a valid steady-state probe.
  // Alongside the best-of-3 pick, the spread between the fastest and
  // slowest timed rep is recorded as this stage's run-to-run noise — the
  // BENCH JSON carries it so the regression gate can scale its threshold
  // to what this host actually jitters by.
  struct Steady {
    double best = 0.0;       // M updates/s, fastest rep
    double spread_pct = 0.0; // (best - worst) / best * 100
  };
  const auto steady_mups = [&updates](auto&& pass) {
    pass();  // untimed: allocate levels, fault in pages
    Steady steady;
    double worst = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      pass();
      const double mups =
          static_cast<double>(updates.size()) / watch.elapsed_s() / 1e6;
      if (mups > steady.best) steady.best = mups;
      if (worst == 0.0 || mups < worst) worst = mups;
    }
    if (steady.best > 0.0)
      steady.spread_pct = (steady.best - worst) / steady.best * 100.0;
    return steady;
  };
  const std::span<const FlowUpdate> all(updates);

  // Stage 2: tracking sketch alone (on the produced updates).
  Steady sketch_mups, sketch_batched_mups;
  {
    TrackingDcs tracker(params);
    sketch_mups = steady_mups([&] {
      for (const FlowUpdate& u : updates)
        tracker.update(u.dest, u.source, u.delta);
    });
  }
  {
    TrackingDcs tracker(params);
    sketch_batched_mups = steady_mups([&] {
      for (std::size_t i = 0; i < all.size(); i += block)
        tracker.update_batch(all.subspan(i, std::min(block, all.size() - i)));
    });
  }

  // Stage 3: concurrent monitor ingest — the three modes. Same updates, same
  // stripe count; only the locking/batching discipline changes.
  Steady monitor_mups, monitor_batched_mups, monitor_pipelined_mups;
  {
    ConcurrentMonitor monitor(params, stripes);
    monitor_mups = steady_mups([&] {
      for (const FlowUpdate& u : updates)
        monitor.update(u.dest, u.source, u.delta);
    });
  }
  {
    ConcurrentMonitor monitor(params, stripes);
    monitor_batched_mups = steady_mups([&] {
      for (std::size_t i = 0; i < all.size(); i += block)
        monitor.update_batch(all.subspan(i, std::min(block, all.size() - i)));
    });
  }
  {
    ConcurrentMonitor monitor(params, stripes, queue_capacity);
    monitor_pipelined_mups = steady_mups([&] {
      for (const FlowUpdate& u : updates)
        monitor.update(u.dest, u.source, u.delta);
      monitor.flush();
    });
  }

  // Composed: packets in, alerts-capable state out, query every 4096 updates.
  double composed_mpps, composed_batched_mpps;
  std::uint64_t checksum = 0;
  {
    FlowUpdateExporter exporter;
    TrackingDcs tracker(params);
    std::uint64_t since_query = 0;
    Stopwatch watch;
    for (const Packet& packet : packets) {
      exporter.observe(packet, [&](const FlowUpdate& u) {
        tracker.update(u.dest, u.source, u.delta);
        if (++since_query >= 4096) {
          since_query = 0;
          const auto top = tracker.top_k(5);
          if (!top.entries.empty()) checksum ^= top.entries[0].group;
        }
      });
    }
    exporter.finish_interval();  // keep the last partial SYN/FIN interval
    checksum ^= exporter.intervals().size();
    composed_mpps =
        static_cast<double>(packets.size()) / watch.elapsed_s() / 1e6;
  }
  // Composed, batched: exporter batch sink feeding the batched tracker path,
  // query once per delivered block.
  {
    FlowUpdateExporter exporter;
    TrackingDcs tracker(params);
    std::uint64_t since_query = 0;
    Stopwatch watch;
    exporter.run_batched(
        packets,
        [&](std::span<const FlowUpdate> ready) {
          tracker.update_batch(ready);
          since_query += ready.size();
          if (since_query >= 4096) {
            since_query = 0;
            const auto top = tracker.top_k(5);
            if (!top.entries.empty()) checksum ^= top.entries[0].group;
          }
        },
        block);
    checksum ^= exporter.intervals().size();
    composed_batched_mpps =
        static_cast<double>(packets.size()) / watch.elapsed_s() / 1e6;
  }
  if (checksum == 0xdeadbeef) std::printf("#\n");

  print_row({"stage", "M ops/s"}, 38);
  print_row({"exporter (packets)", format_double(exporter_mpps, 2)}, 38);
  print_row({"exporter batched (packets)",
             format_double(exporter_batched_mpps, 2)}, 38);
  print_row({"tracking sketch (updates)", format_double(sketch_mups.best, 2)},
            38);
  print_row({"tracking sketch batched (updates)",
             format_double(sketch_batched_mups.best, 2)}, 38);
  print_row({"concurrent sequential (updates)",
             format_double(monitor_mups.best, 2)}, 38);
  print_row({"concurrent batched (updates)",
             format_double(monitor_batched_mups.best, 2)}, 38);
  print_row({"concurrent pipelined (updates)",
             format_double(monitor_pipelined_mups.best, 2)}, 38);
  print_row({"composed pipeline (packets)", format_double(composed_mpps, 2)},
            38);
  print_row({"composed batched (packets)",
             format_double(composed_batched_mpps, 2)}, 38);
  std::printf("\n%zu packets produced %zu flow updates (%.2f updates/packet)\n",
              packets.size(), updates.size(),
              static_cast<double>(updates.size()) /
                  static_cast<double>(packets.size()));
  std::printf("batched ingest speedup over sequential (concurrent): %.2fx\n",
              monitor_batched_mups.best / monitor_mups.best);
  std::printf("pipelined ingest speedup over sequential (concurrent): %.2fx\n",
              monitor_pipelined_mups.best / monitor_mups.best);

  // BENCH JSON: every stage's throughput, best-of-3 with recorded spread
  // for the warmed stages (higher is better), single-shot exporter stages
  // with noise left to the runner's default.
  JsonReport report = make_report("pipeline_throughput", options);
  report.meta("packets", static_cast<double>(packets.size()));
  report.meta("updates", static_cast<double>(updates.size()));
  const auto steady = [&report](const std::string& key, const Steady& s) {
    MetricValue v;
    v.value = s.best;
    v.dir = Direction::kHigherIsBetter;
    v.noise_pct = s.spread_pct;
    v.count = 3;
    report.metric("throughput", key, v);
  };
  report.metric("throughput", "exporter_mpps", exporter_mpps,
                Direction::kHigherIsBetter);
  report.metric("throughput", "exporter_batched_mpps", exporter_batched_mpps,
                Direction::kHigherIsBetter);
  steady("sketch_mups", sketch_mups);
  steady("sketch_batched_mups", sketch_batched_mups);
  steady("concurrent_mups", monitor_mups);
  steady("concurrent_batched_mups", monitor_batched_mups);
  steady("concurrent_pipelined_mups", monitor_pipelined_mups);
  report.metric("throughput", "composed_mpps", composed_mpps,
                Direction::kHigherIsBetter);
  report.metric("throughput", "composed_batched_mpps", composed_batched_mpps,
                Direction::kHigherIsBetter);
  report.value("speedups", "batched_vs_sequential",
               monitor_batched_mups.best / monitor_mups.best);
  report.value("speedups", "pipelined_vs_sequential",
               monitor_pipelined_mups.best / monitor_mups.best);
  write_report(report, options);
  return 0;
}
