// End-to-end pipeline throughput: packets/second through each stage of the
// monitoring chain, measured separately and composed —
//   packet -> FlowUpdateExporter -> update -> TrackingDcs -> (periodic) top-k
// This is the number that decides whether the monitor keeps up with a given
// link: the paper's premise is that all stages are cheap enough for ISP-edge
// deployment.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "sketch/tracking_dcs.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::bench;
  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);

  // Build a realistic packet mix: background sessions + a flood + a crowd.
  Timeline timeline(3);
  BackgroundTrafficConfig background;
  background.sessions = scale.full ? 200'000 : 40'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood;
  flood.spoofed_sources = scale.full ? 100'000 : 20'000;
  add_syn_flood(timeline, flood);
  FlashCrowdConfig crowd;
  crowd.clients = scale.full ? 100'000 : 20'000;
  add_flash_crowd(timeline, crowd);
  const auto packets = timeline.finalize();

  std::printf("# Pipeline throughput (%zu packets)\n", packets.size());

  // Stage 1: exporter alone.
  double exporter_mpps;
  std::vector<FlowUpdate> updates;
  {
    FlowUpdateExporter exporter;
    updates.reserve(packets.size());
    Stopwatch watch;
    for (const Packet& packet : packets)
      exporter.observe(packet,
                       [&updates](const FlowUpdate& u) { updates.push_back(u); });
    exporter_mpps =
        static_cast<double>(packets.size()) / watch.elapsed_s() / 1e6;
  }

  // Stage 2: tracking sketch alone (on the produced updates).
  double sketch_mups;
  {
    DcsParams params;
    params.seed = 5;
    TrackingDcs tracker(params);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) tracker.update(u.dest, u.source, u.delta);
    sketch_mups =
        static_cast<double>(updates.size()) / watch.elapsed_s() / 1e6;
  }

  // Composed: packets in, alerts-capable state out, query every 4096 updates.
  double composed_mpps;
  {
    FlowUpdateExporter exporter;
    DcsParams params;
    params.seed = 5;
    TrackingDcs tracker(params);
    std::uint64_t since_query = 0;
    std::uint64_t checksum = 0;
    Stopwatch watch;
    for (const Packet& packet : packets) {
      exporter.observe(packet, [&](const FlowUpdate& u) {
        tracker.update(u.dest, u.source, u.delta);
        if (++since_query >= 4096) {
          since_query = 0;
          const auto top = tracker.top_k(5);
          if (!top.entries.empty()) checksum ^= top.entries[0].group;
        }
      });
    }
    composed_mpps =
        static_cast<double>(packets.size()) / watch.elapsed_s() / 1e6;
    if (checksum == 0xdeadbeef) std::printf("#\n");
  }

  print_row({"stage", "M ops/s"}, 34);
  print_row({"exporter (packets)", format_double(exporter_mpps, 2)}, 34);
  print_row({"tracking sketch (updates)", format_double(sketch_mups, 2)}, 34);
  print_row({"composed pipeline (packets)", format_double(composed_mpps, 2)},
            34);
  std::printf("\n%zu packets produced %zu flow updates (%.2f updates/packet)\n",
              packets.size(), updates.size(),
              static_cast<double>(updates.size()) /
                  static_cast<double>(packets.size()));
  return 0;
}
