// Microbenchmarks (google-benchmark): the primitive operations whose costs
// compose into the paper's Table 2 — count-signature updates, bucket
// classification, per-update sketch maintenance (basic vs tracking), top-k
// queries, and heap operations.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.hpp"
#include "distributed/concurrent_monitor.hpp"
#include "net/exporter.hpp"
#include "sketch/count_signature.hpp"
#include "sketch/sliding_window.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/indexed_heap.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace {

using namespace dcs;

DcsParams bench_params(std::uint32_t s = 128) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = s;
  params.seed = 99;
  return params;
}

std::vector<FlowUpdate> bench_updates(std::size_t count) {
  ZipfWorkloadConfig config;
  config.u_pairs = count;
  config.num_destinations = 10'000;
  config.skew = 1.5;
  config.seed = 31;
  return ZipfWorkload(config).updates();
}

void BM_SignatureAdd(benchmark::State& state) {
  std::vector<std::int64_t> counters(65, 0);
  CountSignatureView sig(counters.data(), 64);
  Xoshiro256 rng(1);
  std::uint64_t key = rng();
  for (auto _ : state) {
    sig.add(key, +1);
    key = key * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(counters.data());
  }
}
BENCHMARK(BM_SignatureAdd);

void BM_SignatureClassify(benchmark::State& state) {
  std::vector<std::int64_t> counters(65, 0);
  CountSignatureView sig(counters.data(), 64);
  sig.add(0x123456789abcdef0ULL, +1);
  for (auto _ : state) {
    const BucketClass cls = sig.classify();
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK(BM_SignatureClassify);

void BM_BasicUpdate(benchmark::State& state) {
  const auto updates = bench_updates(100'000);
  DistinctCountSketch sketch(bench_params());
  std::size_t i = 0;
  for (auto _ : state) {
    const FlowUpdate& u = updates[i];
    sketch.update(u.dest, u.source, u.delta);
    if (++i == updates.size()) i = 0;
  }
}
BENCHMARK(BM_BasicUpdate);

void BM_BasicUpdateBatch(benchmark::State& state) {
  // Same stream as BM_BasicUpdate through the batched path; Arg = caller
  // block size. Compare ns/op directly against BM_BasicUpdate.
  const auto updates = bench_updates(100'000);
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  DistinctCountSketch sketch(bench_params());
  const std::span<const FlowUpdate> all(updates);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(block, all.size() - i);
    sketch.update_batch(all.subspan(i, n));
    i = (i + n) % all.size();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(n));
  }
}
BENCHMARK(BM_BasicUpdateBatch)->Arg(64)->Arg(256)->Arg(1024);

void BM_TrackingUpdate(benchmark::State& state) {
  const auto updates = bench_updates(100'000);
  TrackingDcs sketch(bench_params());
  std::size_t i = 0;
  for (auto _ : state) {
    const FlowUpdate& u = updates[i];
    sketch.update(u.dest, u.source, u.delta);
    if (++i == updates.size()) i = 0;
  }
}
BENCHMARK(BM_TrackingUpdate);

void BM_TrackingUpdateBatch(benchmark::State& state) {
  const auto updates = bench_updates(100'000);
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  TrackingDcs sketch(bench_params());
  const std::span<const FlowUpdate> all(updates);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(block, all.size() - i);
    sketch.update_batch(all.subspan(i, n));
    i = (i + n) % all.size();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(n));
  }
}
BENCHMARK(BM_TrackingUpdateBatch)->Arg(64)->Arg(1024);

void BM_BasicTopK(benchmark::State& state) {
  const auto updates = bench_updates(200'000);
  DistinctCountSketch sketch(
      bench_params(static_cast<std::uint32_t>(state.range(0))));
  for (const FlowUpdate& u : updates) sketch.update(u.dest, u.source, u.delta);
  for (auto _ : state) {
    const TopKResult result = sketch.top_k(10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BasicTopK)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_TrackingTopK(benchmark::State& state) {
  const auto updates = bench_updates(200'000);
  TrackingDcs sketch(bench_params(static_cast<std::uint32_t>(state.range(0))));
  for (const FlowUpdate& u : updates) sketch.update(u.dest, u.source, u.delta);
  for (auto _ : state) {
    const TopKResult result = sketch.top_k(10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TrackingTopK)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_HeapAdd(benchmark::State& state) {
  IndexedMaxHeap<Addr> heap;
  Xoshiro256 rng(2);
  for (Addr k = 0; k < 10'000; ++k)
    heap.add(k, static_cast<std::int64_t>(rng.bounded(1000)) + 1);
  for (auto _ : state) {
    const Addr key = static_cast<Addr>(rng.bounded(10'000));
    heap.add(key, +1);
    benchmark::DoNotOptimize(heap);
  }
}
BENCHMARK(BM_HeapAdd);

void BM_HeapTopK(benchmark::State& state) {
  IndexedMaxHeap<Addr> heap;
  Xoshiro256 rng(2);
  for (Addr k = 0; k < 100'000; ++k)
    heap.add(k, static_cast<std::int64_t>(rng.bounded(1'000'000)) + 1);
  for (auto _ : state) {
    const auto top = heap.top_k(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(top);
  }
}
BENCHMARK(BM_HeapTopK)->Arg(1)->Arg(10)->Arg(100);

void BM_SlidingWindowUpdate(benchmark::State& state) {
  SlidingWindowSketch::Config config;
  config.sketch = bench_params();
  config.epoch_updates = 16'384;
  config.window_epochs = static_cast<std::size_t>(state.range(0));
  SlidingWindowSketch window(config);
  const auto updates = bench_updates(100'000);
  std::size_t i = 0;
  for (auto _ : state) {
    const FlowUpdate& u = updates[i];
    window.update(u.dest, u.source, u.delta);
    if (++i == updates.size()) i = 0;
  }
}
BENCHMARK(BM_SlidingWindowUpdate)->Arg(2)->Arg(8);

void BM_ConcurrentUpdate(benchmark::State& state) {
  static ConcurrentMonitor* monitor = nullptr;
  if (state.thread_index() == 0)
    monitor = new ConcurrentMonitor(bench_params(), 16);
  Xoshiro256 rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    monitor->update(static_cast<Addr>(rng.bounded(10'000)),
                    static_cast<Addr>(rng()), +1);
  }
  if (state.thread_index() == 0) {
    delete monitor;
    monitor = nullptr;
  }
}
BENCHMARK(BM_ConcurrentUpdate)->Threads(1)->Threads(4);

void BM_ConcurrentUpdateBatch(benchmark::State& state) {
  // Bulk ingest through the stripe-partitioning batch path (one stripe lock
  // per sub-batch) — contrast with BM_ConcurrentUpdate's lock-per-element.
  const auto updates = bench_updates(100'000);
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  ConcurrentMonitor monitor(bench_params(), 16);
  const std::span<const FlowUpdate> all(updates);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(block, all.size() - i);
    monitor.update_batch(all.subspan(i, n));
    i = (i + n) % all.size();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(n));
  }
}
BENCHMARK(BM_ConcurrentUpdateBatch)->Arg(256)->Arg(1024);

void BM_ConcurrentPipelinedUpdate(benchmark::State& state) {
  // Per-element ingest into the per-stripe batch queues (queue_capacity > 0):
  // the stripe's sketch lock is taken once per full queue.
  ConcurrentMonitor monitor(bench_params(), 16, /*queue_capacity=*/1024);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    monitor.update(static_cast<Addr>(rng.bounded(10'000)),
                   static_cast<Addr>(rng()), +1);
  }
  monitor.flush();
}
BENCHMARK(BM_ConcurrentPipelinedUpdate);

void BM_ExporterObserve(benchmark::State& state) {
  // Exporter throughput on a SYN/ACK mix.
  dcs::FlowUpdateExporter exporter;
  Xoshiro256 rng(3);
  std::uint64_t tick = 0;
  std::uint64_t sink_count = 0;
  for (auto _ : state) {
    const Packet packet{tick++, static_cast<Addr>(rng.bounded(100'000)),
                        static_cast<Addr>(rng.bounded(1000)),
                        rng.bounded(2) ? PacketType::kSyn : PacketType::kAck};
    exporter.observe(packet,
                     [&sink_count](const FlowUpdate&) { ++sink_count; });
  }
  benchmark::DoNotOptimize(sink_count);
}
BENCHMARK(BM_ExporterObserve);

void BM_SketchMerge(benchmark::State& state) {
  // Steady-state collector workload: a long-lived global sketch absorbing
  // per-site epoch deltas. Cost is pure counter addition over the
  // r x s x levels grid (the first merge allocates any missing levels; the
  // loop then measures the allocation-free path). Args: {r, s}.
  DcsParams params = bench_params(static_cast<std::uint32_t>(state.range(1)));
  params.num_tables = static_cast<int>(state.range(0));

  const auto updates = bench_updates(50'000);
  DistinctCountSketch delta(params);
  for (const auto& u : updates) delta.update(u.dest, u.source, u.delta);

  DistinctCountSketch global(params);
  global.merge(delta);  // pre-allocate every level the delta carries
  for (auto _ : state) {
    global.merge(delta);
    benchmark::DoNotOptimize(global);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchMerge)
    ->Args({3, 64})
    ->Args({3, 256})
    ->Args({3, 1024})
    ->Args({5, 256});

void BM_TrackingMergeRebuild(benchmark::State& state) {
  // What the collector actually pays per shipped epoch: merge the delta
  // into the tracking sketch *and* rebuild the singleton maps and heaps.
  DcsParams params = bench_params(static_cast<std::uint32_t>(state.range(1)));
  params.num_tables = static_cast<int>(state.range(0));

  const auto updates = bench_updates(50'000);
  DistinctCountSketch delta(params);
  for (const auto& u : updates) delta.update(u.dest, u.source, u.delta);

  TrackingDcs global(params);
  for (auto _ : state) {
    global.merge_sketch(delta);
    benchmark::DoNotOptimize(global);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackingMergeRebuild)->Args({3, 64})->Args({3, 256});

}  // namespace

BENCHMARK_MAIN();
