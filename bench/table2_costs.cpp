// Table 2: empirical space / update-time / query-time comparison of the
// Basic vs Tracking Distinct-Count Sketch.
//
// The paper's Table 2 is asymptotic; this harness measures the actual costs
// on this machine across a sweep of s (sketch width) so the claimed scaling
// is visible:
//   * space: identical up to a small constant factor (tracking adds
//     singleton maps + heaps);
//   * update time: basic O(r log m) vs tracking O(r log^2 m) — tracking pays
//     a constant factor more per update;
//   * query time: basic grows with rs (sample reconstruction) while tracking
//     stays O(k log m).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"

namespace {

using namespace dcs;

struct Costs {
  double space_mib = 0.0;
  double update_us = 0.0;
  double query_us = 0.0;
};

template <typename Sketch>
Costs measure(const std::vector<FlowUpdate>& updates, DcsParams params,
              int query_reps) {
  Sketch sketch(params);
  Stopwatch update_watch;
  for (const FlowUpdate& u : updates)
    sketch.update(u.dest, u.source, u.delta);
  Costs costs;
  costs.update_us =
      update_watch.elapsed_us() / static_cast<double>(updates.size());
  costs.space_mib =
      static_cast<double>(sketch.memory_bytes()) / (1024.0 * 1024.0);

  std::uint64_t checksum = 0;
  Stopwatch query_watch;
  for (int rep = 0; rep < query_reps; ++rep) {
    const TopKResult result = sketch.top_k(10);
    if (!result.entries.empty()) checksum ^= result.entries[0].group;
  }
  costs.query_us = query_watch.elapsed_us() / static_cast<double>(query_reps);
  if (checksum == 0xdeadbeef) std::printf("#\n");
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs::bench;

  const Options options(argc, argv);
  const Scale scale = Scale::resolve(options);
  const int query_reps = static_cast<int>(options.integer("query-reps", 50));

  ZipfWorkloadConfig config;
  config.u_pairs = scale.u_pairs;
  config.num_destinations = scale.num_destinations;
  config.skew = 1.5;
  config.seed = 21;
  const ZipfWorkload workload(config);

  std::printf("# Table 2: basic vs tracking costs (U=%llu, d=%u, r=3, top-10 queries)\n",
              static_cast<unsigned long long>(scale.u_pairs),
              scale.num_destinations);
  print_row({"s", "variant", "space_MiB", "update_us", "query_us"}, 12);
  for (const std::uint32_t s : {64u, 128u, 256u, 512u}) {
    DcsParams params;
    params.num_tables = 3;
    params.buckets_per_table = s;
    params.seed = 5;
    const Costs basic =
        measure<DistinctCountSketch>(workload.updates(), params, query_reps);
    const Costs tracking =
        measure<TrackingDcs>(workload.updates(), params, query_reps);
    print_row({std::to_string(s), "basic", format_double(basic.space_mib, 2),
               format_double(basic.update_us, 3),
               format_double(basic.query_us, 1)},
              12);
    print_row({std::to_string(s), "tracking",
               format_double(tracking.space_mib, 2),
               format_double(tracking.update_us, 3),
               format_double(tracking.query_us, 1)},
              12);
  }
  return 0;
}
