// Shared harness for the paper-reproduction benchmarks.
//
// Each benchmark binary prints a table mirroring one figure/table of the
// paper. The harness centralizes workload construction, multi-seed averaging
// (the paper averages 5 runs) and column formatting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "metrics/accuracy.hpp"
#include "obs/metrics.hpp"
#include "sketch/dcs_params.hpp"
#include "stream/generator.hpp"

namespace dcs::bench {

/// Scale/accuracy knobs shared by all experiment binaries, resolved from
/// CLI flags, DCS_* environment variables, and DCS_FULL=1 (paper scale).
struct Scale {
  std::uint64_t u_pairs;
  std::uint32_t num_destinations;
  std::uint64_t runs;  // seeds averaged per configuration
  bool full;

  static Scale resolve(const Options& options);
};

/// Feed a workload's updates into any TopKEstimator.
void replay(const std::vector<FlowUpdate>& updates, TopKEstimator& estimator);

/// Averaged accuracy for one (skew, k) configuration.
struct AccuracyCell {
  double recall = 0.0;
  double avg_relative_error = 0.0;
};

/// Evaluate every k in `ks` against one skew: builds `runs` workloads with
/// different seeds, streams each through a fresh sketch once, and evaluates
/// all k values on the same sketch state (matching the paper's Figure 8
/// methodology). Returns one cell per k.
std::vector<AccuracyCell> accuracy_row(const Scale& scale,
                                       const DcsParams& params, double skew,
                                       const std::vector<std::size_t>& ks,
                                       bool use_tracking);

/// Single-k convenience wrapper around accuracy_row.
AccuracyCell accuracy_cell(const Scale& scale, const DcsParams& params,
                           double skew, std::size_t k, bool use_tracking);

/// Distribution summary for repeated timing measurements. Benchmarks report
/// p50/p90/p99 alongside the mean — a mean alone hides the tail behavior
/// that matters for a real-time monitor.
struct TimingSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Exact summary of raw samples via the shared dcs::percentile helper.
TimingSummary summarize_samples(std::vector<double> samples);

/// Approximate summary read off an obs::Histogram snapshot (log2 buckets) —
/// for benchmarks that accumulate through the telemetry histogram instead
/// of storing every sample.
TimingSummary summarize_histogram(const obs::HistogramSnapshot& hist);

/// "mean/p50/p90/p99" cells for print_row.
std::vector<std::string> summary_cells(const TimingSummary& summary,
                                       int decimals = 2);

/// Fixed-width column printing helpers.
void print_row(const std::vector<std::string>& cells, int width = 12);
std::string format_double(double value, int decimals = 3);

/// Machine-readable companion to the printed tables: collects named scalar
/// results and writes them as `BENCH_<YYYY-MM-DD>.json` so runs can be
/// archived and diffed without scraping stdout. Sections preserve insertion
/// order; re-used (section, key) pairs overwrite.
///
///   {"bench": "obs_overhead", "date": "2026-08-08",
///    "results": {"basic_update": {"off_min_ns": 60.1, ...}, ...}}
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  void value(const std::string& section, const std::string& key, double v);

  std::string render() const;

  /// Write `dir`/BENCH_<date>.json (atomic rename, see atomic_write_file);
  /// returns the path written. Throws on I/O failure.
  std::string write(const std::string& dir = ".") const;

 private:
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, double>> values;
  };
  std::string bench_name_;
  std::string date_;
  std::vector<Section> sections_;
};

}  // namespace dcs::bench
