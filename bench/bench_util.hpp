// Shared harness for the paper-reproduction benchmarks.
//
// Each benchmark binary prints a table mirroring one figure/table of the
// paper. The harness centralizes workload construction, multi-seed averaging
// (the paper averages 5 runs) and column formatting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bench_report.hpp"
#include "common/options.hpp"
#include "metrics/accuracy.hpp"
#include "obs/metrics.hpp"
#include "sketch/dcs_params.hpp"
#include "stream/generator.hpp"

namespace dcs::bench {

/// Scale/accuracy knobs shared by all experiment binaries, resolved from
/// CLI flags, DCS_* environment variables, and DCS_FULL=1 (paper scale).
struct Scale {
  std::uint64_t u_pairs;
  std::uint32_t num_destinations;
  std::uint64_t runs;  // seeds averaged per configuration
  bool full;

  static Scale resolve(const Options& options);
};

/// Feed a workload's updates into any TopKEstimator.
void replay(const std::vector<FlowUpdate>& updates, TopKEstimator& estimator);

/// Averaged accuracy for one (skew, k) configuration.
struct AccuracyCell {
  double recall = 0.0;
  double avg_relative_error = 0.0;
};

/// Evaluate every k in `ks` against one skew: builds `runs` workloads with
/// different seeds, streams each through a fresh sketch once, and evaluates
/// all k values on the same sketch state (matching the paper's Figure 8
/// methodology). Returns one cell per k.
std::vector<AccuracyCell> accuracy_row(const Scale& scale,
                                       const DcsParams& params, double skew,
                                       const std::vector<std::size_t>& ks,
                                       bool use_tracking);

/// Single-k convenience wrapper around accuracy_row.
AccuracyCell accuracy_cell(const Scale& scale, const DcsParams& params,
                           double skew, std::size_t k, bool use_tracking);

/// Distribution summary for repeated timing measurements. Benchmarks report
/// p50/p90/p99 alongside the mean — a mean alone hides the tail behavior
/// that matters for a real-time monitor.
struct TimingSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Exact summary of raw samples via the shared dcs::percentile helper.
TimingSummary summarize_samples(std::vector<double> samples);

/// Approximate summary read off an obs::Histogram snapshot (log2 buckets) —
/// for benchmarks that accumulate through the telemetry histogram instead
/// of storing every sample.
TimingSummary summarize_histogram(const obs::HistogramSnapshot& hist);

/// "mean/p50/p90/p99" cells for print_row.
std::vector<std::string> summary_cells(const TimingSummary& summary,
                                       int decimals = 2);

/// Fixed-width column printing helpers.
void print_row(const std::vector<std::string>& cells, int width = 12);
std::string format_double(double value, int decimals = 3);

// The machine-readable companion to the printed tables is
// common/bench_report.hpp's JsonReport (the unified BENCH JSON schema);
// the helpers below wire it to the shared Options conventions so every
// bench honors --run-id / $DCS_RUN_ID and --json-dir / $DCS_JSON_DIR the
// same way.

/// A JsonReport for `bench_name` with the --run-id flag (env DCS_RUN_ID)
/// applied and the `runs` metadata pre-filled from Scale when relevant.
JsonReport make_report(const std::string& bench_name, const Options& options);

/// Write `report` under --json-dir (default `.`) and print the path.
/// I/O failure is reported to stderr, not fatal — the printed table is
/// still the primary output of a hand-run bench.
void write_report(const JsonReport& report, const Options& options);

/// MetricValue carrying a TimingSummary: value = mean, p50/p90/p99/count
/// filled in.
MetricValue summary_metric(const TimingSummary& summary, Direction dir,
                           double noise_pct = -1.0);

}  // namespace dcs::bench
