// Head-to-head comparison of every tracker in the repository on the decisive
// workload: a SYN flood hidden under a larger flash crowd plus background
// traffic. For each method: memory, per-update cost, and whether its #1
// answer is the true attack victim.
//
// Expected outcome (the paper's related-work argument, quantified):
//   * distinct-source + deletions  (exact, dcs-basic, dcs-tracking) -> victim;
//   * distinct-source, insert-only (distinct-sampler)               -> crowd;
//   * volume                       (count-min, space-saving,
//                                   sample-and-hold)                -> crowd.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baselines/count_min.hpp"
#include "baselines/distinct_sampler.hpp"
#include "baselines/exact_tracker.hpp"
#include "baselines/sample_and_hold.hpp"
#include "baselines/space_saving.hpp"
#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "net/exporter.hpp"
#include "net/scenarios.hpp"
#include "sketch/tracking_dcs.hpp"

namespace {

using namespace dcs;

struct Row {
  std::string name;
  std::string answer;
  double update_us = 0.0;
  double memory_kib = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs::bench;
  const Options options(argc, argv);
  const auto flood = static_cast<std::uint64_t>(options.integer("flood", 20'000));
  const auto crowd_size =
      static_cast<std::uint64_t>(options.integer("crowd", 40'000));

  Timeline timeline(31);
  BackgroundTrafficConfig background;
  background.sessions = 10'000;
  add_background_traffic(timeline, background);
  SynFloodConfig flood_config;
  flood_config.spoofed_sources = flood;
  add_syn_flood(timeline, flood_config);
  FlashCrowdConfig crowd;
  crowd.clients = crowd_size;
  crowd.target = 0x0a00cafe;
  add_flash_crowd(timeline, crowd);

  FlowUpdateExporter exporter;
  const auto packets = timeline.finalize();
  const auto updates = exporter.run(packets);

  const auto verdict = [&](Addr answer) -> std::string {
    if (answer == flood_config.victim) return "VICTIM (correct)";
    if (answer == crowd.target) return "crowd (wrong)";
    return "other (wrong)";
  };

  std::vector<Row> rows;

  {
    ExactTracker exact;
    Stopwatch watch;
    for (const FlowUpdate& u : updates) exact.update(u.dest, u.source, u.delta);
    rows.push_back({"exact", verdict(exact.top_k(1).entries.at(0).group),
                    watch.elapsed_us() / static_cast<double>(updates.size()),
                    static_cast<double>(exact.memory_bytes()) / 1024.0});
  }
  {
    DcsParams params;
    params.seed = 3;
    DistinctCountSketch sketch(params);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) sketch.update(u.dest, u.source, u.delta);
    rows.push_back({"dcs-basic", verdict(sketch.top_k(1).entries.at(0).group),
                    watch.elapsed_us() / static_cast<double>(updates.size()),
                    static_cast<double>(sketch.memory_bytes()) / 1024.0});
  }
  {
    DcsParams params;
    params.seed = 3;
    TrackingDcs sketch(params);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) sketch.update(u.dest, u.source, u.delta);
    rows.push_back({"dcs-tracking", verdict(sketch.top_k(1).entries.at(0).group),
                    watch.elapsed_us() / static_cast<double>(updates.size()),
                    static_cast<double>(sketch.memory_bytes()) / 1024.0});
  }
  {
    DistinctSampler sampler(4096, 3);
    Stopwatch watch;
    for (const FlowUpdate& u : updates)
      if (u.delta > 0) sampler.update(u.dest, u.source, +1);
    rows.push_back({"distinct-sampler(ins-only)",
                    verdict(sampler.top_k(1).entries.at(0).group),
                    watch.elapsed_us() / static_cast<double>(updates.size()),
                    static_cast<double>(sampler.memory_bytes()) / 1024.0});
  }
  {
    VolumeHeavyHitters volume(4, 8192, 3);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) volume.update(u.dest, u.source, +1);
    rows.push_back({"count-min volume",
                    verdict(volume.top_k(1).entries.at(0).group),
                    watch.elapsed_us() / static_cast<double>(updates.size()),
                    static_cast<double>(volume.memory_bytes()) / 1024.0});
  }
  {
    SpaceSaving saving(4096);
    Stopwatch watch;
    for (const FlowUpdate& u : updates) saving.add(u.dest);
    rows.push_back({"space-saving volume",
                    verdict(saving.top_k(1).at(0).key),
                    watch.elapsed_us() / static_cast<double>(updates.size()),
                    static_cast<double>(saving.memory_bytes()) / 1024.0});
  }
  {
    // Sample-and-hold consumes packets, not updates.
    SampleAndHold sah(100, 8192, 3);
    Stopwatch watch;
    for (const Packet& packet : packets) sah.observe(packet.source, packet.dest);
    const auto dests = sah.top_destinations(1);
    rows.push_back({"sample-and-hold volume",
                    dests.empty() ? "none (wrong)" : verdict(dests[0].group),
                    watch.elapsed_us() / static_cast<double>(packets.size()),
                    static_cast<double>(sah.memory_bytes()) / 1024.0});
  }

  std::printf("# Baseline comparison: flood=%llu spoofed sources vs crowd=%llu clients\n",
              static_cast<unsigned long long>(flood),
              static_cast<unsigned long long>(crowd_size));
  print_row({"method", "top-1 answer", "us/update", "KiB"}, 28);
  for (const Row& row : rows)
    print_row({row.name, row.answer, format_double(row.update_us, 3),
               format_double(row.memory_kib, 0)},
              28);
  return 0;
}
