// dcs_cli — command-line front end for the Distinct-Count Sketch library.
//
// Subcommands:
//   generate  --out trace.bin [--u N] [--d N] [--z SKEW] [--churn N]
//             [--noise N] [--seed N] [--csv]
//       Write a synthetic Zipf flow-update trace (binary, or CSV with --csv).
//
//   info      --trace trace.bin
//       Print update/insert/delete counts and exact distinct statistics.
//
//   topk      --trace trace.bin [--k N] [--r N] [--s N] [--seed N] [--exact]
//             [--batch [--block N]] [--threads N]
//       Stream the trace through a Tracking Distinct-Count Sketch (or the
//       exact tracker with --exact) and print the top-k destinations by
//       distinct-source frequency. --batch ingests through the batched
//       fast path in blocks of --block (default 1024) updates; --threads N
//       ingests through a ConcurrentMonitor with N pipelined stripes fed by
//       N real threads, then answers from a consistent snapshot.
//
//   sketch    --trace trace.bin --out sketch.dcs [--r N] [--s N] [--seed N]
//       Build a basic sketch from a trace and persist it.
//
//   merge     --out merged.dcs sketch1.dcs sketch2.dcs ...
//       Merge persisted sketches (same params/seed) into one.
//
//   query     --sketch sketch.dcs [--k N] [--tau N]
//       Load a persisted sketch and answer a top-k (or threshold) query.
//
//   diff      --base old.dcs --sketch new.dcs [--k N]
//       Subtract an earlier snapshot and report the destinations with the
//       most NEW distinct sources since it was taken (heavy-change query).
//
//   monitor   --trace trace.bin [--interval N] [--min-absolute N]
//             [--factor F] [--by-source] [--alerts-out alerts.json]
//       Replay the trace through the DDoS monitor and print alerts.
//       --alerts-out writes the structured alert event log as JSON.
//
//   Telemetry: `topk` and `monitor` accept
//       --metrics-out <file> [--metrics-format prom|json]
//   to dump a runtime-metrics snapshot (update/query counters, bucket
//   classifications, latency histograms — see docs/OBSERVABILITY.md).
//   `monitor` rewrites the file after every check epoch, so a scraper
//   watching it sees the run progress live.
//
//   convert   --in packets.txt --out trace.bin [--timeout N]
//       Import a text packet log ("timestamp source dest flag" per line;
//       addresses as dotted quads or integers; flag one of S/A/R/F/D) and
//       run it through the handshake-tracking exporter to produce a flow-
//       update trace. --timeout enables SYN-backlog reaping (ticks).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <sstream>

#include "baselines/exact_tracker.hpp"
#include "common/options.hpp"
#include "detection/alert_log.hpp"
#include "detection/ddos_monitor.hpp"
#include "distributed/concurrent_monitor.hpp"
#include "net/exporter.hpp"
#include "obs/export.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"
#include "stream/trace_io.hpp"

namespace {

using namespace dcs;

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: dcs_cli <command> [options]\n"
      "\n"
      "commands: generate convert info topk sketch merge query diff monitor\n"
      "\n"
      "sketch shaping (topk, sketch, merge, query, diff, monitor):\n"
      "  --r N               second-level tables (default 3)\n"
      "  --s N               buckets per table (default 128)\n"
      "  --seed N            hash seed (default 0); sketches only merge/diff\n"
      "                      when built with identical --r/--s/--seed\n"
      "telemetry (topk, monitor):\n"
      "  --metrics-out FILE  write a runtime-metrics snapshot\n"
      "  --metrics-format F  prom|json (default prom)\n"
      "\n"
      "generate --out trace.bin  synthetic Zipf flow-update workload\n"
      "  --u N               distinct (source, dest) pairs (default 1000000)\n"
      "  --d N               distinct destinations (default 50000)\n"
      "  --z F               Zipf skew (default 1.5)\n"
      "  --churn N           extra insert+delete rounds per pair (default 0)\n"
      "  --noise N           net-zero noise pairs (default 0)\n"
      "  --csv               write CSV text instead of the binary format\n"
      "convert --in packets.txt --out trace.bin  import a text packet log\n"
      "  --timeout N         reap half-open entries older than N ticks\n"
      "info --trace trace.bin    trace statistics\n"
      "topk --trace trace.bin    approximate (or --exact) top-k\n"
      "  --k N               entries to print (default 10)\n"
      "  --exact             use the exact tracker instead of the sketch\n"
      "sketch --trace trace.bin --out router0.dcs   persist a sketch\n"
      "merge --out all.dcs a.dcs b.dcs ...          add sketches counter-wise\n"
      "query --sketch all.dcs    query a persisted sketch\n"
      "  --tau N             threshold query instead of top-k\n"
      "diff --base old.dcs --sketch new.dcs   rank by new distinct sources\n"
      "monitor --trace trace.bin  alert replay through the DDoS monitor\n"
      "  --interval N        updates per check epoch (default 2048)\n"
      "  --min-absolute N    detection floor, distinct sources (default 512)\n"
      "  --factor F          alarm factor over baseline (default 8.0)\n"
      "  --by-source         rank sources by distinct destinations\n"
      "  --alerts-out FILE   write the typed alert event log as JSON\n"
      "  --help              print this help\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

/// --metrics-out <file> / --metrics-format {prom,json} (default prom).
/// Inactive (dump() is a no-op) when --metrics-out is absent.
struct MetricsSink {
  std::string path;
  obs::ExportFormat format = obs::ExportFormat::kPrometheus;

  static MetricsSink from(const Options& options) {
    MetricsSink sink;
    sink.path = options.str("metrics-out", "");
    sink.format = obs::parse_format(options.str("metrics-format", "prom"));
    return sink;
  }

  bool active() const { return !path.empty(); }

  void dump() const {
    if (active())
      obs::write_snapshot_file(path, format,
                               obs::Registry::global().snapshot());
  }
};

DcsParams params_from(const Options& options) {
  DcsParams params;
  params.num_tables = static_cast<int>(options.integer("r", 3));
  params.buckets_per_table = static_cast<std::uint32_t>(options.integer("s", 128));
  params.seed = static_cast<std::uint64_t>(options.integer("seed", 0));
  params.validate();
  return params;
}

void print_entries(const std::vector<TopKEntry>& entries) {
  for (std::size_t i = 0; i < entries.size(); ++i)
    std::printf("%2zu  dest=%08x  frequency~%llu\n", i + 1, entries[i].group,
                static_cast<unsigned long long>(entries[i].estimate));
}

int cmd_generate(const Options& options) {
  const std::string out = options.str("out", "");
  if (out.empty()) return usage();
  ZipfWorkloadConfig config;
  config.u_pairs = static_cast<std::uint64_t>(options.integer("u", 1'000'000));
  config.num_destinations =
      static_cast<std::uint32_t>(options.integer("d", 50'000));
  config.skew = options.real("z", 1.5);
  config.churn = static_cast<std::uint32_t>(options.integer("churn", 0));
  config.noise_pairs = static_cast<std::uint64_t>(options.integer("noise", 0));
  config.seed = static_cast<std::uint64_t>(options.integer("seed", 1));
  const ZipfWorkload workload(config);
  if (options.flag("csv")) {
    std::ofstream file(out);
    if (!file) throw SerializeError("cannot open " + out);
    write_trace_csv(file, workload.updates());
  } else {
    write_trace_file(out, workload.updates());
  }
  std::printf("wrote %zu updates (%llu distinct pairs, %u destinations, z=%.2f) to %s\n",
              workload.updates().size(),
              static_cast<unsigned long long>(workload.u_pairs()),
              config.num_destinations, config.skew, out.c_str());
  return 0;
}

int cmd_info(const Options& options) {
  const std::string trace = options.str("trace", "");
  if (trace.empty()) return usage();
  const auto updates = read_trace_file(trace);
  std::uint64_t inserts = 0, deletes = 0;
  ExactTracker exact;
  for (const FlowUpdate& u : updates) {
    (u.delta > 0 ? inserts : deletes)++;
    exact.update(u.dest, u.source, u.delta);
  }
  std::printf("updates: %zu (%llu inserts, %llu deletes)\n", updates.size(),
              static_cast<unsigned long long>(inserts),
              static_cast<unsigned long long>(deletes));
  std::printf("net distinct (source,dest) pairs: %llu\n",
              static_cast<unsigned long long>(exact.distinct_pairs()));
  const auto top = exact.top_k(5).entries;
  std::printf("exact top-%zu destinations:\n", top.size());
  print_entries(top);
  return 0;
}

int cmd_topk(const Options& options) {
  const std::string trace = options.str("trace", "");
  if (trace.empty()) return usage();
  const MetricsSink metrics = MetricsSink::from(options);
  const auto updates = read_trace_file(trace);
  const auto k = static_cast<std::size_t>(options.integer("k", 10));
  if (options.flag("exact")) {
    ExactTracker exact;
    for (const FlowUpdate& u : updates) exact.update(u.dest, u.source, u.delta);
    print_entries(exact.top_k(k).entries);
    metrics.dump();
    return 0;
  }
  if (const auto threads = static_cast<std::size_t>(options.integer("threads", 0));
      threads > 0) {
    // Multi-threaded ingest: one pipelined stripe per thread, each thread
    // feeding a contiguous slice of the trace; the query runs on a
    // consistent merged snapshot (all queues drained, all stripes locked).
    ConcurrentMonitor monitor(params_from(options), threads,
                              /*queue_capacity=*/1024);
    const std::span<const FlowUpdate> all(updates);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (all.size() + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = std::min(t * chunk, all.size());
      const std::size_t end = std::min(begin + chunk, all.size());
      workers.emplace_back([&monitor, slice = all.subspan(begin, end - begin)] {
        for (const FlowUpdate& u : slice)
          monitor.update(u.dest, u.source, u.delta);
      });
    }
    for (std::thread& worker : workers) worker.join();
    const DistinctCountSketch merged = monitor.snapshot();
    std::printf("# threads=%zu stripes=%zu sketch=%.1f KiB (merged snapshot)\n",
                threads, monitor.num_stripes(),
                static_cast<double>(merged.memory_bytes()) / 1024.0);
    print_entries(merged.top_k(k).entries);
    metrics.dump();
    return 0;
  }
  TrackingDcs tracker(params_from(options));
  if (options.flag("batch")) {
    const auto block =
        static_cast<std::size_t>(options.integer("block", 1024));
    if (block == 0) throw std::invalid_argument("--block must be >= 1");
    const std::span<const FlowUpdate> all(updates);
    for (std::size_t i = 0; i < all.size(); i += block)
      tracker.update_batch(all.subspan(i, std::min(block, all.size() - i)));
  } else {
    for (const FlowUpdate& u : updates)
      tracker.update(u.dest, u.source, u.delta);
  }
  const TopKResult result = tracker.top_k(k);
  std::printf("# sample=%llu inference_level=%d sketch=%.1f KiB\n",
              static_cast<unsigned long long>(result.sample_size),
              result.inference_level,
              static_cast<double>(tracker.memory_bytes()) / 1024.0);
  print_entries(result.entries);
  metrics.dump();
  return 0;
}

int cmd_sketch(const Options& options) {
  const std::string trace = options.str("trace", "");
  const std::string out = options.str("out", "");
  if (trace.empty() || out.empty()) return usage();
  const auto updates = read_trace_file(trace);
  DistinctCountSketch sketch(params_from(options));
  for (const FlowUpdate& u : updates) sketch.update(u.dest, u.source, u.delta);
  std::ofstream file(out, std::ios::binary);
  if (!file) throw SerializeError("cannot open " + out);
  BinaryWriter writer(file);
  sketch.serialize(writer);
  std::printf("sketched %zu updates into %s (%.1f KiB)\n", updates.size(),
              out.c_str(), static_cast<double>(sketch.memory_bytes()) / 1024.0);
  return 0;
}

DistinctCountSketch load_sketch(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw SerializeError("cannot open " + path);
  BinaryReader reader(file);
  return DistinctCountSketch::deserialize(reader);
}

int cmd_merge(const Options& options, const std::vector<std::string>& inputs) {
  const std::string out = options.str("out", "");
  if (out.empty() || inputs.empty()) return usage();
  DistinctCountSketch merged = load_sketch(inputs.front());
  for (std::size_t i = 1; i < inputs.size(); ++i)
    merged.merge(load_sketch(inputs[i]));
  std::ofstream file(out, std::ios::binary);
  if (!file) throw SerializeError("cannot open " + out);
  BinaryWriter writer(file);
  merged.serialize(writer);
  std::printf("merged %zu sketches into %s\n", inputs.size(), out.c_str());
  return 0;
}

int cmd_query(const Options& options) {
  const std::string path = options.str("sketch", "");
  if (path.empty()) return usage();
  const DistinctCountSketch sketch = load_sketch(path);
  if (const auto tau = options.raw("tau")) {
    const auto entries = sketch.groups_above(std::stoull(*tau));
    std::printf("# %zu destinations with frequency >= %s\n", entries.size(),
                tau->c_str());
    print_entries(entries);
    return 0;
  }
  const auto k = static_cast<std::size_t>(options.integer("k", 10));
  print_entries(sketch.top_k(k).entries);
  return 0;
}

int cmd_diff(const Options& options) {
  const std::string base_path = options.str("base", "");
  const std::string sketch_path = options.str("sketch", "");
  if (base_path.empty() || sketch_path.empty()) return usage();
  DistinctCountSketch current = load_sketch(sketch_path);
  current.subtract(load_sketch(base_path));
  const auto k = static_cast<std::size_t>(options.integer("k", 10));
  std::printf("# destinations by NEW distinct sources since the base snapshot\n");
  print_entries(current.top_k(k).entries);
  return 0;
}

Addr parse_address(const std::string& token) {
  if (token.find('.') == std::string::npos)
    return static_cast<Addr>(std::stoul(token));
  // Dotted quad.
  Addr value = 0;
  std::size_t start = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const std::size_t dot = token.find('.', start);
    const std::string part = token.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    const unsigned long parsed = std::stoul(part);
    if (parsed > 255) throw std::invalid_argument("bad octet: " + token);
    value = (value << 8) | static_cast<Addr>(parsed);
    if (dot == std::string::npos) {
      if (octet != 3) throw std::invalid_argument("bad address: " + token);
      break;
    }
    start = dot + 1;
  }
  return value;
}

int cmd_convert(const Options& options) {
  const std::string in_path = options.str("in", "");
  const std::string out_path = options.str("out", "");
  if (in_path.empty() || out_path.empty()) return usage();
  std::ifstream in(in_path);
  if (!in) throw SerializeError("cannot open " + in_path);

  const auto timeout = static_cast<std::uint64_t>(options.integer("timeout", 0));
  FlowUpdateExporter exporter(1000, timeout);
  std::vector<FlowUpdate> updates;
  std::string line;
  std::uint64_t line_number = 0, packets = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::uint64_t timestamp;
    std::string source, dest, flag;
    if (!(row >> timestamp >> source >> dest >> flag))
      throw std::invalid_argument("line " + std::to_string(line_number) +
                                  ": expected 'timestamp source dest flag'");
    Packet packet;
    packet.timestamp = timestamp;
    packet.source = parse_address(source);
    packet.dest = parse_address(dest);
    switch (flag.empty() ? '?' : flag[0]) {
      case 'S': packet.type = PacketType::kSyn; break;
      case 'A': packet.type = PacketType::kAck; break;
      case 'R': packet.type = PacketType::kRst; break;
      case 'F': packet.type = PacketType::kFin; break;
      case 'D': packet.type = PacketType::kData; break;
      default:
        throw std::invalid_argument("line " + std::to_string(line_number) +
                                    ": unknown flag '" + flag + "'");
    }
    ++packets;
    exporter.observe(packet,
                     [&updates](const FlowUpdate& u) { updates.push_back(u); });
  }
  // Close the trailing partial SYN/FIN interval so its counts are not lost
  // (observe() only rolls intervals when a later-interval packet arrives).
  exporter.finish_interval();
  write_trace_file(out_path, updates);
  std::printf("converted %llu packets into %zu flow updates -> %s\n",
              static_cast<unsigned long long>(packets), updates.size(),
              out_path.c_str());
  return 0;
}

int cmd_monitor(const Options& options) {
  const std::string trace = options.str("trace", "");
  if (trace.empty()) return usage();
  const MetricsSink metrics = MetricsSink::from(options);
  const std::string alerts_out = options.str("alerts-out", "");
  const std::string role = options.flag("by-source") ? "source" : "dest";
  const auto updates = read_trace_file(trace);
  DdosMonitorConfig config;
  config.sketch = params_from(options);
  config.check_interval =
      static_cast<std::uint64_t>(options.integer("interval", 2048));
  config.min_absolute =
      static_cast<std::uint64_t>(options.integer("min-absolute", 512));
  config.alarm_factor = options.real("factor", 8.0);
  if (options.flag("by-source"))
    config.rank_by = DdosMonitorConfig::RankBy::kSource;
  DdosMonitor monitor(config);
  // Refresh the snapshot file at every check epoch: a collector watching the
  // file sees counters and latency histograms advance while the replay runs.
  if (metrics.active())
    monitor.set_check_callback(
        [&metrics](const DdosMonitor&) { metrics.dump(); });
  monitor.ingest(updates);
  monitor.check_now();
  for (const Alert& alert : monitor.alerts())
    std::printf("%s\n", format_alert(alert, role).c_str());
  std::printf("%zu alerts, %zu active alarms after %zu updates (%llu checks)\n",
              monitor.alerts().size(), monitor.active_alarms().size(),
              updates.size(),
              static_cast<unsigned long long>(monitor.checks_run()));
  if (!alerts_out.empty()) write_alerts_json(alerts_out, monitor.alerts(), role);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help") {
    print_usage(stdout);
    return 0;
  }
  const dcs::Options options(argc - 1, argv + 1);
  // Positional arguments (for merge): everything not starting with "--" and
  // not a flag value.
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      // Skip the flag's value if it has one.
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
          std::strncmp(argv[i + 1], "--", 2) != 0)
        ++i;
      continue;
    }
    positional.emplace_back(argv[i]);
  }

  try {
    if (command == "generate") return cmd_generate(options);
    if (command == "info") return cmd_info(options);
    if (command == "topk") return cmd_topk(options);
    if (command == "sketch") return cmd_sketch(options);
    if (command == "merge") return cmd_merge(options, positional);
    if (command == "query") return cmd_query(options);
    if (command == "diff") return cmd_diff(options);
    if (command == "monitor") return cmd_monitor(options);
    if (command == "convert") return cmd_convert(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_cli %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  return usage();
}
