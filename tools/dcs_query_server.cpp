// dcs_query_server — snapshot-serving read tier for dcs_collector.
//
// Points at the --publish-dir a collector writes query snapshots into,
// maps every valid generation into immutable in-memory state, and serves
// dashboard reads over HTTP/JSON without ever touching the collector:
//
//   /topk[?k=N]      /frequency?key=K   /distinct_pairs
//   /alerts          /sites             /generations
//   /healthz         /metrics           /metrics.json
//
// Every snapshot route accepts ?generation=G or ?epoch<=E for time
// travel across the retained generations. Answers are rendered from the
// rebuilt sketch state, so they are bit-identical to what the source
// collector would have answered at the published epoch watermark; hot
// answers are cached keyed by (generation, route+query).
//
//   dcs_query_server --publish-dir DIR [--port N] [--bind ADDR]
//                    [--port-file FILE] [--watch-every-ms N]
//                    [--cache-entries N] [--run-ms N]
//                    [--metrics-out FILE] [--metrics-format prom|json]
//
// The directory watcher polls every --watch-every-ms for new or pruned
// generations; corrupt or torn snapshot files are counted
// (dcs_query_reload_errors_total) and skipped, never fatal. --run-ms
// bounds the lifetime for scripted runs (0 = run until SIGINT/SIGTERM).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "common/options.hpp"
#include "obs/export.hpp"
#include "query/server.hpp"

namespace {

using namespace dcs;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

void print_usage() {
  std::printf(
      "usage: dcs_query_server --publish-dir DIR [options]\n"
      "  --publish-dir DIR     snapshot directory written by a\n"
      "                        dcs_collector --publish-dir (required)\n"
      "  --port N              HTTP port to bind (0 = ephemeral; default 0)\n"
      "  --bind ADDR           bind address (default 127.0.0.1)\n"
      "  --port-file FILE      atomically publish the bound port to FILE\n"
      "  --watch-every-ms N    directory poll interval (default 200)\n"
      "  --cache-entries N     response-cache capacity (default 256)\n"
      "  --run-ms N            exit after N ms (0 = until SIGINT/SIGTERM;\n"
      "                        default 0)\n"
      "  --stop-file FILE      also exit once FILE exists (scripted runs)\n"
      "  --metrics-out FILE    write a metrics snapshot on exit\n"
      "  --metrics-format F    prom|json (default prom)\n"
      "  --help                print this help\n");
}

void publish_port(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Options options(argc, argv);
  if (options.flag("help")) {
    print_usage();
    return 0;
  }

  query::QueryServerConfig config;
  config.publish_dir = options.str("publish-dir", "");
  if (config.publish_dir.empty()) {
    std::fprintf(stderr, "dcs_query_server: --publish-dir is required\n");
    print_usage();
    return 1;
  }
  config.watch_every_ms =
      static_cast<int>(options.integer("watch-every-ms", 200));
  config.cache_entries =
      static_cast<std::size_t>(options.integer("cache-entries", 256));
  config.http.bind_address = options.str("bind", "127.0.0.1");
  config.http.port = static_cast<std::uint16_t>(options.integer("port", 0));

  const auto run_ms = options.integer("run-ms", 0);
  const std::string stop_file = options.str("stop-file", "");

  try {
    query::QueryServer server(std::move(config));
    server.start();
    std::printf("serving queries on %s:%u (%zu generations mapped)\n",
                options.str("bind", "127.0.0.1").c_str(), server.port(),
                server.engine().loaded_generations().size());
    std::fflush(stdout);
    const std::string port_file = options.str("port-file", "");
    if (!port_file.empty()) publish_port(port_file, server.port());

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(run_ms);
    while (!g_stop.load()) {
      if (run_ms > 0 && std::chrono::steady_clock::now() >= deadline) break;
      if (!stop_file.empty() && std::ifstream(stop_file).good()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    server.stop();

    std::printf("generations=%zu cache_entries=%zu\n",
                server.engine().loaded_generations().size(),
                server.engine().cache_size());

    const std::string metrics_out = options.str("metrics-out", "");
    if (!metrics_out.empty())
      obs::write_snapshot_file(
          metrics_out, obs::parse_format(options.str("metrics-format", "prom")),
          obs::Registry::global().snapshot());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_query_server: %s\n", error.what());
    return 1;
  }
}
