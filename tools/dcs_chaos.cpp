// dcs_chaos — deterministic overload/fault soak driver for the collector.
//
// Runs one in-process Collector with tight overload limits, N real
// SiteAgents shipping seeded Zipf workloads over real loopback sockets,
// and a set of hostile raw connections exercising the fault profiles the
// overload layer exists for:
//
//   slow-loris   dribbles one byte of a frame per interval forever —
//                must hit the frame deadline and be dropped
//   stall        connects and never sends — must be idle-reaped
//   oversized    announces a frame payload above the receive cap — must be
//                rejected at the header, before any payload is buffered
//   burst        the agents themselves: shipping faster than the per-site
//                token bucket admits, so deltas are shed (NACKed) and
//                re-shipped — honest backpressure under overload
//
// The run is an asserting harness, not a demo: it samples the in-flight
// bytes gauge and the state-lock wait the whole time, and after the faults
// clear it checks the merged sketch is *bit-for-bit* equal to a reference
// built by ingesting every site's workload into one local sketch — sketch
// linearity means overload may delay epochs but must never lose, duplicate,
// or reorder-corrupt them. Exit 0 iff every assertion holds.
//
//   dcs_chaos [--sites N] [--u N] [--epoch-updates N] [--seed N]
//             [--budget N] [--site-rate R] [--site-burst N]
//             [--frame-deadline-ms N] [--idle-timeout-ms N]
//             [--loris N] [--stall N] [--oversize N] [--drain-ms N]
//             [--reactor] [--reactor-workers N]
//             [--verbose] [--help]
//
// With --reactor the same soak runs against the epoll reactor ingest path
// instead of thread-per-connection; every assertion is identical, which is
// the point — the overload defenses are transport-independent.
//
// A third mode, --federation, runs the two-tier federation soak that is
// the acceptance oracle for docs/FEDERATION.md: one root, --leaves leaf
// collectors (each a full Collector with a journal and a root uplink), a
// Maglev shard map distributed through the wire, and --sites agents homed
// by that map. Mid-stream the soak SIGKILL-equivalently destroys the leaf
// owning site 1 — a leaf whose uplink was deliberately black-holed, so its
// journal holds epochs the root has never seen — reshards the survivors to
// a v2 map, lets the agents re-home themselves through the seed leaf, then
// restarts the killed leaf against the real root to drain its journal.
// Asserts: the root's merged sketch and top-k are bit-identical to a
// single-sketch reference over every site's full workload, the root's
// pending-gap ledger is empty, at least one gap was filled by the drain, at
// least one agent re-homed, and no epoch was lost or double-merged
// anywhere.
//
// A second mode, --churn-peers P, skips the fault soak and instead runs a
// concurrency/churn differential: a threaded collector is loaded with P/10
// simultaneously-connected raw peers, then a reactor collector with the
// full P, and each population ships an epoch, vanishes abruptly (no Bye),
// reconnects, and ships a second epoch. Asserts the reactor actually held
// >=10x the threaded concurrent-connection count, every epoch merged
// exactly once across the churn, and the merged sketch equals a local
// reference bit-for-bit.
//
// Everything is seeded and bounded, so the chaos_smoke ctest runs it as-is;
// raise --sites/--u (or --churn-peers) for a longer soak.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/bench_report.hpp"
#include "common/options.hpp"
#include "obs/trace.hpp"
#include "service/agent.hpp"
#include "service/collector.hpp"
#include "service/federation/leaf.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "stream/generator.hpp"

namespace {

using namespace dcs;
using namespace dcs::service;
using Clock = std::chrono::steady_clock;

void print_usage() {
  std::printf(
      "usage: dcs_chaos [options]\n"
      "  --sites N            real site agents (default 4)\n"
      "  --u N                workload update pairs per site (default 20000)\n"
      "  --epoch-updates N    updates per sealed epoch (default 500)\n"
      "  --seed N             base seed; site i uses seed+i (default 42)\n"
      "  --budget N           admission in-flight byte budget (default 16 MiB)\n"
      "  --site-rate R        per-site admissions/sec (default 15)\n"
      "  --site-burst N       per-site burst depth (default 4)\n"
      "  --frame-deadline-ms N  slow-loris deadline (default 250)\n"
      "  --idle-timeout-ms N  idle reap timeout (default 600)\n"
      "  --loris N            slow-loris connections (default 2)\n"
      "  --stall N            stalled connections (default 2)\n"
      "  --oversize N         oversized-frame connections (default 2)\n"
      "  --drain-ms N         post-fault drain budget (default 60000)\n"
      "  --reactor            soak the epoll reactor ingest path instead of\n"
      "                       thread-per-connection\n"
      "  --reactor-workers N  reactor worker threads (default 2)\n"
      "  --churn-peers P      run the connect/churn differential instead of\n"
      "                       the fault soak: threaded at P/10 concurrent\n"
      "                       peers vs reactor at P (default 0 = off)\n"
      "  --federation         run the two-tier federation soak instead of\n"
      "                       the fault soak: leaf kill + reshard + journal\n"
      "                       drain, asserting bit-for-bit root convergence\n"
      "  --leaves N           federation leaf collectors (default 3, min 3)\n"
      "  --fed-dir DIR        leaf state directories for the federation\n"
      "                       soak (default: a fresh dir under /tmp)\n"
      "  --json-dir DIR       also write a BENCH json report into DIR\n"
      "  --run-id ID          run id for the json report (default: DCS_RUN_ID\n"
      "                       env, else today's date)\n"
      "  --verbose            print per-phase progress\n"
      "  --help               print this help\n");
}

DcsParams chaos_params(std::uint64_t seed) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = seed;
  return params;
}

std::vector<FlowUpdate> site_workload(std::uint64_t site, std::uint64_t u,
                                      std::uint64_t base_seed) {
  ZipfWorkloadConfig config;
  config.u_pairs = u;
  config.num_destinations = 40;
  config.skew = 1.3;
  config.seed = base_seed + site;
  return ZipfWorkload(config).updates();
}

std::string serialize_sketch(const DistinctCountSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  sketch.serialize(writer);
  return std::move(out).str();
}

int failures = 0;

void expect(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "dcs_chaos: FAIL %s\n", what);
}

/// Dribble a frame one byte at a time so the deadline — not the byte
/// count — is what kills us. A well-formed Hello frame is used so only
/// pacing, never content, triggers the drop.
void run_slow_loris(std::uint16_t port, std::atomic<bool>& active) {
  auto socket = tcp_connect("127.0.0.1", port, 1000);
  if (!socket) return;
  socket->set_timeouts(200, 200);
  Hello hello;
  hello.site_id = 900;
  const std::string frame = encode_frame(MsgType::kHello, hello.encode());
  for (std::size_t i = 0; i < frame.size() && active.load(); ++i) {
    if (!socket->send_all(frame.data() + i, 1)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // Detect the collector dropping us: a FIN turns recv into closed.
    char c;
    const RecvResult got = socket->recv_some(&c, 1);
    if (got.closed || got.error) return;
  }
}

/// Connect and never speak; the idle reaper must shed us.
void run_stall(std::uint16_t port, std::atomic<bool>& active) {
  auto socket = tcp_connect("127.0.0.1", port, 1000);
  if (!socket) return;
  socket->set_timeouts(200, 200);
  while (active.load()) {
    char c;
    const RecvResult got = socket->recv_some(&c, 1);
    if (got.closed || got.error) return;
  }
}

/// Announce a payload above the collector's receive cap (but inside the
/// protocol-wide 64 MiB cap, so only the per-collector limit rejects it).
/// The collector must kill the connection at the header — long before the
/// announced bytes could be buffered.
void run_oversize(std::uint16_t port, std::uint32_t announce) {
  auto socket = tcp_connect("127.0.0.1", port, 1000);
  if (!socket) return;
  socket->set_timeouts(1000, 1000);
  std::string header;
  const auto put_u32 = [&header](std::uint32_t v) {
    header.append(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_u32(kWireMagic);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(MsgType::kSnapshotDelta));
  put_u32(announce);
  socket->send_all(header);
  char c;
  while (true) {
    const RecvResult got = socket->recv_some(&c, 1);
    if (got.closed || got.error) return;  // dropped, as required
    if (got.timed_out) return;
  }
}

// --- churn differential ------------------------------------------------------

/// One raw protocol peer for the churn mode: a socket plus the decoder
/// needed to read acks back. Destroying it without a Bye is the "abrupt
/// disconnect" half of the churn.
struct ChurnPeer {
  std::optional<TcpSocket> socket;
  FrameDecoder decoder;
  char buffer[2048];

  bool connect_and_hello(std::uint16_t port, const DcsParams& params,
                         std::uint64_t site, std::uint64_t first_epoch) {
    socket = tcp_connect("127.0.0.1", port, 5000);
    if (!socket) return false;
    socket->set_timeouts(10000, 10000);
    Hello hello;
    hello.site_id = site;
    hello.params_fingerprint = params.fingerprint();
    hello.first_epoch = first_epoch;
    if (!socket->send_all(encode_frame(MsgType::kHello, hello.encode())))
      return false;
    const auto ack = read_ack();
    return ack.has_value() && ack->status == AckStatus::kOk;
  }

  std::optional<Ack> read_ack() {
    for (;;) {
      if (auto frame = decoder.next()) {
        if (frame->type != MsgType::kAck) return std::nullopt;
        return Ack::decode(frame->payload, frame->version);
      }
      const RecvResult got = socket->recv_some(buffer, sizeof buffer);
      if (got.bytes == 0) return std::nullopt;
      decoder.feed(buffer, got.bytes);
    }
  }
};

/// The deterministic single-update epoch every churn peer ships; the local
/// reference replays the identical updates, so the merged sketch must match
/// bit-for-bit if — and only if — each epoch merged exactly once.
void churn_update(std::uint64_t site, std::uint64_t epoch, Addr& dest,
                  Addr& source) {
  dest = static_cast<Addr>(site % 131);
  source = static_cast<Addr>(site * 1000 + epoch);
}

std::string churn_delta_frame(const DcsParams& params, std::uint64_t site,
                              std::uint64_t epoch) {
  DistinctCountSketch sketch(params);
  Addr dest = 0, source = 0;
  churn_update(site, epoch, dest, source);
  sketch.update(dest, source, +1);
  SnapshotDelta delta;
  delta.site_id = site;
  delta.epoch = epoch;
  delta.updates = 1;
  delta.sketch_blob = serialize_sketch(sketch);
  return encode_frame(MsgType::kSnapshotDelta, delta.encode());
}

struct ChurnResult {
  std::size_t peak_connections = 0;
  double connect_ms = 0.0;
  bool ok = false;
};

/// Drive one collector mode through the full churn: connect P peers at
/// once, ship epoch 1, vanish without Bye, reconnect, ship epoch 2, part
/// cleanly. Every exactly-once and accounting invariant is asserted against
/// the same expectations in both modes.
ChurnResult run_churn_mode(bool use_reactor, int reactor_workers,
                           std::size_t peers, const DcsParams& params,
                           int drain_ms, bool verbose) {
  ChurnResult result;
  const char* mode = use_reactor ? "reactor" : "threaded";

  CollectorConfig config;
  config.params = params;
  config.io_timeout_ms = 25;
  config.run_detection = false;  // pure ingest/connection stress
  config.idle_timeout_ms = drain_ms;  // peers idle while the tail connects
  config.frame_deadline_ms = drain_ms;
  config.use_reactor = use_reactor;
  config.reactor_workers = reactor_workers;
  Collector collector(config);
  collector.start();
  const std::uint16_t port = collector.port();

  // Phase 1: every peer connected and helloed simultaneously.
  const auto connect_start = Clock::now();
  std::vector<std::unique_ptr<ChurnPeer>> population;
  population.reserve(peers);
  for (std::uint64_t site = 1; site <= peers; ++site) {
    auto peer = std::make_unique<ChurnPeer>();
    if (!peer->connect_and_hello(port, params, site, 1)) {
      std::fprintf(stderr, "dcs_chaos: [%s] peer %llu failed to hello\n",
                   mode, static_cast<unsigned long long>(site));
      ++failures;
      collector.stop();
      return result;
    }
    population.push_back(std::move(peer));
  }
  result.connect_ms =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - connect_start)
                              .count()) /
      1e6;
  result.peak_connections = collector.connection_count();
  expect(result.peak_connections >= peers,
         "every churn peer was connected simultaneously");
  if (verbose)
    std::printf("[%s] %zu peers connected in %.1f ms (live=%zu)\n", mode,
                peers, result.connect_ms, result.peak_connections);

  // Phase 2: each peer ships its first epoch and sees it acked.
  for (std::uint64_t site = 1; site <= peers; ++site) {
    ChurnPeer& peer = *population[site - 1];
    if (!peer.socket->send_all(churn_delta_frame(params, site, 1))) {
      expect(false, "epoch-1 delta send");
      break;
    }
    const auto ack = peer.read_ack();
    if (!ack || ack->status != AckStatus::kOk || ack->epoch != 1) {
      expect(false, "epoch-1 delta acked kOk");
      break;
    }
  }

  // Phase 3: the whole population vanishes abruptly — no Bye, just FIN.
  population.clear();
  const auto gone_deadline = Clock::now() + std::chrono::milliseconds(drain_ms);
  while (collector.connection_count() > 0 && Clock::now() < gone_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  expect(collector.connection_count() == 0,
         "abruptly-disconnected peers were all reaped");

  // Phase 4: everyone reconnects where they left off and ships epoch 2,
  // this time parting with a clean Bye.
  for (std::uint64_t site = 1; site <= peers; ++site) {
    ChurnPeer peer;
    if (!peer.connect_and_hello(port, params, site, /*first_epoch=*/2)) {
      expect(false, "reconnect hello acked kOk");
      break;
    }
    if (!peer.socket->send_all(churn_delta_frame(params, site, 2))) {
      expect(false, "epoch-2 delta send");
      break;
    }
    const auto ack = peer.read_ack();
    if (!ack || ack->status != AckStatus::kOk || ack->epoch != 2) {
      expect(false, "epoch-2 delta acked kOk");
      break;
    }
    Bye bye;
    bye.site_id = site;
    peer.socket->send_all(encode_frame(MsgType::kBye, bye.encode()));
  }

  // Exactly-once across the churn: 2 epochs per peer, nothing dropped,
  // nothing double-merged, and the sketch equals the local replay.
  expect(collector.wait_for_deltas(2 * peers, drain_ms),
         "both churn epochs merged for every peer");
  const auto stats = collector.stats();
  const auto merged = collector.merged_sketch();
  collector.stop();

  expect(stats.deltas_merged == 2 * peers,
         "deltas_merged == 2 * peers exactly");
  expect(stats.duplicate_deltas == 0, "churn produced no duplicate merges");
  expect(stats.dropped_epochs == 0, "churn produced no gap epochs");

  DistinctCountSketch reference(params);
  for (std::uint64_t site = 1; site <= peers; ++site)
    for (std::uint64_t epoch = 1; epoch <= 2; ++epoch) {
      Addr dest = 0, source = 0;
      churn_update(site, epoch, dest, source);
      reference.update(dest, source, +1);
    }
  expect(serialize_sketch(merged) == serialize_sketch(reference),
         "churn-merged sketch equals the local reference bit-for-bit");

  result.ok = failures == 0;
  return result;
}

/// The --churn-peers entry point: threaded at P/10, reactor at P, then the
/// headline assertion — the reactor demonstrably held >=10x the threaded
/// mode's concurrent-agent count while preserving every merge invariant.
int run_churn(std::size_t peers, int reactor_workers, std::uint64_t seed,
              int drain_ms, bool verbose) {
  const DcsParams params = chaos_params(seed);
  const std::size_t threaded_peers = std::max<std::size_t>(1, peers / 10);

  const ChurnResult threaded = run_churn_mode(
      /*use_reactor=*/false, reactor_workers, threaded_peers, params,
      drain_ms, verbose);
  const ChurnResult reactor = run_churn_mode(
      /*use_reactor=*/true, reactor_workers, peers, params, drain_ms,
      verbose);

  std::printf(
      "churn: threaded_peers=%zu threaded_peak=%zu threaded_connect_ms=%.1f "
      "reactor_peers=%zu reactor_peak=%zu reactor_connect_ms=%.1f\n",
      threaded_peers, threaded.peak_connections, threaded.connect_ms, peers,
      reactor.peak_connections, reactor.connect_ms);

  expect(threaded.ok, "threaded churn preserved every invariant");
  expect(reactor.ok, "reactor churn preserved every invariant");
  expect(reactor.peak_connections >= 10 * threaded.peak_connections,
         "reactor sustained >=10x the threaded concurrent-agent count");

  if (failures == 0) {
    std::printf("dcs_chaos: OK\n");
    return 0;
  }
  std::fprintf(stderr, "dcs_chaos: %d assertion(s) failed\n", failures);
  return 1;
}

// --- federation soak ---------------------------------------------------------

/// The --federation entry point: the two-tier leaf-kill/reshard/drain soak
/// documented in docs/FEDERATION.md. Deterministic by construction — the
/// victim leaf's uplink is black-holed from the start, so the set of epochs
/// only its journal holds (and therefore the gaps the root must fill) is
/// decided by the shard map, not by thread timing.
int run_federation(std::uint64_t sites, std::uint64_t u,
                   std::uint64_t epoch_updates, std::uint64_t seed,
                   std::size_t leaf_count, std::string fed_dir, int drain_ms,
                   bool verbose) {
  const DcsParams params = chaos_params(seed);
  if (leaf_count < 3) leaf_count = 3;  // need >=2 survivors for the re-home
  if (sites < 2) sites = 2;

  const bool default_dir = fed_dir.empty();
  if (default_dir)
    fed_dir = (std::filesystem::temp_directory_path() /
               ("dcs_fed_soak." + std::to_string(::getpid())))
                  .string();
  std::filesystem::create_directories(fed_dir);

  // Leaf ids live at 1000+N so the root's single (site | leaf) accounting
  // namespace can be filtered back to real sites in the assertions below.
  std::vector<std::uint64_t> leaf_ids;
  for (std::size_t i = 0; i < leaf_count; ++i)
    leaf_ids.push_back(1001 + i);

  // leaf_for() is a pure function of the leaf-id set and table size — the
  // endpoints never enter the hash — so the victim (the leaf owning site 1)
  // is known before any socket exists. Its uplink is pointed at a dead port,
  // so every epoch it acks in phase 1 exists only in its journal: the
  // deterministic source of the root-side gaps this soak exists to fill.
  std::vector<LeafEndpoint> prov;
  for (const std::uint64_t id : leaf_ids)
    prov.push_back(LeafEndpoint{id, "127.0.0.1", 1});
  const std::uint64_t victim_id = ShardMap::build(1, prov).leaf_for(1);

  // The seed leaf (the agents' --host/--port bootstrap fallback) is chosen
  // to NOT own site 1 under the post-reshard v2 map, so site 1's re-home
  // deterministically crosses a kWrongShard bounce: dead v1 owner -> seed
  // -> kWrongShard + v2 map -> the real v2 owner.
  std::vector<LeafEndpoint> prov2;
  for (const std::uint64_t id : leaf_ids)
    if (id != victim_id) prov2.push_back(LeafEndpoint{id, "127.0.0.1", 1});
  const std::uint64_t v2_owner_of_site1 = ShardMap::build(2, prov2).leaf_for(1);
  std::uint64_t seed_leaf_id = 0;
  for (const std::uint64_t id : leaf_ids)
    if (id != victim_id && id != v2_owner_of_site1) {
      seed_leaf_id = id;
      break;
    }

  try {
    CollectorConfig root_config;
    root_config.params = params;
    root_config.federation_root = true;
    root_config.run_detection = false;
    root_config.io_timeout_ms = 25;
    Collector root(root_config);
    root.start();
    const std::uint16_t root_port = root.port();
    if (verbose)
      std::printf("[fed] root on 127.0.0.1:%u, victim leaf %llu, seed leaf "
                  "%llu\n",
                  root_port, static_cast<unsigned long long>(victim_id),
                  static_cast<unsigned long long>(seed_leaf_id));

    const auto leaf_config = [&](std::uint64_t id, bool black_hole) {
      LeafCollectorConfig lc;
      lc.collector.params = params;
      lc.collector.io_timeout_ms = 25;
      lc.collector.run_detection = false;
      lc.collector.leaf_id = id;
      lc.collector.state_dir = fed_dir + "/leaf_" + std::to_string(id);
      lc.collector.checkpoint_every = 8;  // exercise the checkpoint gate
      lc.root_host = "127.0.0.1";
      // Port 1 never listens: the victim's relays connect-refuse forever
      // while its agents are acked normally off the fsync'd journal.
      lc.root_port = black_hole ? 1 : root_port;
      return lc;
    };

    std::vector<std::unique_ptr<LeafCollector>> leaves;
    std::vector<LeafEndpoint> endpoints;
    std::size_t victim_index = 0;
    for (std::size_t i = 0; i < leaf_count; ++i) {
      const std::uint64_t id = leaf_ids[i];
      leaves.push_back(std::make_unique<LeafCollector>(
          leaf_config(id, /*black_hole=*/id == victim_id)));
      leaves.back()->start();
      endpoints.push_back(
          LeafEndpoint{id, "127.0.0.1", leaves.back()->collector().port()});
      if (id == victim_id) victim_index = i;
    }
    const ShardMap map_v1 = ShardMap::build(1, endpoints);
    for (auto& leaf : leaves) leaf->set_shard_map(map_v1);
    std::uint16_t seed_port = 0;
    for (const LeafEndpoint& endpoint : endpoints)
      if (endpoint.leaf_id == seed_leaf_id) seed_port = endpoint.port;

    std::vector<std::vector<FlowUpdate>> workloads;
    for (std::uint64_t site = 1; site <= sites; ++site)
      workloads.push_back(site_workload(site, u, seed));

    std::vector<std::unique_ptr<SiteAgent>> agents;
    for (std::uint64_t site = 1; site <= sites; ++site) {
      SiteAgentConfig agent_config;
      agent_config.site_id = site;
      agent_config.collector_host = "127.0.0.1";
      agent_config.collector_port = seed_port;
      agent_config.params = params;
      agent_config.epoch_updates = epoch_updates;
      agent_config.spool_epochs = 1 << 14;
      agent_config.backoff_initial_ms = 10;
      agent_config.backoff_max_ms = 100;
      agent_config.heartbeat_interval_ms = 100;
      agent_config.io_timeout_ms = 2000;
      agent_config.jitter_seed = seed + site;
      agent_config.shard_map = map_v1;
      agents.push_back(std::make_unique<SiteAgent>(agent_config));
      agents.back()->start();
    }

    // Phase 1: first half of every workload, acked by the v1 owners.
    for (std::uint64_t site = 1; site <= sites; ++site) {
      const auto& workload = workloads[site - 1];
      for (std::size_t j = 0; j < workload.size() / 2; ++j)
        agents[site - 1]->ingest(workload[j]);
    }
    bool phase1_drained = true;
    for (auto& agent : agents) phase1_drained &= agent->flush(drain_ms);
    expect(phase1_drained, "phase-1 spools drained against the v1 owners");
    expect(leaves[victim_index]->collector().stats().deltas_merged > 0,
           "the victim leaf owned and merged phase-1 epochs");
    expect(leaves[victim_index]->uplink().stats().spool_depth > 0,
           "the black-holed uplink is holding the victim's relays");
    if (verbose)
      std::printf("[fed] phase 1 done; victim holds %zu journaled-only "
                  "deltas\n",
                  leaves[victim_index]->uplink().stats().spool_depth);

    // Kill: destroy the victim outright — connections die mid-stream, no
    // Bye, no uplink drain. The checkpoint gate saw an undrained spool, so
    // the journal survives intact for the drain-restart below.
    leaves[victim_index].reset();

    // Reshard: v2 over the survivors only.
    std::vector<LeafEndpoint> survivors;
    for (const LeafEndpoint& endpoint : endpoints)
      if (endpoint.leaf_id != victim_id) survivors.push_back(endpoint);
    const ShardMap map_v2 = ShardMap::build(2, survivors);
    for (auto& leaf : leaves)
      if (leaf) leaf->set_shard_map(map_v2);
    if (verbose)
      std::printf("[fed] victim killed; survivors resharded to v2\n");

    // Phase 2: the rest of every workload. Orphaned agents re-home through
    // the seed leaf on their own (dead connects -> seed fallback ->
    // kWrongShard carrying the v2 map -> the new owner), keeping their
    // spools across every bounce.
    for (std::uint64_t site = 1; site <= sites; ++site) {
      const auto& workload = workloads[site - 1];
      for (std::size_t j = workload.size() / 2; j < workload.size(); ++j)
        agents[site - 1]->ingest(workload[j]);
    }
    bool phase2_drained = true;
    for (auto& agent : agents) phase2_drained &= agent->flush(drain_ms);
    expect(phase2_drained, "phase-2 spools drained after the re-home");

    // Push the survivors' relays through, then probe the gap ledger: the
    // re-homed sites' phase-2 epochs arrived above a watermark the root
    // never advanced, so their phase-1 epochs must be recorded as pending
    // gaps — awaited, not dropped.
    for (auto& leaf : leaves)
      if (leaf)
        expect(leaf->uplink().flush(drain_ms),
               "survivor uplinks drained to the root");
    expect(root.stats().pending_gap_epochs > 0,
           "root recorded the victim's journaled epochs as pending gaps");
    if (verbose)
      std::printf("[fed] root awaiting %llu gap epochs; restarting victim "
                  "against the real root\n",
                  static_cast<unsigned long long>(
                      root.stats().pending_gap_epochs));

    // Drain-restart: same state_dir, real root port this time. Recovery
    // replays the journal through the delta tap, the uplink re-offers every
    // record, and the root fills its gaps exactly once.
    leaves[victim_index] = std::make_unique<LeafCollector>(
        leaf_config(victim_id, /*black_hole=*/false));
    leaves[victim_index]->set_shard_map(map_v2);
    leaves[victim_index]->start();
    expect(leaves[victim_index]->uplink().flush(drain_ms),
           "restarted victim drained its journal to the root");
    expect(leaves[victim_index]->uplink().stats().root_acks > 0,
           "the journal drain actually shipped records");

    // Final accounting.
    std::uint64_t total_sealed = 0;
    std::uint64_t total_rehomes = 0;
    std::vector<std::uint64_t> sealed_by_site(sites, 0);
    for (std::uint64_t site = 1; site <= sites; ++site) {
      agents[site - 1]->stop(drain_ms);
      const auto agent_stats = agents[site - 1]->stats();
      total_sealed += agent_stats.epochs_sealed;
      total_rehomes += agent_stats.rehomes;
      sealed_by_site[site - 1] = agent_stats.epochs_sealed;
      expect(agent_stats.epochs_dropped == 0, "no agent spilled its spool");
      expect(!agent_stats.rejected, "no agent was permanently rejected");
    }
    expect(total_rehomes >= 1,
           "at least one agent re-homed across the reshard");
    expect(agents[0]->stats().map_version == 2,
           "site 1's agent adopted the v2 map through the wire");
    for (auto& leaf : leaves)
      if (leaf) leaf->stop(drain_ms);

    expect(root.wait_for_deltas(total_sealed, drain_ms),
           "every sealed epoch reached the root");
    const auto root_stats = root.stats();
    const auto merged = root.merged_sketch();
    const auto topk = root.top_k(10);
    const auto site_rows = root.site_stats();
    root.stop();

    std::printf(
        "federation: leaves=%zu sites=%llu sealed=%llu merged=%llu "
        "relayed=%llu duplicates=%llu gap_fills=%llu pending_gaps=%llu "
        "dropped=%llu rehomes=%llu wrong_shard=%llu\n",
        leaf_count, static_cast<unsigned long long>(sites),
        static_cast<unsigned long long>(total_sealed),
        static_cast<unsigned long long>(root_stats.deltas_merged),
        static_cast<unsigned long long>(root_stats.relayed_deltas),
        static_cast<unsigned long long>(root_stats.duplicate_deltas),
        static_cast<unsigned long long>(root_stats.gap_fills),
        static_cast<unsigned long long>(root_stats.pending_gap_epochs),
        static_cast<unsigned long long>(root_stats.dropped_epochs),
        static_cast<unsigned long long>(total_rehomes),
        static_cast<unsigned long long>(root_stats.wrong_shard_acks));

    // --- exactly-once composition across the tiers --------------------------
    expect(root_stats.deltas_merged == total_sealed,
           "root merged every sealed epoch exactly once");
    expect(root_stats.relayed_deltas == root_stats.deltas_merged,
           "every root merge arrived via a leaf relay");
    expect(root_stats.dropped_epochs == 0,
           "zero epochs dropped at the root across kill + reshard");
    expect(root_stats.pending_gap_epochs == 0,
           "the gap ledger drained to empty after the journal drain");
    expect(root_stats.gap_fills >= 1,
           "the victim's journal drain filled real recorded gaps");
    std::size_t real_site_rows = 0;
    for (const auto& row : site_rows) {
      if (row.site_id >= 1000) continue;  // leaf-uplink accounting rows
      ++real_site_rows;
      expect(row.dropped_epochs == 0, "per-site: no epoch lost at the root");
      expect(row.site_id >= 1 && row.site_id <= sites &&
                 row.epochs_merged == sealed_by_site[row.site_id - 1],
             "per-site: root merges equal the agent's seals");
    }
    expect(real_site_rows == sites, "every site is accounted at the root");

    // --- exact convergence: linearity makes the two-tier merge invisible ----
    DistinctCountSketch reference(params);
    for (std::uint64_t site = 1; site <= sites; ++site)
      for (const FlowUpdate& update : workloads[site - 1])
        reference.update(update.dest, update.source, update.delta);
    expect(serialize_sketch(merged) == serialize_sketch(reference),
           "root sketch equals the single-collector reference bit-for-bit");
    expect(merged.estimate_distinct_pairs() ==
               reference.estimate_distinct_pairs(),
           "distinct-pairs estimate matches the reference exactly");
    const auto ref_topk = TrackingDcs(reference).top_k(10);
    expect(topk.entries.size() == ref_topk.entries.size(),
           "root top-k size matches the reference");
    for (std::size_t i = 0;
         i < std::min(topk.entries.size(), ref_topk.entries.size()); ++i)
      expect(topk.entries[i].group == ref_topk.entries[i].group &&
                 topk.entries[i].estimate == ref_topk.entries[i].estimate,
             "root top-k entry matches the reference");

    if (failures == 0) {
      if (default_dir) {
        std::error_code ec;
        std::filesystem::remove_all(fed_dir, ec);
      }
      std::printf("dcs_chaos: OK\n");
      return 0;
    }
    std::fprintf(stderr, "dcs_chaos: %d assertion(s) failed (state kept in "
                         "%s)\n",
                 failures, fed_dir.c_str());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_chaos: federation: %s\n", error.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Options options(argc, argv);
  if (options.flag("help")) {
    print_usage();
    return 0;
  }

  const auto sites = static_cast<std::uint64_t>(options.integer("sites", 4));
  const auto u = static_cast<std::uint64_t>(options.integer("u", 20000));
  const auto epoch_updates =
      static_cast<std::uint64_t>(options.integer("epoch-updates", 500));
  const auto seed = static_cast<std::uint64_t>(options.integer("seed", 42));
  const auto budget = static_cast<std::uint64_t>(
      options.integer("budget", 16ll << 20));
  // Low enough that draining a spooled burst genuinely exceeds it even on
  // a loaded single-core runner, where merge cost alone throttles sites.
  const double site_rate = options.real("site-rate", 15.0);
  const double site_burst = options.real("site-burst", 4.0);
  const int frame_deadline_ms =
      static_cast<int>(options.integer("frame-deadline-ms", 250));
  const int idle_timeout_ms =
      static_cast<int>(options.integer("idle-timeout-ms", 600));
  const auto loris = static_cast<std::size_t>(options.integer("loris", 2));
  const auto stall = static_cast<std::size_t>(options.integer("stall", 2));
  const auto oversize =
      static_cast<std::size_t>(options.integer("oversize", 2));
  const int drain_ms = static_cast<int>(options.integer("drain-ms", 60000));
  const bool use_reactor = options.flag("reactor");
  const int reactor_workers =
      static_cast<int>(options.integer("reactor-workers", 2));
  const auto churn_peers =
      static_cast<std::size_t>(options.integer("churn-peers", 0));
  const bool verbose = options.flag("verbose");

  if (options.flag("federation")) {
    const auto leaf_count =
        static_cast<std::size_t>(options.integer("leaves", 3));
    return run_federation(sites, u, epoch_updates, seed, leaf_count,
                          options.str("fed-dir", ""), drain_ms, verbose);
  }

  if (churn_peers > 0) {
    try {
      return run_churn(churn_peers, reactor_workers, seed, drain_ms, verbose);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "dcs_chaos: %s\n", error.what());
      return 1;
    }
  }

  const DcsParams params = chaos_params(seed);

  CollectorConfig config;
  config.params = params;
  config.io_timeout_ms = 25;
  config.frame_deadline_ms = frame_deadline_ms;
  config.idle_timeout_ms = idle_timeout_ms;
  config.max_frame_bytes = 8u << 20;
  config.admission.max_inflight_bytes = budget;
  config.admission.site_rate_per_sec = site_rate;
  config.admission.site_burst = site_burst;
  // Keep shed-retry hints well under the idle timeout: an agent waiting
  // out a NACK sends nothing, and must not be reaped for honoring the
  // hint we gave it.
  config.admission.max_retry_after_ms = static_cast<std::uint32_t>(
      std::max(idle_timeout_ms / 3, 10));
  config.use_reactor = use_reactor;
  config.reactor_workers = reactor_workers;

  try {
    Collector collector(config);
    collector.start();
    const std::uint16_t port = collector.port();
    if (verbose) std::printf("collector on 127.0.0.1:%u\n", port);

    // Detection-freshness watch: the tracing layer must measure every merge
    // even while the overload defenses are firing, and the measured
    // seal-to-verdict latency must stay bounded by the episode itself —
    // faults may delay epochs, never let them go stale unnoticed.
    const std::uint64_t freshness_before =
        obs::TraceMetrics::get().detection_freshness_ns.snapshot().count;
    const auto episode_start = Clock::now();

    // Sampler: the run-long watchdogs. max_inflight proves the admission
    // budget actually bounds shipping-path memory; max_stall_ns proves no
    // collector thread holds the state lock (the resource every query and
    // merge shares) anywhere near the frame deadline even mid-fault.
    std::atomic<bool> sampling{true};
    std::atomic<std::uint64_t> max_inflight{0};
    std::atomic<std::uint64_t> max_stall_ns{0};
    std::thread sampler([&] {
      while (sampling.load(std::memory_order_acquire)) {
        const std::uint64_t inflight = collector.inflight_bytes();
        std::uint64_t seen = max_inflight.load(std::memory_order_relaxed);
        while (inflight > seen &&
               !max_inflight.compare_exchange_weak(seen, inflight)) {
        }
        const auto before = Clock::now();
        (void)collector.stats();  // acquires the state lock
        const auto waited = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - before)
                .count());
        std::uint64_t seen_ns = max_stall_ns.load(std::memory_order_relaxed);
        while (waited > seen_ns &&
               !max_stall_ns.compare_exchange_weak(seen_ns, waited)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    // Fault connections, concurrent with the honest agents.
    std::atomic<bool> faults_active{true};
    std::vector<std::thread> fault_threads;
    for (std::size_t i = 0; i < loris; ++i)
      fault_threads.emplace_back(
          [&, port] { run_slow_loris(port, faults_active); });
    for (std::size_t i = 0; i < stall; ++i)
      fault_threads.emplace_back([&, port] { run_stall(port, faults_active); });
    for (std::size_t i = 0; i < oversize; ++i)
      fault_threads.emplace_back([port] { run_oversize(port, 32u << 20); });

    // Honest agents: seeded workloads, spool sized so shedding can only
    // delay epochs, never evict them — the exactly-once assertion below
    // depends on zero spool drops.
    std::vector<std::unique_ptr<SiteAgent>> agents;
    for (std::uint64_t site = 1; site <= sites; ++site) {
      SiteAgentConfig agent_config;
      agent_config.site_id = site;
      agent_config.collector_port = port;
      agent_config.params = params;
      agent_config.epoch_updates = epoch_updates;
      agent_config.spool_epochs = 1 << 14;
      agent_config.backoff_initial_ms = 10;
      agent_config.backoff_max_ms = 200;
      agent_config.heartbeat_interval_ms = 100;
      agent_config.io_timeout_ms = 2000;
      agent_config.jitter_seed = seed + site;
      agents.push_back(std::make_unique<SiteAgent>(agent_config));
      agents.back()->start();
    }
    for (std::uint64_t site = 1; site <= sites; ++site)
      for (const FlowUpdate& update : site_workload(site, u, seed))
        agents[site - 1]->ingest(update);

    // Wait until every fault profile has been observed shedding.
    const auto fault_deadline =
        Clock::now() + std::chrono::milliseconds(drain_ms);
    for (;;) {
      const auto stats = collector.stats();
      if (stats.deadline_drops >= loris && stats.idle_reaped >= stall &&
          stats.frame_errors >= oversize)
        break;
      if (Clock::now() >= fault_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    faults_active.store(false);
    for (auto& thread : fault_threads) thread.join();
    if (verbose) std::printf("faults cleared\n");

    // Faults over: the agents must now converge. flush() returns true only
    // when every sealed epoch has been acked. The faults-cleared → drained
    // interval is the convergence probe the perf trajectory tracks: how
    // long the system takes to work off an overload episode.
    const auto faults_cleared = Clock::now();
    bool all_drained = true;
    for (auto& agent : agents) all_drained &= agent->flush(drain_ms);
    const double convergence_ms =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - faults_cleared)
                                .count()) /
        1e6;
    for (auto& agent : agents) agent->stop(drain_ms);

    // Quiesce: every live connection gone before the final accounting.
    const auto quiesce_deadline =
        Clock::now() + std::chrono::milliseconds(drain_ms);
    while (collector.connection_count() > 0 &&
           Clock::now() < quiesce_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));

    sampling.store(false, std::memory_order_release);
    sampler.join();

    const auto stats = collector.stats();
    const auto merged = collector.merged_sketch();
    const auto topk = collector.top_k(10);
    collector.stop();

    // Reference: one local sketch over every site's exact workload. By
    // linearity the merged collector sketch must equal it bit-for-bit no
    // matter how overload delayed or reordered delivery.
    DistinctCountSketch reference(params);
    for (std::uint64_t site = 1; site <= sites; ++site)
      for (const FlowUpdate& update : site_workload(site, u, seed))
        reference.update(update.dest, update.source, update.delta);
    const auto ref_topk = TrackingDcs(reference).top_k(10);

    std::uint64_t total_nacks = 0;
    std::uint64_t total_dropped = 0;
    for (auto& agent : agents) {
      const auto agent_stats = agent->stats();
      total_nacks += agent_stats.nacks;
      total_dropped += agent_stats.epochs_dropped;
    }

    std::printf(
        "deltas=%llu shed=%llu shed_bytes=%llu deadline_drops=%llu "
        "idle_reaped=%llu frame_errors=%llu duplicates=%llu dropped=%llu "
        "nacks=%llu max_inflight=%llu max_stall_ms=%.2f\n",
        static_cast<unsigned long long>(stats.deltas_merged),
        static_cast<unsigned long long>(stats.shed_deltas),
        static_cast<unsigned long long>(stats.shed_bytes),
        static_cast<unsigned long long>(stats.deadline_drops),
        static_cast<unsigned long long>(stats.idle_reaped),
        static_cast<unsigned long long>(stats.frame_errors),
        static_cast<unsigned long long>(stats.duplicate_deltas),
        static_cast<unsigned long long>(stats.dropped_epochs),
        static_cast<unsigned long long>(total_nacks),
        static_cast<unsigned long long>(max_inflight.load()),
        static_cast<double>(max_stall_ns.load()) / 1e6);

    // --- liveness and bounded memory ---------------------------------------
    expect(all_drained, "every agent drained its spool after faults cleared");
    expect(max_inflight.load() <= budget,
           "in-flight bytes stayed under the admission budget");
    expect(max_stall_ns.load() <=
               static_cast<std::uint64_t>(frame_deadline_ms) * 1'000'000ull,
           "state lock never blocked a thread past the frame deadline");
    // --- each fault profile was detected and shed --------------------------
    expect(stats.deadline_drops >= loris,
           "slow-loris connections hit the frame deadline");
    expect(stats.idle_reaped >= stall, "stalled connections were idle-reaped");
    expect(stats.frame_errors >= oversize,
           "oversized frames were rejected at the header");
    expect(site_rate <= 0.0 || stats.shed_deltas > 0,
           "burst shipping was shed by the token bucket");
    expect(site_rate <= 0.0 || total_nacks > 0,
           "agents observed kRetryLater NACKs");
    // --- overload cost latency, never data ---------------------------------
    expect(total_dropped == 0, "no agent spilled its spool");
    expect(stats.dropped_epochs == 0, "zero gap epochs across the episode");
    expect(stats.post_recovery_duplicates == 0,
           "no post-recovery duplicate merges");
    // --- the freshness SLO stayed measured and bounded under faults --------
    const auto freshness =
        obs::TraceMetrics::get().detection_freshness_ns.snapshot();
    const auto episode_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - episode_start)
            .count());
    expect(freshness.count >= freshness_before + stats.deltas_merged,
           "every merged delta produced a detection-freshness observation");
    // quantile(1.0) reports the top occupied bucket's range, which can
    // overshoot the true maximum by up to 2x; 4x the episode length leaves
    // room for that plus wall-vs-steady clock slop.
    expect(freshness.quantile(1.0) <= 4.0 * static_cast<double>(episode_ns),
           "worst-case detection freshness bounded by the episode length");
    // --- exact convergence: the whole point --------------------------------
    expect(serialize_sketch(merged) == serialize_sketch(reference),
           "merged sketch equals the uninterrupted reference bit-for-bit");
    expect(topk.entries.size() == ref_topk.entries.size(),
           "top-k size matches the reference");
    for (std::size_t i = 0;
         i < std::min(topk.entries.size(), ref_topk.entries.size()); ++i) {
      expect(topk.entries[i].group == ref_topk.entries[i].group &&
                 topk.entries[i].estimate == ref_topk.entries[i].estimate,
             "top-k entry matches the reference");
    }

    std::printf("convergence_ms=%.1f\n", convergence_ms);

    // Optional BENCH report so the perf runner can track convergence time
    // alongside the real benchmarks. Timing on a soak under deliberate
    // faults is inherently noisy; record a generous explicit figure.
    const std::string json_dir = options.str("json-dir", "");
    if (!json_dir.empty()) {
      bench::JsonReport report("chaos_convergence");
      const std::string run_id = options.str("run-id", "");
      if (!run_id.empty()) report.set_run_id(run_id);
      report.meta("sites", static_cast<double>(sites));
      report.meta("u_per_site", static_cast<double>(u));
      report.meta("faults", static_cast<double>(loris + stall + oversize));
      report.meta("reactor", use_reactor ? 1.0 : 0.0);
      report.metric("drain", "convergence_ms", convergence_ms,
                    bench::Direction::kLowerIsBetter, 50.0);
      report.value("drain", "deltas_merged",
                   static_cast<double>(stats.deltas_merged));
      report.value("drain", "shed_deltas",
                   static_cast<double>(stats.shed_deltas));
      report.value("drain", "max_stall_ms",
                   static_cast<double>(max_stall_ns.load()) / 1e6);
      try {
        std::printf("json: %s\n", report.write(json_dir).c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "dcs_chaos: json write failed: %s\n",
                     error.what());
      }
    }

    if (failures == 0) {
      std::printf("dcs_chaos: OK\n");
      return 0;
    }
    std::fprintf(stderr, "dcs_chaos: %d assertion(s) failed\n", failures);
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_chaos: %s\n", error.what());
    return 1;
  }
}
