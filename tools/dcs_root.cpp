// dcs_root — federation root collector (docs/FEDERATION.md).
//
// The top tier of the two-tier sharded deployment: binds a TCP port and
// accepts *leaf* collectors (dcs_collector --leaf-id ... --root ...), each
// relaying the per-site, per-epoch sketch deltas of its shard over one
// multiplexed wire-v4 uplink. Sketch linearity makes the merge exact — the
// root's merged sketch and top-k are bit-identical to a single collector
// that saw every site directly — and the root's per-(origin site, epoch)
// gap-filling dedup makes the relay exactly-once even when a killed leaf's
// journal is drained out of order with the re-homed agents' live streams.
//
//   dcs_root [--port N] [--bind ADDR] [--port-file FILE] [--leaves N]
//            [--timeout-ms N] [--k N] [--r N] [--s N] [--seed N]
//            [--min-absolute N] [--factor F] [--no-detection]
//            [--state-dir DIR] [--checkpoint-every N] [--checkpoint-retain N]
//            [--publish-dir DIR] [--publish-every-ms N] [--publish-retain N]
//            [--publish-k N] [--metrics-out FILE]
//            [--metrics-format prom|json] [--metrics-every SEC]
//            [--ops-port N] [--ops-port-file FILE]
//
// --leaves is the Bye quorum: the root exits after that many peers said
// Bye (each leaf sends one on graceful shutdown) or --timeout-ms elapses.
// Detection, durability, the query-tier publisher and the ops plane are
// the same subsystems dcs_collector runs — a root IS a collector, it just
// admits leaf-role Hellos and keeps a per-origin-site gap ledger.
//
// Operational note (docs/RUNBOOK.md): the pending-gap ledger is NOT
// checkpointed. Drain every leaf (watch dcs_leaf_uplink_spool_depth reach
// zero) before restarting a root, or re-drain the leaves afterwards.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/options.hpp"
#include "obs/export.hpp"
#include "obs/http_export.hpp"
#include "obs/trace.hpp"
#include "query/publisher.hpp"
#include "service/collector.hpp"

namespace {

using namespace dcs;

void print_usage() {
  std::printf(
      "usage: dcs_root [options]\n"
      "  --port N              TCP port to bind (0 = ephemeral; default 0)\n"
      "  --bind ADDR           bind address (default 127.0.0.1)\n"
      "  --port-file FILE      atomically publish the bound port to FILE\n"
      "  --leaves N            exit after N peers said Bye (default 1)\n"
      "  --timeout-ms N        max wait for the Byes (default 30000)\n"
      "  --k N                 detection top-k (default 5)\n"
      "  --r N                 sketch tables (must match leaves; default 3)\n"
      "  --s N                 buckets per table (must match; default 128)\n"
      "  --seed N              sketch hash seed (must match; default 0)\n"
      "  --min-absolute N      detection floor, distinct sources (default 512)\n"
      "  --factor F            detection alarm factor over baseline (default 8)\n"
      "  --no-detection        disable the EWMA baseline detector\n"
      "  --state-dir DIR       enable crash-safe checkpointing in DIR\n"
      "  --checkpoint-every N  merges between checkpoints (default 64)\n"
      "  --checkpoint-retain N checkpoint generations kept (default 2)\n"
      "  --publish-dir DIR     publish query snapshots into DIR\n"
      "  --publish-every-ms N  ms between query snapshots (default 1000)\n"
      "  --publish-retain N    query generations kept (default 8)\n"
      "  --publish-k N         top-k depth per query snapshot (default 10)\n"
      "  --metrics-out FILE    write a metrics snapshot on exit\n"
      "  --metrics-format F    prom|json (default prom)\n"
      "  --metrics-every SEC   rewrite --metrics-out every SEC seconds\n"
      "  --ops-port N          serve the HTTP ops plane on this port\n"
      "                        (0 = ephemeral; omit = disabled)\n"
      "  --ops-port-file FILE  atomically publish the bound ops port\n"
      "  --help                print this help\n");
}

void publish_port(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

/// Root liveness JSON for GET /healthz: collector basics plus the
/// federation ledger the reshard runbook watches.
std::string root_healthz_json(const service::Collector& collector) {
  const auto stats = collector.stats();
  std::string out = "{\n  \"status\": \"ok\",\n";
  out += std::string("  \"running\": ") +
         (collector.running() ? "true" : "false") + ",\n";
  const auto field = [&out](const char* key, unsigned long long value,
                            bool last = false) {
    out += "  \"" + std::string(key) + "\": " + std::to_string(value) +
           (last ? "\n" : ",\n");
  };
  field("connected_peers", stats.connected_sites);
  field("deltas_merged", stats.deltas_merged);
  field("relayed_deltas", stats.relayed_deltas);
  field("duplicate_deltas", stats.duplicate_deltas);
  field("gap_fills", stats.gap_fills);
  field("pending_gap_epochs", stats.pending_gap_epochs);
  field("dropped_epochs", stats.dropped_epochs);
  field("wrong_shard_acks", stats.wrong_shard_acks);
  field("frame_errors", stats.frame_errors);
  field("active_alarms", collector.active_alarm_count(), /*last=*/true);
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Options options(argc, argv);
  if (options.flag("help")) {
    print_usage();
    return 0;
  }

  service::CollectorConfig config;
  config.federation_root = true;
  config.params.num_tables = static_cast<int>(options.integer("r", 3));
  config.params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  config.params.seed = static_cast<std::uint64_t>(options.integer("seed", 0));
  config.bind_address = options.str("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(options.integer("port", 0));
  config.run_detection = !options.flag("no-detection");
  config.detection.min_absolute =
      static_cast<std::uint64_t>(options.integer("min-absolute", 512));
  config.detection.alarm_factor = options.real("factor", 8.0);
  config.detection_top_k = static_cast<std::size_t>(options.integer("k", 5));
  config.state_dir = options.str("state-dir", "");
  config.checkpoint_every =
      static_cast<std::uint64_t>(options.integer("checkpoint-every", 64));
  config.checkpoint_retain =
      static_cast<std::uint64_t>(options.integer("checkpoint-retain", 2));

  const auto leaves = static_cast<std::uint64_t>(options.integer("leaves", 1));
  const int timeout_ms = static_cast<int>(options.integer("timeout-ms", 30000));

  try {
    config.params.validate();
    service::Collector collector(config);
    collector.start();
    std::printf("root listening on %s:%u\n", config.bind_address.c_str(),
                collector.port());
    std::fflush(stdout);
    const std::string port_file = options.str("port-file", "");
    if (!port_file.empty()) publish_port(port_file, collector.port());

    std::unique_ptr<obs::HttpServer> ops_server;
    const std::int64_t ops_port = options.integer("ops-port", -1);
    if (ops_port >= 0) {
      obs::HttpServerConfig ops_config;
      ops_config.bind_address = config.bind_address;
      ops_config.port = static_cast<std::uint16_t>(ops_port);
      ops_server = std::make_unique<obs::HttpServer>(ops_config);
      ops_server->route("/metrics", [] {
        obs::HttpResponse response;
        response.body = obs::to_prometheus(obs::Registry::global().snapshot());
        return response;
      });
      ops_server->route("/metrics.json", [] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = obs::to_json(obs::Registry::global().snapshot());
        return response;
      });
      ops_server->route("/healthz", [&collector] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = root_healthz_json(collector);
        return response;
      });
      ops_server->start();
      std::printf("ops plane on %s:%u\n", config.bind_address.c_str(),
                  ops_server->port());
      std::fflush(stdout);
      const std::string ops_port_file = options.str("ops-port-file", "");
      if (!ops_port_file.empty())
        publish_port(ops_port_file, ops_server->port());
    }

    std::unique_ptr<query::SnapshotPublisher> publisher;
    const std::string publish_dir = options.str("publish-dir", "");
    if (!publish_dir.empty()) {
      query::SnapshotPublisherConfig publish_config;
      publish_config.publish_dir = publish_dir;
      publish_config.publish_every_ms =
          static_cast<int>(options.integer("publish-every-ms", 1000));
      publish_config.retain =
          static_cast<std::uint64_t>(options.integer("publish-retain", 8));
      publish_config.top_k =
          static_cast<std::size_t>(options.integer("publish-k", 10));
      publisher = std::make_unique<query::SnapshotPublisher>(
          publish_config, [&collector](std::size_t top_k) {
            return collector.query_publish_state(top_k);
          });
      publisher->start();
    }

    const std::string metrics_out_path = options.str("metrics-out", "");
    const obs::ExportFormat metrics_format =
        obs::parse_format(options.str("metrics-format", "prom"));
    obs::PeriodicSnapshotWriter metrics_flusher;
    metrics_flusher.start(metrics_out_path, metrics_format,
                          static_cast<int>(options.integer("metrics-every",
                                                           0)));

    const bool all_done = collector.wait_for_byes(leaves, timeout_ms);
    if (publisher) {
      publisher->publish_now();
      publisher->stop();
    }
    metrics_flusher.stop();
    if (ops_server) ops_server->stop();
    collector.stop();

    const auto stats = collector.stats();
    std::printf(
        "byes=%llu deltas=%llu relayed=%llu duplicates=%llu gap_fills=%llu "
        "pending_gaps=%llu dropped=%llu wrong_shard=%llu frame_errors=%llu\n",
        static_cast<unsigned long long>(stats.byes),
        static_cast<unsigned long long>(stats.deltas_merged),
        static_cast<unsigned long long>(stats.relayed_deltas),
        static_cast<unsigned long long>(stats.duplicate_deltas),
        static_cast<unsigned long long>(stats.gap_fills),
        static_cast<unsigned long long>(stats.pending_gap_epochs),
        static_cast<unsigned long long>(stats.dropped_epochs),
        static_cast<unsigned long long>(stats.wrong_shard_acks),
        static_cast<unsigned long long>(stats.frame_errors));
    for (const auto& site : collector.site_stats())
      std::printf("site=%llu epochs=%llu updates=%llu dropped=%llu "
                  "last_epoch=%llu\n",
                  static_cast<unsigned long long>(site.site_id),
                  static_cast<unsigned long long>(site.epochs_merged),
                  static_cast<unsigned long long>(site.updates_merged),
                  static_cast<unsigned long long>(site.dropped_epochs),
                  static_cast<unsigned long long>(site.last_epoch));
    const auto result = collector.top_k(config.detection_top_k);
    for (std::size_t i = 0; i < result.entries.size(); ++i)
      std::printf("%2zu  dest=%08x  frequency~%llu\n", i + 1,
                  result.entries[i].group,
                  static_cast<unsigned long long>(result.entries[i].estimate));
    std::printf("alerts=%zu active_alarms=%zu\n", collector.alerts().size(),
                collector.active_alarm_count());

    if (!metrics_out_path.empty())
      obs::write_snapshot_file(metrics_out_path, metrics_format,
                               obs::Registry::global().snapshot());

    if (stats.pending_gap_epochs != 0)
      std::fprintf(stderr,
                   "dcs_root: WARNING: %llu pending gap epochs — a leaf "
                   "journal was not fully drained\n",
                   static_cast<unsigned long long>(stats.pending_gap_epochs));
    if (!all_done) {
      std::fprintf(stderr, "dcs_root: timed out waiting for %llu leaves\n",
                   static_cast<unsigned long long>(leaves));
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_root: %s\n", error.what());
    return 1;
  }
}
