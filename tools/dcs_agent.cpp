// dcs_agent — per-router site agent for the sketch-shipping deployment.
//
// Generates a synthetic Zipf flow-update workload (the same generator the
// experiments use), ingests it into a local sketch, seals an epoch delta
// every --epoch-updates updates and ships it to a dcs_collector, then
// flushes and exits. Nonzero exit if the collector rejected the handshake
// or the spool could not be drained.
//
//   dcs_agent --port N | --port-file FILE [--host ADDR] [--site N]
//             [--r N] [--s N] [--seed N] [--u N] [--d N] [--z F] [--wseed N]
//             [--epoch-updates N] [--spool N] [--drain-ms N]
//
// --port-file polls for a file published by `dcs_collector --port-file`, so
// both sides can be launched simultaneously with an ephemeral port.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/options.hpp"
#include "service/agent.hpp"
#include "stream/generator.hpp"

namespace {

using namespace dcs;

void print_usage() {
  std::printf(
      "usage: dcs_agent (--port N | --port-file FILE) [options]\n"
      "  --port N            collector TCP port\n"
      "  --port-file FILE    poll FILE for the port dcs_collector published\n"
      "  --host ADDR         collector host (default 127.0.0.1)\n"
      "  --site N            site id carried in every message (default 1)\n"
      "  --r N               sketch tables (must match collector; default 3)\n"
      "  --s N               buckets per table (must match; default 128)\n"
      "  --seed N            sketch hash seed (must match; default 0)\n"
      "  --u N               workload update pairs to generate (default 20000)\n"
      "  --d N               workload distinct destinations (default 200)\n"
      "  --z F               workload Zipf skew (default 1.2)\n"
      "  --wseed N           workload seed (default = site id)\n"
      "  --epoch-updates N   updates per sealed epoch delta (default 2048)\n"
      "  --spool N           max sealed-but-unacked epochs held (default 64)\n"
      "  --drain-ms N        flush/stop timeout on exit (default 15000)\n"
      "  --help              print this help\n");
}

std::uint16_t wait_for_port_file(const std::string& path, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    unsigned port = 0;
    if (in >> port && port > 0 && port <= 65535)
      return static_cast<std::uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Daemon hygiene: a peer (or a pipeline neighbour reading our stdout)
  // vanishing must surface as a write error, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  Options options(argc, argv);
  if (options.flag("help")) {
    print_usage();
    return 0;
  }

  service::SiteAgentConfig config;
  config.site_id = static_cast<std::uint64_t>(options.integer("site", 1));
  config.collector_host = options.str("host", "127.0.0.1");
  config.params.num_tables = static_cast<int>(options.integer("r", 3));
  config.params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  config.params.seed = static_cast<std::uint64_t>(options.integer("seed", 0));
  config.epoch_updates =
      static_cast<std::uint64_t>(options.integer("epoch-updates", 2048));
  config.spool_epochs =
      static_cast<std::size_t>(options.integer("spool", 64));
  config.jitter_seed = config.site_id;

  const int drain_ms = static_cast<int>(options.integer("drain-ms", 15000));

  try {
    config.params.validate();
    config.collector_port =
        static_cast<std::uint16_t>(options.integer("port", 0));
    const std::string port_file = options.str("port-file", "");
    if (config.collector_port == 0 && !port_file.empty())
      config.collector_port = wait_for_port_file(port_file, drain_ms);
    if (config.collector_port == 0) {
      std::fprintf(stderr, "dcs_agent: no collector port (--port or "
                           "--port-file required)\n");
      return 2;
    }

    ZipfWorkloadConfig workload_config;
    workload_config.u_pairs =
        static_cast<std::uint64_t>(options.integer("u", 20000));
    workload_config.num_destinations =
        static_cast<std::uint32_t>(options.integer("d", 200));
    workload_config.skew = options.real("z", 1.2);
    workload_config.seed = static_cast<std::uint64_t>(
        options.integer("wseed", static_cast<std::int64_t>(config.site_id)));
    const ZipfWorkload workload(workload_config);

    service::SiteAgent agent(config);
    agent.start();
    for (const FlowUpdate& update : workload.updates()) agent.ingest(update);
    const bool drained = agent.flush(drain_ms);
    agent.stop(drain_ms);

    const auto stats = agent.stats();
    std::printf("site=%llu sealed=%llu shipped=%llu dropped=%llu "
                "reconnects=%llu io_errors=%llu rejected=%d\n",
                static_cast<unsigned long long>(config.site_id),
                static_cast<unsigned long long>(stats.epochs_sealed),
                static_cast<unsigned long long>(stats.epochs_shipped),
                static_cast<unsigned long long>(stats.epochs_dropped),
                static_cast<unsigned long long>(stats.reconnects),
                static_cast<unsigned long long>(stats.io_errors),
                stats.rejected ? 1 : 0);
    if (stats.rejected) {
      std::fprintf(stderr, "dcs_agent: collector rejected handshake "
                           "(parameter mismatch)\n");
      return 1;
    }
    if (!drained) {
      std::fprintf(stderr, "dcs_agent: spool not drained before timeout\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_agent: %s\n", error.what());
    return 1;
  }
}
