// dcs_agent — per-router site agent for the sketch-shipping deployment.
//
// Generates a synthetic Zipf flow-update workload (the same generator the
// experiments use), ingests it into a local sketch, seals an epoch delta
// every --epoch-updates updates and ships it to a dcs_collector, then
// flushes and exits. Nonzero exit if the collector rejected the handshake
// or the spool could not be drained.
//
//   dcs_agent --port N | --port-file FILE [--host ADDR] [--site N]
//             [--shard-map FILE]
//             [--r N] [--s N] [--seed N] [--u N] [--d N] [--z F] [--wseed N]
//             [--epoch-updates N] [--spool N] [--drain-ms N]
//             [--metrics-out FILE] [--metrics-format prom|json]
//             [--metrics-every SEC] [--ops-port N] [--ops-port-file FILE]
//
// --port-file polls for a file published by `dcs_collector --port-file`, so
// both sides can be launched simultaneously with an ephemeral port.
//
// --shard-map homes the agent under a federation (docs/FEDERATION.md): it
// connects to the leaf the map assigns its site id, and --host/--port
// become the *seed* fallback used to re-bootstrap the map when the mapped
// leaf stays unreachable. Any leaf answering a mis-homed Hello pushes the
// current map back (kWrongShard), so agents follow reshards on their own.
//
// --ops-port embeds the HTTP ops server (obs/http_export.hpp): /metrics,
// /metrics.json, /healthz and /traces served live (0 = ephemeral port,
// published via --ops-port-file). --metrics-every atomically rewrites
// --metrics-out every SEC seconds so even a SIGKILLed agent leaves recent
// metrics behind.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "common/options.hpp"
#include "obs/export.hpp"
#include "obs/http_export.hpp"
#include "obs/trace.hpp"
#include "service/agent.hpp"
#include "stream/generator.hpp"

namespace {

using namespace dcs;

void print_usage() {
  std::printf(
      "usage: dcs_agent (--port N | --port-file FILE) [options]\n"
      "  --port N            collector TCP port\n"
      "  --port-file FILE    poll FILE for the port dcs_collector published\n"
      "  --host ADDR         collector host (default 127.0.0.1)\n"
      "  --site N            site id carried in every message (default 1)\n"
      "  --shard-map FILE    federation shard map (dcs_shardmap gen); homes\n"
      "                      the agent to its mapped leaf, with --host/--port\n"
      "                      as the bootstrap seed\n"
      "  --r N               sketch tables (must match collector; default 3)\n"
      "  --s N               buckets per table (must match; default 128)\n"
      "  --seed N            sketch hash seed (must match; default 0)\n"
      "  --u N               workload update pairs to generate (default 20000)\n"
      "  --d N               workload distinct destinations (default 200)\n"
      "  --z F               workload Zipf skew (default 1.2)\n"
      "  --wseed N           workload seed (default = site id)\n"
      "  --epoch-updates N   updates per sealed epoch delta (default 2048)\n"
      "  --spool N           max sealed-but-unacked epochs held (default 64)\n"
      "  --drain-ms N        flush/stop timeout on exit (default 15000)\n"
      "  --metrics-out FILE  write a metrics snapshot on exit\n"
      "  --metrics-format F  prom|json (default prom)\n"
      "  --metrics-every SEC also rewrite --metrics-out atomically every\n"
      "                      SEC seconds (0 = only on exit; default 0)\n"
      "  --ops-port N        serve the HTTP ops plane (/metrics,\n"
      "                      /metrics.json, /healthz, /traces) on this port\n"
      "                      (0 = ephemeral; omit = disabled)\n"
      "  --ops-port-file FILE  atomically publish the bound ops port\n"
      "  --help              print this help\n");
}

/// Liveness + shipping-state JSON for GET /healthz on the agent ops plane.
std::string agent_healthz_json(const service::SiteAgent& agent,
                               std::uint64_t site_id) {
  const auto stats = agent.stats();
  std::string out = "{";
  auto field = [&out](const char* key, std::uint64_t value, bool comma = true) {
    out += "\"";
    out += key;
    out += "\":" + std::to_string(value);
    if (comma) out += ',';
  };
  out += "\"status\":\"";
  out += stats.rejected ? "rejected" : "ok";
  out += "\",\"connected\":";
  out += stats.connected ? "true" : "false";
  out += ',';
  field("site_id", site_id);
  field("epochs_sealed", stats.epochs_sealed);
  field("epochs_shipped", stats.epochs_shipped);
  field("epochs_dropped", stats.epochs_dropped);
  field("resume_skips", stats.resume_skips);
  field("nacks", stats.nacks);
  field("reconnects", stats.reconnects);
  field("io_errors", stats.io_errors);
  field("current_epoch", stats.current_epoch);
  field("spool_depth", stats.spool_depth, /*comma=*/false);
  out += "}\n";
  return out;
}

/// Atomically publish a bound port (temp file + rename), mirroring the
/// collector's --port-file contract so probes never read a half-write.
void publish_port(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::uint16_t wait_for_port_file(const std::string& path, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    unsigned port = 0;
    if (in >> port && port > 0 && port <= 65535)
      return static_cast<std::uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Daemon hygiene: a peer (or a pipeline neighbour reading our stdout)
  // vanishing must surface as a write error, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  Options options(argc, argv);
  if (options.flag("help")) {
    print_usage();
    return 0;
  }

  service::SiteAgentConfig config;
  config.site_id = static_cast<std::uint64_t>(options.integer("site", 1));
  config.collector_host = options.str("host", "127.0.0.1");
  config.params.num_tables = static_cast<int>(options.integer("r", 3));
  config.params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  config.params.seed = static_cast<std::uint64_t>(options.integer("seed", 0));
  config.epoch_updates =
      static_cast<std::uint64_t>(options.integer("epoch-updates", 2048));
  config.spool_epochs =
      static_cast<std::size_t>(options.integer("spool", 64));
  config.jitter_seed = config.site_id;
  const std::string shard_map_path = options.str("shard-map", "");

  const int drain_ms = static_cast<int>(options.integer("drain-ms", 15000));

  try {
    config.params.validate();
    if (!shard_map_path.empty())
      config.shard_map = service::ShardMap::load_file(shard_map_path);
    config.collector_port =
        static_cast<std::uint16_t>(options.integer("port", 0));
    const std::string port_file = options.str("port-file", "");
    if (config.collector_port == 0 && !port_file.empty())
      config.collector_port = wait_for_port_file(port_file, drain_ms);
    if (config.collector_port == 0 && config.shard_map.empty()) {
      std::fprintf(stderr, "dcs_agent: no collector port (--port, "
                           "--port-file or --shard-map required)\n");
      return 2;
    }

    ZipfWorkloadConfig workload_config;
    workload_config.u_pairs =
        static_cast<std::uint64_t>(options.integer("u", 20000));
    workload_config.num_destinations =
        static_cast<std::uint32_t>(options.integer("d", 200));
    workload_config.skew = options.real("z", 1.2);
    workload_config.seed = static_cast<std::uint64_t>(
        options.integer("wseed", static_cast<std::int64_t>(config.site_id)));
    const ZipfWorkload workload(workload_config);

    service::SiteAgent agent(config);
    agent.start();

    // Live ops plane: handlers read immutable snapshots only, so a scrape
    // never touches the shipping thread's locks for longer than a snapshot.
    std::unique_ptr<obs::HttpServer> ops_server;
    const std::int64_t ops_port = options.integer("ops-port", -1);
    if (ops_port >= 0) {
      obs::HttpServerConfig ops_config;
      ops_config.port = static_cast<std::uint16_t>(ops_port);
      ops_server = std::make_unique<obs::HttpServer>(ops_config);
      ops_server->route("/metrics", [] {
        obs::HttpResponse response;
        response.body = obs::to_prometheus(obs::Registry::global().snapshot());
        return response;
      });
      ops_server->route("/metrics.json", [] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = obs::to_json(obs::Registry::global().snapshot());
        return response;
      });
      const std::uint64_t site_id = config.site_id;
      ops_server->route("/healthz", [&agent, site_id] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = agent_healthz_json(agent, site_id);
        return response;
      });
      ops_server->route("/traces", [&agent] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = obs::traces_to_json(agent.traces());
        return response;
      });
      ops_server->start();
      std::printf("ops plane on 127.0.0.1:%u\n", ops_server->port());
      std::fflush(stdout);
      const std::string ops_port_file = options.str("ops-port-file", "");
      if (!ops_port_file.empty())
        publish_port(ops_port_file, ops_server->port());
    }

    const std::string metrics_out_path = options.str("metrics-out", "");
    const obs::ExportFormat metrics_format =
        obs::parse_format(options.str("metrics-format", "prom"));
    obs::PeriodicSnapshotWriter metrics_flusher;
    metrics_flusher.start(metrics_out_path, metrics_format,
                          static_cast<int>(options.integer("metrics-every",
                                                           0)));

    for (const FlowUpdate& update : workload.updates()) agent.ingest(update);
    const bool drained = agent.flush(drain_ms);
    metrics_flusher.stop();
    if (ops_server) ops_server->stop();
    agent.stop(drain_ms);

    const auto stats = agent.stats();
    std::printf("site=%llu sealed=%llu shipped=%llu dropped=%llu "
                "reconnects=%llu io_errors=%llu rehomes=%llu map_version=%u "
                "rejected=%d\n",
                static_cast<unsigned long long>(config.site_id),
                static_cast<unsigned long long>(stats.epochs_sealed),
                static_cast<unsigned long long>(stats.epochs_shipped),
                static_cast<unsigned long long>(stats.epochs_dropped),
                static_cast<unsigned long long>(stats.reconnects),
                static_cast<unsigned long long>(stats.io_errors),
                static_cast<unsigned long long>(stats.rehomes),
                stats.map_version, stats.rejected ? 1 : 0);
    if (!metrics_out_path.empty())
      obs::write_snapshot_file(metrics_out_path, metrics_format,
                               obs::Registry::global().snapshot());

    if (stats.rejected) {
      std::fprintf(stderr, "dcs_agent: collector rejected handshake "
                           "(parameter mismatch)\n");
      return 1;
    }
    if (!drained) {
      std::fprintf(stderr, "dcs_agent: spool not drained before timeout\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_agent: %s\n", error.what());
    return 1;
  }
}
