// dcs_shardmap — generate, inspect, and diff federation shard maps.
//
// The shard map (src/service/federation/shard_map.hpp, docs/FEDERATION.md)
// assigns every site id to one leaf collector via a Maglev-style lookup
// table. This tool is the operator's side of the reshard procedure in
// docs/RUNBOOK.md: `gen` builds a new map file (bump --version every time —
// consumers only ever replace their map with a strictly newer one), `show`
// prints a map's leaves and slot balance, and `diff` reports the remap
// fraction between two maps — the fraction of sites that change leaves,
// which Maglev keeps near 1/N for a single leaf added or removed.
//
//   dcs_shardmap gen  --version N --leaves ID:HOST:PORT[,...] --out FILE
//                     [--table N]
//   dcs_shardmap show --map FILE [--site N]
//   dcs_shardmap diff --a FILE --b FILE
//
// Leaf ids are decimal, non-zero, and must not collide with any site id
// (the root accounts both in one namespace). --table must be prime and
// >= the leaf count (default 251).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "service/federation/shard_map.hpp"

namespace {

using namespace dcs;
using service::LeafEndpoint;
using service::ShardMap;

void print_usage() {
  std::printf(
      "usage: dcs_shardmap <gen|show|diff> [options]\n"
      "  gen  --version N --leaves ID:HOST:PORT[,...] --out FILE [--table N]\n"
      "       build a map file; --version must exceed every deployed map's\n"
      "       version; --table is the lookup table size (prime, default %u)\n"
      "  show --map FILE [--site N]\n"
      "       print version, leaves, slot balance; with --site, the owning\n"
      "       leaf for that site id\n"
      "  diff --a FILE --b FILE\n"
      "       print both versions and the site remap fraction between them\n"
      "  --help  print this help\n",
      ShardMap::kDefaultTableSize);
}

/// Parse "id:host:port" — decimal id, hostname or IPv4 literal, decimal
/// port. The host may not contain ':' (no IPv6 literals; none of the stack
/// binds v6).
LeafEndpoint parse_leaf(const std::string& spec) {
  const auto first = spec.find(':');
  const auto last = spec.rfind(':');
  if (first == std::string::npos || first == last)
    throw std::invalid_argument("leaf spec must be ID:HOST:PORT: " + spec);
  LeafEndpoint leaf;
  leaf.leaf_id = std::stoull(spec.substr(0, first));
  leaf.host = spec.substr(first + 1, last - first - 1);
  const unsigned long port = std::stoul(spec.substr(last + 1));
  if (leaf.host.empty() || port == 0 || port > 65535)
    throw std::invalid_argument("bad host/port in leaf spec: " + spec);
  leaf.port = static_cast<std::uint16_t>(port);
  return leaf;
}

std::vector<LeafEndpoint> parse_leaves(const std::string& list) {
  std::vector<LeafEndpoint> leaves;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const auto comma = list.find(',', begin);
    const std::string spec =
        list.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!spec.empty()) leaves.push_back(parse_leaf(spec));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return leaves;
}

int run_gen(const Options& options) {
  const auto version =
      static_cast<std::uint32_t>(options.integer("version", 0));
  const std::string leaves_spec = options.str("leaves", "");
  const std::string out = options.str("out", "");
  const auto table = static_cast<std::uint32_t>(
      options.integer("table", ShardMap::kDefaultTableSize));
  if (version == 0 || leaves_spec.empty() || out.empty()) {
    std::fprintf(stderr,
                 "dcs_shardmap gen: --version, --leaves and --out are "
                 "required\n");
    return 2;
  }
  const ShardMap map = ShardMap::build(version, parse_leaves(leaves_spec),
                                       table);
  map.save_file(out);
  std::printf("wrote %s: version=%u leaves=%zu table=%u\n", out.c_str(),
              map.version(), map.leaves().size(), map.table_size());
  return 0;
}

int run_show(const Options& options) {
  const std::string path = options.str("map", "");
  if (path.empty()) {
    std::fprintf(stderr, "dcs_shardmap show: --map is required\n");
    return 2;
  }
  const ShardMap map = ShardMap::load_file(path);
  std::printf("version=%u table=%u leaves=%zu\n", map.version(),
              map.table_size(), map.leaves().size());
  for (const LeafEndpoint& leaf : map.leaves())
    std::printf("  leaf=%llu endpoint=%s:%u slots=%u (%.1f%%)\n",
                static_cast<unsigned long long>(leaf.leaf_id),
                leaf.host.c_str(), leaf.port, map.slots_of(leaf.leaf_id),
                100.0 * static_cast<double>(map.slots_of(leaf.leaf_id)) /
                    static_cast<double>(map.table_size()));
  const auto site = options.integer("site", -1);
  if (site >= 0) {
    const LeafEndpoint leaf =
        map.endpoint_for(static_cast<std::uint64_t>(site));
    std::printf("site=%lld -> leaf=%llu (%s:%u)\n",
                static_cast<long long>(site),
                static_cast<unsigned long long>(leaf.leaf_id),
                leaf.host.c_str(), leaf.port);
  }
  return 0;
}

int run_diff(const Options& options) {
  const std::string path_a = options.str("a", "");
  const std::string path_b = options.str("b", "");
  if (path_a.empty() || path_b.empty()) {
    std::fprintf(stderr, "dcs_shardmap diff: --a and --b are required\n");
    return 2;
  }
  const ShardMap a = ShardMap::load_file(path_a);
  const ShardMap b = ShardMap::load_file(path_b);
  std::printf("a: version=%u leaves=%zu  b: version=%u leaves=%zu\n",
              a.version(), a.leaves().size(), b.version(),
              b.leaves().size());
  std::printf("remap_fraction=%.4f\n", ShardMap::remap_fraction(a, b));
  // Per-leaf slot movement: which leaves gained or lost shard ownership.
  std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> slots;
  for (const LeafEndpoint& leaf : a.leaves())
    slots[leaf.leaf_id].first = a.slots_of(leaf.leaf_id);
  for (const LeafEndpoint& leaf : b.leaves())
    slots[leaf.leaf_id].second = b.slots_of(leaf.leaf_id);
  for (const auto& [leaf_id, counts] : slots)
    std::printf("  leaf=%llu slots: %zu -> %zu\n",
                static_cast<unsigned long long>(leaf_id), counts.first,
                counts.second);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options(argc, argv);
  const std::string command = argc > 1 ? argv[1] : "";
  if (options.flag("help") || command.empty() || command[0] == '-') {
    print_usage();
    return options.flag("help") ? 0 : 2;
  }
  try {
    if (command == "gen") return run_gen(options);
    if (command == "show") return run_show(options);
    if (command == "diff") return run_diff(options);
    std::fprintf(stderr, "dcs_shardmap: unknown command '%s'\n",
                 command.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_shardmap: %s\n", error.what());
    return 1;
  }
}
