// dcs_collector — central detector for the sketch-shipping deployment.
//
// Binds a TCP port (0 = ephemeral), accepts site-agent connections
// (dcs_agent), merges their per-epoch sketch deltas into one global
// tracking sketch, runs EWMA-baseline detection over the merged top-k, and
// exits after every expected site said Bye (or on timeout).
//
//   dcs_collector [--port N] [--bind ADDR] [--port-file FILE] [--sites N]
//                 [--leaf-id N] [--root HOST:PORT] [--shard-map FILE]
//                 [--uplink-spool N]
//                 [--timeout-ms N] [--k N] [--r N] [--s N] [--seed N]
//                 [--min-absolute N] [--factor F] [--no-detection]
//                 [--state-dir DIR] [--checkpoint-every N]
//                 [--checkpoint-retain N] [--crash-after-deltas N]
//                 [--publish-dir DIR] [--publish-every-ms N]
//                 [--publish-retain N] [--publish-k N]
//                 [--max-inflight-bytes N] [--site-rate R] [--site-burst N]
//                 [--frame-deadline-ms N] [--idle-timeout-ms N]
//                 [--max-frame-bytes N]
//                 [--reactor] [--reactor-workers N]
//                 [--metrics-out FILE] [--metrics-format prom|json]
//                 [--metrics-every SEC] [--ops-port N] [--ops-port-file FILE]
//
// --port-file atomically publishes the bound port (written under a temp
// name, then renamed) so agents started concurrently can discover it.
//
// --ops-port embeds the HTTP ops server (obs/http_export.hpp): /metrics
// (Prometheus text), /metrics.json, /healthz, /sites and /traces, all
// served live from immutable snapshots. 0 picks an ephemeral port,
// published via --ops-port-file. --metrics-every atomically rewrites
// --metrics-out every SEC seconds as a scrape-less fallback, so even a
// SIGKILLed collector leaves recent metrics behind.
//
// --publish-dir enables the query tier (see src/query/): a background
// publisher periodically snapshots the merged state — sketch, detector,
// alert log, top-k, site census, epoch watermark — into an immutable
// CRC-footered generation file in DIR (atomic rename). dcs_query_server
// pointed at the same DIR serves dashboard reads from those snapshots
// without ever touching the collector. --publish-retain bounds how many
// generations stay on disk (time-travel depth).
//
// --state-dir enables crash-safe checkpointing (see src/service/
// checkpoint.hpp): restart with the same directory and the collector
// resumes from its last checkpoint + journal instead of an empty sketch.
// --crash-after-deltas is fault injection for the recovery smoke test: once
// that many deltas have merged the process raises SIGKILL against itself —
// no destructors, no flush, the real crash the durability layer exists for.
//
// The overload knobs (see src/service/admission.hpp and docs/RUNBOOK.md)
// bound what misbehaving or overloaded sites can cost the collector:
// --max-inflight-bytes caps admitted-but-unmerged delta bytes globally,
// --site-rate/--site-burst rate-limit each site's deltas (token bucket),
// --frame-deadline-ms drops slow-loris connections, --idle-timeout-ms reaps
// silent ones, and --max-frame-bytes lowers the receive-side frame cap.
//
// --leaf-id turns the collector into a *leaf* of a two-tier federation
// (docs/FEDERATION.md): it owns the shard of sites the --shard-map file
// assigns to that leaf id (agents homed elsewhere are bounced with
// kWrongShard plus the current map) and relays every accepted delta to the
// --root collector (dcs_root) over one wire-v4 uplink. The uplink is
// ack-gated and sits in front of the journal fold — with --state-dir a
// SIGKILLed leaf replays its journal into the uplink on restart, so the
// root converges bit-for-bit regardless (the exactly-once argument lives
// in docs/FEDERATION.md).
//
// --reactor swaps the thread-per-connection ingest loop for the epoll
// reactor (src/service/reactor.hpp): identical protocol behaviour — both
// paths run the same frame handler — but one small worker pool
// (--reactor-workers) carries 10k+ concurrent agents instead of one OS
// thread each. The threaded default remains the differential-testing
// oracle.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "common/options.hpp"
#include "obs/export.hpp"
#include "obs/http_export.hpp"
#include "obs/trace.hpp"
#include "query/publisher.hpp"
#include "service/collector.hpp"
#include "service/federation/leaf.hpp"

namespace {

using namespace dcs;

void print_usage() {
  std::printf(
      "usage: dcs_collector [options]\n"
      "  --port N              TCP port to bind (0 = ephemeral; default 0)\n"
      "  --bind ADDR           bind address (default 127.0.0.1)\n"
      "  --port-file FILE      atomically publish the bound port to FILE\n"
      "  --sites N             exit after N sites said Bye (default 1)\n"
      "  --timeout-ms N        max wait for the Byes (default 30000)\n"
      "  --k N                 detection top-k (default 5)\n"
      "  --r N                 sketch tables (default 3)\n"
      "  --s N                 buckets per table (default 128)\n"
      "  --seed N              sketch hash seed (default 0)\n"
      "  --min-absolute N      detection floor, distinct sources (default 512)\n"
      "  --factor F            detection alarm factor over baseline (default 8)\n"
      "  --no-detection        disable the EWMA baseline detector\n"
      "  --state-dir DIR       enable crash-safe checkpointing in DIR\n"
      "  --checkpoint-every N  merges between checkpoints (default 64)\n"
      "  --checkpoint-retain N checkpoint generations kept on disk\n"
      "                        (default 2; must be >= 1)\n"
      "  --publish-dir DIR     publish query snapshots into DIR for\n"
      "                        dcs_query_server (omit = disabled)\n"
      "  --publish-every-ms N  ms between query snapshots (default 1000)\n"
      "  --publish-retain N    query generations kept in --publish-dir\n"
      "                        (default 8; must be >= 1)\n"
      "  --publish-k N         top-k depth precomputed into each query\n"
      "                        snapshot (default 10)\n"
      "  --crash-after-deltas N  fault injection: SIGKILL self after N merges\n"
      "  --max-inflight-bytes N  global budget for admitted-but-unmerged\n"
      "                          delta bytes (0 = unlimited; default 0)\n"
      "  --site-rate R         per-site delta admissions/sec (0 = off)\n"
      "  --site-burst N        per-site token-bucket burst depth (default 8)\n"
      "  --frame-deadline-ms N   drop a connection holding a partial frame\n"
      "                          this long (slow-loris; 0 = off; default 5000)\n"
      "  --idle-timeout-ms N   reap a silent connection after N ms\n"
      "                        (0 = off; default 15000)\n"
      "  --max-frame-bytes N   receive-side frame payload cap (0 = protocol\n"
      "                        64 MiB cap; default 0)\n"
      "  --leaf-id N           run as federation leaf N (non-zero; requires\n"
      "                        --root; see docs/FEDERATION.md)\n"
      "  --root HOST:PORT      federation root (dcs_root) the leaf relays\n"
      "                        every accepted delta to\n"
      "  --shard-map FILE      shard map (dcs_shardmap gen) assigning sites\n"
      "                        to leaves; mis-homed agents are bounced with\n"
      "                        kWrongShard + this map\n"
      "  --uplink-spool N      relays held awaiting root acks before the\n"
      "                        leaf NACKs agents kRetryLater (default 4096)\n"
      "  --reactor             serve connections from the epoll reactor\n"
      "                        instead of one thread per connection\n"
      "  --reactor-workers N   epoll workers with --reactor (default 2;\n"
      "                        worker 0 also accepts)\n"
      "  --metrics-out FILE    write a metrics snapshot on exit\n"
      "  --metrics-format F    prom|json (default prom)\n"
      "  --metrics-every SEC   also rewrite --metrics-out atomically every\n"
      "                        SEC seconds (0 = only on exit; default 0)\n"
      "  --ops-port N          serve the HTTP ops plane (/metrics,\n"
      "                        /metrics.json, /healthz, /sites, /traces) on\n"
      "                        this port (0 = ephemeral; omit = disabled)\n"
      "  --ops-port-file FILE  atomically publish the bound ops port\n"
      "  --help                print this help\n");
}

void publish_port(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::string healthz_json(const service::Collector& collector,
                         bool durability) {
  const auto stats = collector.stats();
  std::string out = "{\n";
  const auto field = [&out](const char* key, unsigned long long value,
                            bool last = false) {
    out += "  \"" + std::string(key) + "\": " + std::to_string(value) +
           (last ? "\n" : ",\n");
  };
  out += "  \"status\": \"ok\",\n";
  out += std::string("  \"running\": ") +
         (collector.running() ? "true" : "false") + ",\n";
  out += std::string("  \"durability\": ") +
         (durability ? "true" : "false") + ",\n";
  field("connected_sites", stats.connected_sites);
  field("deltas_merged", stats.deltas_merged);
  field("frames", stats.frames);
  field("frame_errors", stats.frame_errors);
  field("shed_deltas", stats.shed_deltas);
  field("inflight_bytes", collector.inflight_bytes());
  field("active_alarms", collector.active_alarm_count());
  field("recoveries", stats.recoveries);
  field("replayed_epochs", stats.replayed_epochs);
  field("corrupt_generations_skipped", stats.corrupt_generations_skipped);
  field("journal_records", stats.journal_records);
  field("checkpoints_written", stats.checkpoints_written);
  field("checkpoint_generation", collector.checkpoint_generation(),
        /*last=*/true);
  out += "}\n";
  return out;
}

std::string sites_json(const service::Collector& collector) {
  std::string out = "[";
  bool first = true;
  for (const auto& site : collector.site_stats()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"site_id\": " + std::to_string(site.site_id) +
           ", \"connected\": " + (site.connected ? "true" : "false") +
           ", \"last_epoch\": " + std::to_string(site.last_epoch) +
           ", \"epochs_merged\": " + std::to_string(site.epochs_merged) +
           ", \"updates_merged\": " + std::to_string(site.updates_merged) +
           ", \"dropped_epochs\": " + std::to_string(site.dropped_epochs) +
           ", \"duplicate_deltas\": " + std::to_string(site.duplicate_deltas) +
           ", \"shed_deltas\": " + std::to_string(site.shed_deltas) +
           ", \"last_seal_unix_ns\": " + std::to_string(site.last_seal_unix_ns) +
           ", \"last_freshness_ns\": " + std::to_string(site.last_freshness_ns) +
           "}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Daemon hygiene: a peer vanishing mid-write must surface as an error on
  // the socket (or stdout), not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  Options options(argc, argv);
  if (options.flag("help")) {
    print_usage();
    return 0;
  }

  service::CollectorConfig config;
  config.params.num_tables = static_cast<int>(options.integer("r", 3));
  config.params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  config.params.seed = static_cast<std::uint64_t>(options.integer("seed", 0));
  config.bind_address = options.str("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(options.integer("port", 0));
  config.run_detection = !options.flag("no-detection");
  config.detection.min_absolute =
      static_cast<std::uint64_t>(options.integer("min-absolute", 512));
  config.detection.alarm_factor = options.real("factor", 8.0);
  config.detection_top_k =
      static_cast<std::size_t>(options.integer("k", 5));
  config.state_dir = options.str("state-dir", "");
  config.checkpoint_every =
      static_cast<std::uint64_t>(options.integer("checkpoint-every", 64));
  config.checkpoint_retain =
      static_cast<std::uint64_t>(options.integer("checkpoint-retain", 2));
  config.admission.max_inflight_bytes =
      static_cast<std::uint64_t>(options.integer("max-inflight-bytes", 0));
  config.admission.site_rate_per_sec = options.real("site-rate", 0.0);
  config.admission.site_burst = options.real("site-burst", 8.0);
  config.frame_deadline_ms =
      static_cast<int>(options.integer("frame-deadline-ms", 5000));
  config.idle_timeout_ms =
      static_cast<int>(options.integer("idle-timeout-ms", 15000));
  config.max_frame_bytes =
      static_cast<std::uint32_t>(options.integer("max-frame-bytes", 0));
  config.use_reactor = options.flag("reactor");
  config.reactor_workers =
      static_cast<int>(options.integer("reactor-workers", 2));

  const auto sites = static_cast<std::uint64_t>(options.integer("sites", 1));
  const int timeout_ms = static_cast<int>(options.integer("timeout-ms", 30000));
  const auto crash_after =
      static_cast<std::uint64_t>(options.integer("crash-after-deltas", 0));

  try {
    config.params.validate();

    // Federation leaf mode: same collector, wrapped with the root uplink
    // and shard enforcement. Exactly one of `leaf` / `standalone` exists;
    // everything below runs against the shared Collector reference.
    config.leaf_id =
        static_cast<std::uint64_t>(options.integer("leaf-id", 0));
    const std::string shard_map_path = options.str("shard-map", "");
    if (!shard_map_path.empty())
      config.shard_map = service::ShardMap::load_file(shard_map_path);
    std::unique_ptr<service::LeafCollector> leaf;
    std::unique_ptr<service::Collector> standalone;
    if (config.leaf_id != 0) {
      const std::string root_spec = options.str("root", "");
      const auto colon = root_spec.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr,
                     "dcs_collector: --leaf-id requires --root HOST:PORT\n");
        return 2;
      }
      service::LeafCollectorConfig leaf_config;
      leaf_config.collector = config;
      leaf_config.root_host = root_spec.substr(0, colon);
      leaf_config.root_port =
          static_cast<std::uint16_t>(std::stoul(root_spec.substr(colon + 1)));
      leaf_config.uplink_spool =
          static_cast<std::size_t>(options.integer("uplink-spool", 4096));
      leaf = std::make_unique<service::LeafCollector>(std::move(leaf_config));
    } else {
      standalone = std::make_unique<service::Collector>(config);
    }
    service::Collector& collector =
        leaf ? leaf->collector() : *standalone;
    {
      const auto stats = collector.stats();
      if (stats.recoveries > 0)
        std::printf("recovered generation=%llu replayed=%llu "
                    "replay_deduped=%llu corrupt_skipped=%llu "
                    "deltas_restored=%llu\n",
                    static_cast<unsigned long long>(
                        collector.checkpoint_generation()),
                    static_cast<unsigned long long>(stats.replayed_epochs),
                    static_cast<unsigned long long>(stats.replay_deduped),
                    static_cast<unsigned long long>(
                        stats.corrupt_generations_skipped),
                    static_cast<unsigned long long>(stats.deltas_merged));
    }
    if (leaf)
      leaf->start();
    else
      collector.start();
    std::printf("listening on %s:%u (%s ingest%s)\n",
                config.bind_address.c_str(), collector.port(),
                config.use_reactor ? "reactor" : "threaded",
                leaf ? ", federation leaf" : "");
    std::fflush(stdout);
    const std::string port_file = options.str("port-file", "");
    if (!port_file.empty()) publish_port(port_file, collector.port());

    // Live ops plane: every handler reads an immutable snapshot, so a
    // scrape never contends with ingest.
    std::unique_ptr<obs::HttpServer> ops_server;
    const std::int64_t ops_port = options.integer("ops-port", -1);
    const bool durability = !config.state_dir.empty();
    if (ops_port >= 0) {
      obs::HttpServerConfig ops_config;
      ops_config.bind_address = config.bind_address;
      ops_config.port = static_cast<std::uint16_t>(ops_port);
      ops_server = std::make_unique<obs::HttpServer>(ops_config);
      ops_server->route("/metrics", [] {
        obs::HttpResponse response;
        response.body = obs::to_prometheus(obs::Registry::global().snapshot());
        return response;
      });
      ops_server->route("/metrics.json", [] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = obs::to_json(obs::Registry::global().snapshot());
        return response;
      });
      ops_server->route("/healthz", [&collector, durability] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = healthz_json(collector, durability);
        return response;
      });
      ops_server->route("/sites", [&collector] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = sites_json(collector);
        return response;
      });
      ops_server->route("/traces", [&collector] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = obs::traces_to_json(collector.traces());
        return response;
      });
      ops_server->start();
      std::printf("ops plane on %s:%u\n", config.bind_address.c_str(),
                  ops_server->port());
      std::fflush(stdout);
      const std::string ops_port_file = options.str("ops-port-file", "");
      if (!ops_port_file.empty())
        publish_port(ops_port_file, ops_server->port());
    }

    // Query-tier publisher: periodically freezes the merged state into an
    // immutable generation file. The provider is a bound method — the
    // collector never learns the query tier exists.
    std::unique_ptr<query::SnapshotPublisher> publisher;
    const std::string publish_dir = options.str("publish-dir", "");
    if (!publish_dir.empty()) {
      query::SnapshotPublisherConfig publish_config;
      publish_config.publish_dir = publish_dir;
      publish_config.publish_every_ms =
          static_cast<int>(options.integer("publish-every-ms", 1000));
      publish_config.retain =
          static_cast<std::uint64_t>(options.integer("publish-retain", 8));
      publish_config.top_k =
          static_cast<std::size_t>(options.integer("publish-k", 10));
      publisher = std::make_unique<query::SnapshotPublisher>(
          publish_config, [&collector](std::size_t top_k) {
            return collector.query_publish_state(top_k);
          });
      publisher->start();
      std::printf("publishing query snapshots to %s every %d ms\n",
                  publish_dir.c_str(), publish_config.publish_every_ms);
      std::fflush(stdout);
    }

    const std::string metrics_out_path = options.str("metrics-out", "");
    const obs::ExportFormat metrics_format =
        obs::parse_format(options.str("metrics-format", "prom"));
    obs::PeriodicSnapshotWriter metrics_flusher;
    metrics_flusher.start(metrics_out_path, metrics_format,
                          static_cast<int>(options.integer("metrics-every",
                                                           0)));

    // Fault injection for the recovery smoke test: SIGKILL ourselves once
    // enough deltas merged. A watcher thread (not a hook in the merge path)
    // keeps the library clean; overshooting by an in-flight delta is fine —
    // the test only needs the crash to land between checkpoints.
    std::thread crash_watcher;
    if (crash_after > 0)
      crash_watcher = std::thread([&collector, crash_after] {
        while (collector.stats().deltas_merged < crash_after)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::raise(SIGKILL);
      });

    const bool all_done = collector.wait_for_byes(sites, timeout_ms);
    if (publisher) {
      // One final generation so dashboards see the post-Bye totals.
      publisher->publish_now();
      publisher->stop();
    }
    metrics_flusher.stop();
    if (ops_server) ops_server->stop();
    if (leaf)
      leaf->stop();  // drains the uplink, then folds the journal
    else
      collector.stop();
    if (crash_watcher.joinable()) crash_watcher.detach();

    const auto stats = collector.stats();
    std::printf(
        "byes=%llu deltas=%llu duplicates=%llu dropped=%llu "
        "frame_errors=%llu rejected=%llu\n",
        static_cast<unsigned long long>(stats.byes),
        static_cast<unsigned long long>(stats.deltas_merged),
        static_cast<unsigned long long>(stats.duplicate_deltas),
        static_cast<unsigned long long>(stats.dropped_epochs),
        static_cast<unsigned long long>(stats.frame_errors),
        static_cast<unsigned long long>(stats.rejected_hellos));
    std::printf("shed=%llu shed_bytes=%llu deadline_drops=%llu "
                "idle_reaped=%llu\n",
                static_cast<unsigned long long>(stats.shed_deltas),
                static_cast<unsigned long long>(stats.shed_bytes),
                static_cast<unsigned long long>(stats.deadline_drops),
                static_cast<unsigned long long>(stats.idle_reaped));
    if (!config.state_dir.empty())
      std::printf("checkpoints=%llu generation=%llu journal_records=%llu "
                  "post_recovery_duplicates=%llu\n",
                  static_cast<unsigned long long>(stats.checkpoints_written),
                  static_cast<unsigned long long>(
                      collector.checkpoint_generation()),
                  static_cast<unsigned long long>(stats.journal_records),
                  static_cast<unsigned long long>(
                      stats.post_recovery_duplicates));
    for (const auto& site : collector.site_stats())
      std::printf("site=%llu epochs=%llu updates=%llu dropped=%llu "
                  "last_epoch=%llu\n",
                  static_cast<unsigned long long>(site.site_id),
                  static_cast<unsigned long long>(site.epochs_merged),
                  static_cast<unsigned long long>(site.updates_merged),
                  static_cast<unsigned long long>(site.dropped_epochs),
                  static_cast<unsigned long long>(site.last_epoch));
    if (leaf) {
      const auto uplink = leaf->uplink().stats();
      std::printf("uplink relayed=%llu root_acks=%llu root_duplicates=%llu "
                  "nacks=%llu shed=%llu reconnects=%llu spool=%zu "
                  "rejected=%d\n",
                  static_cast<unsigned long long>(uplink.relayed),
                  static_cast<unsigned long long>(uplink.root_acks),
                  static_cast<unsigned long long>(uplink.root_duplicates),
                  static_cast<unsigned long long>(uplink.nacks),
                  static_cast<unsigned long long>(uplink.shed_offers),
                  static_cast<unsigned long long>(uplink.reconnects),
                  uplink.spool_depth, uplink.rejected ? 1 : 0);
      if (!leaf->uplink().drained()) {
        std::fprintf(stderr,
                     "dcs_collector: uplink not drained — the journal was "
                     "kept for the next start to replay\n");
        return 1;
      }
    }
    const auto result = collector.top_k(config.detection_top_k);
    for (std::size_t i = 0; i < result.entries.size(); ++i)
      std::printf("%2zu  dest=%08x  frequency~%llu\n", i + 1,
                  result.entries[i].group,
                  static_cast<unsigned long long>(result.entries[i].estimate));
    std::printf("alerts=%zu active_alarms=%zu\n", collector.alerts().size(),
                collector.active_alarm_count());

    if (!metrics_out_path.empty())
      obs::write_snapshot_file(metrics_out_path, metrics_format,
                               obs::Registry::global().snapshot());

    if (!all_done) {
      std::fprintf(stderr, "dcs_collector: timed out waiting for %llu sites\n",
                   static_cast<unsigned long long>(sites));
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_collector: %s\n", error.what());
    return 1;
  }
}
