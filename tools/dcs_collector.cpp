// dcs_collector — central detector for the sketch-shipping deployment.
//
// Binds a TCP port (0 = ephemeral), accepts site-agent connections
// (dcs_agent), merges their per-epoch sketch deltas into one global
// tracking sketch, runs EWMA-baseline detection over the merged top-k, and
// exits after every expected site said Bye (or on timeout).
//
//   dcs_collector [--port N] [--bind ADDR] [--port-file FILE] [--sites N]
//                 [--timeout-ms N] [--k N] [--r N] [--s N] [--seed N]
//                 [--min-absolute N] [--factor F] [--no-detection]
//                 [--metrics-out FILE] [--metrics-format prom|json]
//
// --port-file atomically publishes the bound port (written under a temp
// name, then renamed) so agents started concurrently can discover it.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/options.hpp"
#include "obs/export.hpp"
#include "service/collector.hpp"

namespace {

using namespace dcs;

void publish_port(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Daemon hygiene: a peer vanishing mid-write must surface as an error on
  // the socket (or stdout), not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  Options options(argc, argv);

  service::CollectorConfig config;
  config.params.num_tables = static_cast<int>(options.integer("r", 3));
  config.params.buckets_per_table =
      static_cast<std::uint32_t>(options.integer("s", 128));
  config.params.seed = static_cast<std::uint64_t>(options.integer("seed", 0));
  config.bind_address = options.str("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(options.integer("port", 0));
  config.run_detection = !options.flag("no-detection");
  config.detection.min_absolute =
      static_cast<std::uint64_t>(options.integer("min-absolute", 512));
  config.detection.alarm_factor = options.real("factor", 8.0);
  config.detection_top_k =
      static_cast<std::size_t>(options.integer("k", 5));

  const auto sites = static_cast<std::uint64_t>(options.integer("sites", 1));
  const int timeout_ms = static_cast<int>(options.integer("timeout-ms", 30000));

  try {
    config.params.validate();
    service::Collector collector(config);
    collector.start();
    std::printf("listening on %s:%u\n", config.bind_address.c_str(),
                collector.port());
    std::fflush(stdout);
    const std::string port_file = options.str("port-file", "");
    if (!port_file.empty()) publish_port(port_file, collector.port());

    const bool all_done = collector.wait_for_byes(sites, timeout_ms);
    collector.stop();

    const auto stats = collector.stats();
    std::printf(
        "byes=%llu deltas=%llu duplicates=%llu dropped=%llu "
        "frame_errors=%llu rejected=%llu\n",
        static_cast<unsigned long long>(stats.byes),
        static_cast<unsigned long long>(stats.deltas_merged),
        static_cast<unsigned long long>(stats.duplicate_deltas),
        static_cast<unsigned long long>(stats.dropped_epochs),
        static_cast<unsigned long long>(stats.frame_errors),
        static_cast<unsigned long long>(stats.rejected_hellos));
    for (const auto& site : collector.site_stats())
      std::printf("site=%llu epochs=%llu updates=%llu dropped=%llu "
                  "last_epoch=%llu\n",
                  static_cast<unsigned long long>(site.site_id),
                  static_cast<unsigned long long>(site.epochs_merged),
                  static_cast<unsigned long long>(site.updates_merged),
                  static_cast<unsigned long long>(site.dropped_epochs),
                  static_cast<unsigned long long>(site.last_epoch));
    const auto result = collector.top_k(config.detection_top_k);
    for (std::size_t i = 0; i < result.entries.size(); ++i)
      std::printf("%2zu  dest=%08x  frequency~%llu\n", i + 1,
                  result.entries[i].group,
                  static_cast<unsigned long long>(result.entries[i].estimate));
    std::printf("alerts=%zu active_alarms=%zu\n", collector.alerts().size(),
                collector.active_alarm_count());

    const std::string metrics_out = options.str("metrics-out", "");
    if (!metrics_out.empty())
      obs::write_snapshot_file(metrics_out,
                               obs::parse_format(
                                   options.str("metrics-format", "prom")),
                               obs::Registry::global().snapshot());

    if (!all_done) {
      std::fprintf(stderr, "dcs_collector: timed out waiting for %llu sites\n",
                   static_cast<unsigned long long>(sites));
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dcs_collector: %s\n", error.what());
    return 1;
  }
}
