// Tests for the basic Distinct-Count Sketch: recovery, delete-resilience,
// estimation accuracy, merge linearity and serialization.
#include "sketch/distinct_count_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "baselines/exact_tracker.hpp"
#include "common/random.hpp"
#include "metrics/accuracy.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

DcsParams small_params(std::uint64_t seed = 1) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 64;
  params.seed = seed;
  return params;
}

TEST(DcsBasic, EmptySketchAnswersEmpty) {
  DistinctCountSketch sketch(small_params());
  const TopKResult result = sketch.top_k(5);
  EXPECT_TRUE(result.entries.empty());
  EXPECT_EQ(sketch.estimate_distinct_pairs(), 0u);
  EXPECT_EQ(sketch.allocated_levels(), 0);
}

TEST(DcsBasic, RecoversFewPairsExactly) {
  // With far fewer pairs than the sample target, the distinct sample is the
  // complete pair set at level 0 and all frequencies are exact.
  DistinctCountSketch sketch(small_params());
  for (Addr dest = 1; dest <= 3; ++dest)
    for (Addr source = 0; source < dest; ++source)
      sketch.update(dest, 100 + source, +1);

  const TopKResult result = sketch.top_k(3);
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_EQ(result.inference_level, 0);
  EXPECT_EQ(result.entries[0], (TopKEntry{3, 3}));
  EXPECT_EQ(result.entries[1], (TopKEntry{2, 2}));
  EXPECT_EQ(result.entries[2], (TopKEntry{1, 1}));
}

TEST(DcsBasic, DuplicateInsertionsDoNotInflateDistinctCount) {
  DistinctCountSketch sketch(small_params());
  for (int repeat = 0; repeat < 10; ++repeat) sketch.update(7, 1000, +1);
  sketch.update(7, 1001, +1);
  const TopKResult result = sketch.top_k(1);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0], (TopKEntry{7, 2}));
}

TEST(DcsBasic, DeletionIsExactlyInvisible) {
  // The core delete-resilience property (paper §3): the sketch after
  // insert+delete is bit-identical to one that never saw the items.
  const DcsParams params = small_params(9);
  DistinctCountSketch clean(params);
  DistinctCountSketch churned(params);

  Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const Addr dest = static_cast<Addr>(rng.bounded(50));
    const Addr source = static_cast<Addr>(rng());
    clean.update(dest, source, +1);
    churned.update(dest, source, +1);
  }
  // 2000 extra pairs, inserted and deleted in shuffled order.
  std::vector<std::pair<Addr, Addr>> transients;
  for (int i = 0; i < 2000; ++i)
    transients.emplace_back(static_cast<Addr>(rng.bounded(50)),
                            static_cast<Addr>(rng() | 0x80000000u));
  for (const auto& [dest, source] : transients) churned.update(dest, source, +1);
  for (std::size_t i = transients.size(); i > 1; --i)
    std::swap(transients[i - 1], transients[rng.bounded(i)]);
  for (const auto& [dest, source] : transients) churned.update(dest, source, -1);

  EXPECT_TRUE(clean == churned);
}

TEST(DcsBasic, DeleteBeforeInsertCancelsToo) {
  // Linearity means order does not matter: -1 then +1 nets to nothing.
  const DcsParams params = small_params(10);
  DistinctCountSketch a(params);
  DistinctCountSketch b(params);
  a.update(1, 2, +1);
  b.update(1, 2, +1);
  b.update(3, 4, -1);
  b.update(3, 4, +1);
  EXPECT_TRUE(a == b);
}

TEST(DcsBasic, LevelSampleFindsPlantedSingleton) {
  DistinctCountSketch sketch(small_params());
  const PairKey key = pack_pair(42, 43);
  sketch.update_key(key, +1);
  const int level = sketch.level_of(key);
  const auto sample = sketch.level_sample(level);
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0], key);
}

TEST(DcsBasic, KeyBitsBoundsAreEnforced) {
  DcsParams params = small_params();
  params.key_bits = 16;
  DistinctCountSketch sketch(params);
  EXPECT_NO_THROW(sketch.update_key(0xffff, +1));
  EXPECT_THROW(sketch.update_key(0x10000, +1), std::invalid_argument);
}

TEST(DcsBasic, ValidateAcceptsValidStreams) {
  DistinctCountSketch sketch(small_params());
  Xoshiro256 rng(8);
  for (int i = 0; i < 5000; ++i)
    sketch.update(static_cast<Addr>(rng.bounded(100)),
                  static_cast<Addr>(rng()), +1);
  EXPECT_TRUE(sketch.validate());
}

TEST(DcsBasic, ValidateFlagsSpuriousDeletes) {
  DistinctCountSketch sketch(small_params());
  sketch.update(1, 2, -1);  // delete of a never-inserted pair
  EXPECT_FALSE(sketch.validate());
}

TEST(DcsBasic, MergeEqualsUnionStream) {
  const DcsParams params = small_params(77);
  DistinctCountSketch left(params), right(params), whole(params);
  Xoshiro256 rng(3);
  for (int i = 0; i < 3000; ++i) {
    const Addr dest = static_cast<Addr>(rng.bounded(64));
    const Addr source = static_cast<Addr>(rng());
    whole.update(dest, source, +1);
    if (i % 2 == 0)
      left.update(dest, source, +1);
    else
      right.update(dest, source, +1);
  }
  left.merge(right);
  EXPECT_TRUE(left == whole);
}

TEST(DcsBasic, MergeRejectsMismatchedSeeds) {
  DistinctCountSketch a(small_params(1)), b(small_params(2));
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(DcsBasic, CrossShardInsertDeleteCancels) {
  // A pair inserted in one sketch and deleted in another cancels at merge —
  // the asymmetric-routing case the distributed deployment relies on.
  const DcsParams params = small_params(5);
  DistinctCountSketch a(params), b(params), expected(params);
  a.update(10, 20, +1);
  a.update(11, 21, +1);
  b.update(10, 20, -1);
  expected.update(11, 21, +1);
  a.merge(b);
  EXPECT_TRUE(a == expected);
}

TEST(DcsBasic, SerializeRoundTripsExactly) {
  DistinctCountSketch sketch(small_params(123));
  Xoshiro256 rng(6);
  for (int i = 0; i < 2000; ++i)
    sketch.update(static_cast<Addr>(rng.bounded(32)), static_cast<Addr>(rng()),
                  rng.bounded(10) == 0 ? -1 : +1);

  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    sketch.serialize(writer);
  }
  BinaryReader reader(buffer);
  const DistinctCountSketch restored = DistinctCountSketch::deserialize(reader);
  EXPECT_TRUE(sketch == restored);
  EXPECT_EQ(sketch.top_k(5).entries, restored.top_k(5).entries);
}

TEST(DcsBasic, GroupsAboveThresholdMatchesTopK) {
  DistinctCountSketch sketch(small_params());
  ZipfWorkloadConfig config;
  config.u_pairs = 20'000;
  config.num_destinations = 500;
  config.skew = 1.5;
  const ZipfWorkload workload(config);
  for (const FlowUpdate& u : workload.updates())
    sketch.update(u.dest, u.source, u.delta);

  const TopKResult top = sketch.top_k(10);
  ASSERT_FALSE(top.entries.empty());
  const std::uint64_t tau = top.entries.back().estimate;
  const auto above = sketch.groups_above(tau);
  // Every top-10 entry has estimate >= tau, so it must appear in `above`.
  for (const TopKEntry& entry : top.entries) {
    EXPECT_NE(std::find(above.begin(), above.end(), entry), above.end());
  }
  // And everything returned respects the threshold.
  for (const TopKEntry& entry : above) EXPECT_GE(entry.estimate, tau);
}

TEST(DcsBasic, DistinctPairEstimateIsInRange) {
  DistinctCountSketch sketch(small_params(21));
  constexpr std::uint64_t kPairs = 100'000;
  ZipfWorkloadConfig config;
  config.u_pairs = kPairs;
  config.num_destinations = 1000;
  config.skew = 1.2;
  const ZipfWorkload workload(config);
  for (const FlowUpdate& u : workload.updates())
    sketch.update(u.dest, u.source, u.delta);
  const double estimate = static_cast<double>(sketch.estimate_distinct_pairs());
  EXPECT_GT(estimate, 0.4 * kPairs);
  EXPECT_LT(estimate, 2.5 * kPairs);
}

TEST(DcsBasic, ChurnAndNoiseDoNotChangeAnswers) {
  // Workload-level version of delete-resilience: a stream with churned
  // duplicates and net-zero noise pairs yields the identical sketch as the
  // clean stream of the same net pairs.
  ZipfWorkloadConfig clean_config;
  clean_config.u_pairs = 30'000;
  clean_config.num_destinations = 300;
  clean_config.skew = 1.5;
  clean_config.shuffle = false;
  ZipfWorkloadConfig churned_config = clean_config;
  churned_config.churn = 2;
  churned_config.noise_pairs = 10'000;
  churned_config.shuffle = true;

  const ZipfWorkload clean(clean_config);
  const ZipfWorkload churned(churned_config);

  const DcsParams params = small_params(55);
  DistinctCountSketch clean_sketch(params), churned_sketch(params);
  for (const FlowUpdate& u : clean.updates())
    clean_sketch.update(u.dest, u.source, u.delta);
  for (const FlowUpdate& u : churned.updates())
    churned_sketch.update(u.dest, u.source, u.delta);

  EXPECT_TRUE(clean_sketch == churned_sketch);
}

// Accuracy sweep over skew values: recall of the top-5 should be high at the
// paper's default sketch size.
class DcsAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(DcsAccuracy, TopFiveRecallIsHigh) {
  const double skew = GetParam();
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 128;

  double recall_sum = 0.0;
  constexpr int kRuns = 3;
  for (int run = 0; run < kRuns; ++run) {
    ZipfWorkloadConfig config;
    config.u_pairs = 200'000;
    config.num_destinations = 5000;
    config.skew = skew;
    config.seed = 100 + run;
    const ZipfWorkload workload(config);

    params.seed = 200 + run;
    DistinctCountSketch sketch(params);
    for (const FlowUpdate& u : workload.updates())
      sketch.update(u.dest, u.source, u.delta);

    const TopKResult result = sketch.top_k(5);
    recall_sum +=
        evaluate_top_k(result.entries, workload.true_frequencies(), 5).recall;
  }
  EXPECT_GE(recall_sum / kRuns, 0.6) << "skew " << skew;
}

INSTANTIATE_TEST_SUITE_P(Skews, DcsAccuracy,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5));

}  // namespace
}  // namespace dcs
