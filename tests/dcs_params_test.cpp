// Tests for DcsParams validation, sizing helpers, and the theorem-driven
// parameter recommendation.
#include "sketch/dcs_params.hpp"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(DcsParams, DefaultsAreValidAndMatchPaper) {
  DcsParams params;
  EXPECT_NO_THROW(params.validate());
  EXPECT_EQ(params.num_tables, 3);            // §6.1 default r
  EXPECT_EQ(params.buckets_per_table, 128u);  // §6.1 default s
  EXPECT_EQ(params.key_bits, 64);             // 2 log m for m = 2^32
}

TEST(DcsParams, SignatureWidthIsKeyBitsPlusOne) {
  DcsParams params;
  params.key_bits = 64;
  EXPECT_EQ(params.signature_width(), 65u);  // paper: 2 log m + 1 counters
  params.key_bits = 16;
  EXPECT_EQ(params.signature_width(), 17u);
}

TEST(DcsParams, CountersPerLevel) {
  DcsParams params;
  params.num_tables = 3;
  params.buckets_per_table = 128;
  params.key_bits = 64;
  EXPECT_EQ(params.counters_per_level(), 3u * 128u * 65u);
  EXPECT_EQ(params.level_bytes(), 3u * 128u * 65u * 8u);
}

TEST(DcsParams, PaperStoppingRuleWhenFractionIsZero) {
  DcsParams params;
  params.buckets_per_table = 128;
  params.epsilon = 0.25;
  params.sample_target_fraction = 0.0;
  // (1 + 0.25) * 128 / 16 = 10.
  EXPECT_EQ(params.sample_target(), 10u);
}

TEST(DcsParams, DefaultStoppingTargetsFullS) {
  DcsParams params;
  params.buckets_per_table = 128;
  EXPECT_EQ(params.sample_target(), 128u);  // Lemma 4.1 load bound s/2
}

TEST(DcsParams, SampleTargetFractionOverrides) {
  DcsParams params;
  params.buckets_per_table = 128;
  params.sample_target_fraction = 0.5;
  EXPECT_EQ(params.sample_target(), 64u);
}

TEST(DcsParams, ValidationRejectsOutOfRange) {
  DcsParams params;
  params.num_tables = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.buckets_per_table = 1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.key_bits = 65;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.key_bits = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.max_level = 64;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.epsilon = 0.34;  // must be < 1/3
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.epsilon = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.sample_target_fraction = 1.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(DcsParams, RecommendScalesWithTheorem) {
  // s = Θ(U log(n/δ) / (f_k ε²)): doubling U doubles s; doubling f_k halves.
  const auto a = DcsParams::recommend(0.2, 0.05, 1'000'000, 10'000, 4'000'000);
  const auto b = DcsParams::recommend(0.2, 0.05, 2'000'000, 10'000, 4'000'000);
  const auto c = DcsParams::recommend(0.2, 0.05, 1'000'000, 20'000, 4'000'000);
  EXPECT_NEAR(static_cast<double>(b.buckets_per_table) / a.buckets_per_table,
              2.0, 0.01);
  EXPECT_NEAR(static_cast<double>(a.buckets_per_table) / c.buckets_per_table,
              2.0, 0.01);
  // r = Θ(log(n/δ)): 26-27 for these values.
  EXPECT_GE(a.num_tables, 20);
  EXPECT_LE(a.num_tables, 32);
}

TEST(DcsParams, MemoryBudgetSizingFitsAndMaximizes) {
  // 8 MiB budget at U = 8e6 (paper setting): expect a sketch that actually
  // fits and a doubled s that would not.
  const std::size_t budget = 8 * 1024 * 1024;
  const auto params = DcsParams::for_memory_budget(budget, 8'000'000);
  const int levels = 24;  // ceil(log2(8e6)) + 1
  const std::size_t used = static_cast<std::size_t>(levels) *
                           params.counters_per_level() * 0 +
                           static_cast<std::size_t>(levels) * params.level_bytes();
  EXPECT_LE(used, budget);
  DcsParams doubled = params;
  doubled.buckets_per_table *= 2;
  EXPECT_GT(static_cast<std::size_t>(levels) * doubled.level_bytes(), budget);
  // Sanity: a fresh sketch streamed at that scale stays within ~budget.
  EXPECT_GE(params.buckets_per_table, 64u);
}

TEST(DcsParams, MemoryBudgetTooSmallThrows) {
  EXPECT_THROW(DcsParams::for_memory_budget(1024, 8'000'000),
               std::invalid_argument);
  EXPECT_THROW(DcsParams::for_memory_budget(1 << 20, 0),
               std::invalid_argument);
}

TEST(DcsParams, RecommendRejectsBadArguments) {
  EXPECT_THROW(DcsParams::recommend(0.2, 0.0, 100, 10, 100),
               std::invalid_argument);
  EXPECT_THROW(DcsParams::recommend(0.2, 0.05, 100, 0, 100),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcs
