// Batched ingest must be indistinguishable from sequential ingest: the
// sketch is linear, so update_batch()'s level-major reordering, hash
// hoisting, prefetching, and (on capable CPUs) vectorized signature adds
// must all produce a bit-identical sketch — verified via operator== across
// parameter grids, random batch boundaries, deletions, and every consumer
// of the batch path (basic sketch, tracking sketch, concurrent monitor).
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <tuple>
#include <vector>

#include "common/random.hpp"
#include "distributed/concurrent_monitor.hpp"
#include "sketch/distinct_count_sketch.hpp"
#include "sketch/tracking_dcs.hpp"
#include "stream/generator.hpp"

namespace dcs {
namespace {

/// A churned stream (inserts + genuine deletions) over `destinations`
/// destinations with Zipf-ish repetition controlled by `skew`.
std::vector<FlowUpdate> make_stream(std::uint64_t seed, double skew,
                                    std::size_t n, std::uint32_t destinations) {
  ZipfWorkloadConfig config;
  config.u_pairs = n;
  config.num_destinations = destinations;
  config.skew = skew;
  config.churn = 2;
  config.noise_pairs = n / 4;
  config.seed = seed;
  config.shuffle = true;
  return ZipfWorkload(config).updates();
}

/// Feed `updates` through update_batch in random-sized blocks (1..max_block).
template <typename Sketch>
void ingest_random_blocks(Sketch& sketch, std::span<const FlowUpdate> updates,
                          Xoshiro256& rng, std::size_t max_block) {
  std::size_t i = 0;
  while (i < updates.size()) {
    const std::size_t block =
        std::min<std::size_t>(1 + rng.bounded(max_block), updates.size() - i);
    sketch.update_batch(updates.subspan(i, block));
    i += block;
  }
}

// ---------------------------------------------------------------------------
// Grid: bit-identity across (r, s, skew) with random batch boundaries.
// ---------------------------------------------------------------------------
using RsSkew = std::tuple<int, std::uint32_t, double>;

class BatchEquivalenceGrid : public ::testing::TestWithParam<RsSkew> {};

TEST_P(BatchEquivalenceGrid, BasicSketchBitIdentical) {
  const auto [r, s, skew] = GetParam();
  DcsParams params;
  params.num_tables = r;
  params.buckets_per_table = s;
  params.seed = 17;
  const auto updates = make_stream(static_cast<std::uint64_t>(r) * 100 + s,
                                   skew, 8000, 200);

  DistinctCountSketch sequential(params), batched(params);
  for (const FlowUpdate& u : updates)
    sequential.update(u.dest, u.source, u.delta);
  Xoshiro256 rng(99);
  ingest_random_blocks(batched, updates, rng, 300);

  EXPECT_TRUE(sequential == batched) << "r=" << r << " s=" << s
                                     << " skew=" << skew;
}

TEST_P(BatchEquivalenceGrid, TrackingSketchSameTopK) {
  const auto [r, s, skew] = GetParam();
  DcsParams params;
  params.num_tables = r;
  params.buckets_per_table = s;
  params.seed = 23;
  const auto updates = make_stream(static_cast<std::uint64_t>(r) * 100 + s + 1,
                                   skew, 8000, 200);

  TrackingDcs sequential(params), batched(params);
  for (const FlowUpdate& u : updates)
    sequential.update(u.dest, u.source, u.delta);
  Xoshiro256 rng(7);
  ingest_random_blocks(batched, updates, rng, 300);

  EXPECT_EQ(sequential.top_k(10).entries, batched.top_k(10).entries)
      << "r=" << r << " s=" << s << " skew=" << skew;
  EXPECT_TRUE(batched.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchEquivalenceGrid,
    ::testing::Combine(::testing::Values(1, 3),
                       ::testing::Values(16u, 64u, 128u),
                       ::testing::Values(0.8, 1.5)));

// ---------------------------------------------------------------------------
// Narrow keys take the scalar (sparse) signature path; the batch machinery
// must be identical there too.
// ---------------------------------------------------------------------------
TEST(BatchEquivalence, NarrowKeySketchBitIdentical) {
  DcsParams params;
  params.key_bits = 32;  // pair keys must fit: dest == 0, key == source
  params.buckets_per_table = 32;
  params.seed = 5;
  Xoshiro256 rng(42);
  std::vector<FlowUpdate> updates;
  for (int i = 0; i < 4000; ++i)
    updates.push_back({static_cast<Addr>(rng.bounded(1 << 20)), 0,
                       static_cast<std::int8_t>(rng.bounded(6) == 0 ? -1 : 1)});

  DistinctCountSketch sequential(params), batched(params);
  for (const FlowUpdate& u : updates)
    sequential.update(u.dest, u.source, u.delta);
  ingest_random_blocks(batched, updates, rng, 100);
  EXPECT_TRUE(sequential == batched);
}

// ---------------------------------------------------------------------------
// Whole-span validation: one bad key anywhere leaves the sketch untouched.
// ---------------------------------------------------------------------------
TEST(BatchEquivalence, BadKeyMidSpanLeavesSketchUnchanged) {
  DcsParams params;
  params.key_bits = 32;
  params.buckets_per_table = 32;
  DistinctCountSketch sketch(params);
  const std::vector<FlowUpdate> good = {{1, 0, +1}, {2, 0, +1}};
  sketch.update_batch(good);
  const DistinctCountSketch before = sketch;

  // dest != 0 packs above 32 bits: invalid for this sketch.
  const std::vector<FlowUpdate> poisoned = {{3, 0, +1}, {4, 9, +1}, {5, 0, +1}};
  EXPECT_THROW(sketch.update_batch(poisoned), std::invalid_argument);
  EXPECT_TRUE(sketch == before);
}

TEST(BatchEquivalence, EmptySpanIsANoOp) {
  DistinctCountSketch sketch{DcsParams{}};
  sketch.update(1, 2, +1);
  const DistinctCountSketch before = sketch;
  sketch.update_batch({});
  EXPECT_TRUE(sketch == before);

  TrackingDcs tracker{DcsParams{}};
  tracker.update_batch({});
  EXPECT_TRUE(tracker.check_invariants());
}

// ---------------------------------------------------------------------------
// Concurrent monitor: caller-side batches and pipelined queues both merge to
// the same snapshot as element-at-a-time direct ingest.
// ---------------------------------------------------------------------------
TEST(BatchEquivalence, ConcurrentMonitorBatchedSnapshotMatchesDirect) {
  DcsParams params;
  params.seed = 31;
  const auto updates = make_stream(77, 1.2, 6000, 150);

  ConcurrentMonitor direct(params, 4);
  for (const FlowUpdate& u : updates) direct.update(u.dest, u.source, u.delta);

  ConcurrentMonitor batched(params, 4);
  Xoshiro256 rng(13);
  ingest_random_blocks(batched, std::span<const FlowUpdate>(updates), rng, 500);

  ConcurrentMonitor pipelined(params, 4, /*queue_capacity=*/64);
  for (const FlowUpdate& u : updates)
    pipelined.update(u.dest, u.source, u.delta);

  const DistinctCountSketch reference = direct.snapshot();
  EXPECT_TRUE(reference == batched.snapshot());
  // snapshot() drains the queues itself; no explicit flush() needed first.
  EXPECT_TRUE(reference == pipelined.snapshot());
  EXPECT_EQ(pipelined.pending_updates(), 0u);
}

}  // namespace
}  // namespace dcs
