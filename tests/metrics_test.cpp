// Tests for the accuracy metrics (paper §6.1 definitions).
#include "metrics/accuracy.hpp"

#include <gtest/gtest.h>

namespace dcs {
namespace {

std::vector<DestFrequency> truth() {
  return {{10, 1000}, {20, 500}, {30, 250}, {40, 100}, {50, 50}};
}

TEST(Metrics, PerfectAnswerScoresPerfectly) {
  std::vector<TopKEntry> approx{{10, 1000}, {20, 500}, {30, 250}};
  const TopKAccuracy acc = evaluate_top_k(approx, truth(), 3);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.avg_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_rank_displacement, 0.0);
  EXPECT_EQ(acc.recall_set_size, 3u);
}

TEST(Metrics, MissingEntryLowersRecall) {
  std::vector<TopKEntry> approx{{10, 1000}, {99, 700}, {30, 250}};
  const TopKAccuracy acc = evaluate_top_k(approx, truth(), 3);
  EXPECT_NEAR(acc.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.precision, 2.0 / 3.0, 1e-12);
}

TEST(Metrics, RelativeErrorIsOverRecallSetOnly) {
  // Entry 20 estimated at 600 (error 0.2); entry 99 is a miss and must not
  // contribute to the error average.
  std::vector<TopKEntry> approx{{10, 1100}, {20, 600}, {99, 1}};
  const TopKAccuracy acc = evaluate_top_k(approx, truth(), 3);
  EXPECT_EQ(acc.recall_set_size, 2u);
  EXPECT_NEAR(acc.avg_relative_error, (0.1 + 0.2) / 2.0, 1e-12);
}

TEST(Metrics, RankDisplacementCountsSwaps) {
  // True order 10, 20; approximate order 20, 10: each displaced by 1.
  std::vector<TopKEntry> approx{{20, 500}, {10, 1000}};
  const TopKAccuracy acc = evaluate_top_k(approx, truth(), 2);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.mean_rank_displacement, 1.0);
}

TEST(Metrics, EmptyApproximateAnswer) {
  const TopKAccuracy acc = evaluate_top_k({}, truth(), 3);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
  EXPECT_DOUBLE_EQ(acc.precision, 0.0);
  EXPECT_EQ(acc.recall_set_size, 0u);
}

TEST(Metrics, EmptyTruthIsZero) {
  std::vector<TopKEntry> approx{{1, 1}};
  const TopKAccuracy acc = evaluate_top_k(approx, {}, 3);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
}

TEST(Metrics, KLargerThanTruthClamps) {
  std::vector<TopKEntry> approx{{10, 1000}, {20, 500}, {30, 250},
                                {40, 100},  {50, 50}};
  const TopKAccuracy acc = evaluate_top_k(approx, truth(), 100);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
}

TEST(Metrics, OnlyFirstKApproxEntriesCount) {
  // Correct entries beyond position k must not contribute.
  std::vector<TopKEntry> approx{{99, 1}, {98, 1}, {10, 1000}};
  const TopKAccuracy acc = evaluate_top_k(approx, truth(), 2);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
}

}  // namespace
}  // namespace dcs
